//! The concurrent wire-protocol serving layer over the Cinderella engine.
//!
//! Everything below the socket — partitioning, storage, queries — is
//! single-process library code; this crate puts it behind a network
//! boundary so several sessions can work against one store at once:
//!
//! * [`protocol`] — a small length-prefixed binary protocol (varint frames
//!   reusing the storage codec) with typed requests and responses,
//!   including wire-level batch operations ([`Request::InsertBatch`],
//!   [`Request::QueryBatch`]).
//! * [`engine`] — the [`Engine`] service object: the universal table plus
//!   the partitioner behind single-writer / many-reader discipline
//!   (writes serialise through one lock; queries fan out on the storage
//!   layer's `Send + Sync` read views).
//! * [`commit`] — the WAL group-commit coordinator: concurrent writers
//!   hand their transaction frames to a per-shard [`commit::GroupCommit`]
//!   that coalesces them into one buffered append and one fsync
//!   (leader/follower handoff), without weakening the ack-after-durable
//!   contract.
//! * [`server`] — pipelined per-connection readers (buffered multi-frame
//!   decode) feeding a fixed worker pool with connection affinity and
//!   sequence-ordered batched response writes; when the global queue
//!   bound is hit the reader answers [`protocol::Response::Busy`] instead
//!   of stalling (admission control / load shedding), and graceful
//!   shutdown stops accepting, drains in-flight work, flushes the WAL,
//!   snapshots, and runs the full structural validation before exit.
//! * [`client`] — a blocking request/reply client library, with an
//!   explicit pipelined mode (K requests in flight per connection) and
//!   typed batch calls.
//! * [`loadgen`] — a closed-loop load generator (N connections × mixed
//!   insert/query workload) with per-operation latency histograms that
//!   separate service time from end-to-end time under pipelining.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod commit;
pub mod config;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod sharded;

pub use client::Client;
pub use commit::{GroupCommit, WalCounters, WalCountersSnapshot};
pub use config::ServeConfig;
pub use engine::{Engine, EngineOptions, EngineSnapshot};
pub use cind_datagen::DriftMode;
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use protocol::{
    EngineStats, ErrorCode, IoCounters, ProtoError, QueryStats, Request, Response, WireEntity,
};
pub use server::{Server, ServerHandle, ShutdownReport};
pub use shard::ShardRouter;
pub use sharded::{shard_dir_name, ShardedEngine, ShardedOptions, MANIFEST_FILE};

use cind_storage::{PersistError, StorageError};
use cinderella_core::CoreError;

/// The crate-wide error type: everything that can go wrong on either side
/// of the wire.
#[derive(Debug)]
pub enum ServerError {
    /// Socket / filesystem failure.
    Io(std::io::Error),
    /// Snapshot or WAL persistence failure.
    Persist(PersistError),
    /// Storage engine failure.
    Storage(StorageError),
    /// Partitioning engine failure.
    Core(CoreError),
    /// Wire protocol failure (framing or body decode).
    Protocol(ProtoError),
    /// A query named an attribute the catalog has never seen.
    UnknownAttribute(String),
    /// The server's bounded queue was full — the request was shed, retry
    /// after backing off.
    Busy,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The server answered a typed error frame.
    Remote {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered a frame that does not fit the request (protocol
    /// desync — close the connection).
    UnexpectedResponse,
    /// An internal serving-layer invariant failed (shard layout mismatch,
    /// panicked fan-out worker). Not attributable to the request.
    Internal(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Persist(e) => write!(f, "persist: {e}"),
            ServerError::Storage(e) => write!(f, "storage: {e}"),
            ServerError::Core(e) => write!(f, "core: {e}"),
            ServerError::Protocol(e) => write!(f, "protocol: {e}"),
            ServerError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            ServerError::Busy => write!(f, "server busy (request shed by admission control)"),
            ServerError::ShuttingDown => write!(f, "server shutting down"),
            ServerError::Remote { code, message } => {
                write!(f, "remote error ({code:?}): {message}")
            }
            ServerError::UnexpectedResponse => write!(f, "unexpected response frame"),
            ServerError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<PersistError> for ServerError {
    fn from(e: PersistError) -> Self {
        ServerError::Persist(e)
    }
}

impl From<StorageError> for ServerError {
    fn from(e: StorageError) -> Self {
        ServerError::Storage(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

impl From<ProtoError> for ServerError {
    fn from(e: ProtoError) -> Self {
        ServerError::Protocol(e)
    }
}
