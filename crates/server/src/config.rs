//! Serving-layer configuration.

use cinderella_core::{IndexTier, ReorgConfig, ReorgMode};

/// Tunables for one [`crate::Server`] instance.
///
/// Every field is surfaced as a `cind serve` command-line flag (the
/// workspace audit's CIND-A004 rule checks the parity).
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// TCP port to listen on (loopback only); `0` asks the OS for a free
    /// port — read it back from [`crate::ServerHandle::port`].
    pub port: u16,
    /// Worker threads draining the request queue. Writes serialise per
    /// *shard* (each shard has its own writer lock), so with `shards > 1`
    /// extra workers buy genuine write concurrency, not just read
    /// concurrency; clamped to at least 1.
    pub workers: usize,
    /// Bound on the shared request queue — the admission-control knob. A
    /// request arriving while `queue_depth` others wait is answered
    /// [`crate::Response::Busy`] immediately instead of queueing (load
    /// shedding keeps latency bounded under overload). Clamped to at
    /// least 1.
    pub queue_depth: usize,
    /// Buffer-pool capacity, in pages, for stores the server opens itself
    /// (ignored for pre-built engines handed to [`crate::Server::start`]).
    pub pool_pages: usize,
    /// Scan threads *per query* for the `UNION ALL` fan-out; `1` keeps
    /// query execution sequential.
    pub query_threads: usize,
    /// Engine shards: independent writer locks, WALs, and snapshot files.
    /// Writes hash-route to one shard; queries fan out across all of them.
    /// On an existing store the on-disk manifest wins. Clamped to at
    /// least 1.
    pub shards: usize,
    /// Group-commit gather window in **microseconds**. `0` means every
    /// commit syncs the WAL individually (the pre-group-commit behaviour,
    /// and the default). With a window, the per-shard commit coordinator
    /// lets the fsync leader linger this long collecting commits from
    /// concurrent writers, then persists the whole batch with one WAL
    /// append and one fsync — trading a bounded latency bump for a large
    /// reduction in fsyncs under concurrent write load. Durability
    /// semantics are unchanged: no request is acknowledged before its
    /// bytes are synced.
    pub group_commit_window: u64,
    /// Background reorganizer mode (`off` or `auto`). With `auto`, each
    /// shard's engine tracks partition heat and enacts cost-cleared
    /// merge / re-split / migrate actions between foreground operations;
    /// `off` (the default) is provably inert — the differential test
    /// checks the WAL and snapshot bytes are identical to a build without
    /// the subsystem.
    pub reorg: ReorgMode,
    /// Reorganizer per-step work budget: the most entities one background
    /// step may physically move (bounds the writer-lock hold to the same
    /// order as one overflow split).
    pub reorg_budget: u64,
    /// Reorganizer hysteresis threshold in `[0, 1]`: an action is enacted
    /// only when its priced gain clears this fraction of the affected
    /// partitions' workload-weighted scan cost.
    pub reorg_threshold: f64,
    /// Reorganizer epoch length in *operations*: heat decays and a step
    /// becomes due every this-many ops per shard (op-count based, never
    /// wall-clock — the determinism rule the simulation relies on).
    pub reorg_epoch_ops: u64,
    /// Pruning-index tier per shard (`exact`, `tiered`, or `auto`).
    /// `exact` keeps one presence bitmap per attribute; `tiered` swaps the
    /// bitmaps for blocked Bloom filter rows plus a bounded exact hot tier
    /// (superset-sound: answers are identical, memory is bounded); `auto`
    /// starts exact and ratchets to tiered once a shard's catalog crosses
    /// the partition-count threshold.
    pub tier: IndexTier,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 0,
            workers: 4,
            queue_depth: 64,
            pool_pages: 1024,
            query_threads: 2,
            shards: 1,
            group_commit_window: 0,
            reorg: ReorgMode::Off,
            reorg_budget: ReorgConfig::default().budget,
            reorg_threshold: ReorgConfig::default().threshold,
            reorg_epoch_ops: ReorgConfig::default().epoch_ops,
            tier: IndexTier::Exact,
        }
    }
}

impl ServeConfig {
    /// `workers`, clamped to the documented minimum.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// `queue_depth`, clamped to the documented minimum.
    #[must_use]
    pub fn effective_queue_depth(&self) -> usize {
        self.queue_depth.max(1)
    }

    /// `shards`, clamped to the documented minimum.
    #[must_use]
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// The core-layer reorganizer knobs these serving flags describe
    /// (threshold clamped into `[0, 1]`, epoch to at least one op).
    #[must_use]
    pub fn reorg_config(&self) -> ReorgConfig {
        ReorgConfig {
            mode: self.reorg,
            budget: self.reorg_budget,
            threshold: if self.reorg_threshold.is_finite() {
                self.reorg_threshold.clamp(0.0, 1.0)
            } else {
                ReorgConfig::default().threshold
            },
            epoch_ops: self.reorg_epoch_ops.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.port, 0);
        assert!(c.effective_workers() >= 1);
        assert!(c.effective_queue_depth() >= 1);
        // Group commit is opt-in: the default must keep the strictly
        // per-commit fsync discipline.
        assert_eq!(c.group_commit_window, 0);
    }

    #[test]
    fn zero_knobs_are_clamped() {
        let c = ServeConfig {
            workers: 0,
            queue_depth: 0,
            shards: 0,
            ..ServeConfig::default()
        };
        assert_eq!(c.effective_workers(), 1);
        assert_eq!(c.effective_queue_depth(), 1);
        assert_eq!(c.effective_shards(), 1);
    }
}
