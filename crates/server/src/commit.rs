//! WAL group commit: the per-shard commit coordinator.
//!
//! Every durable mutation used to pay one `write` + one `fsync` of its own.
//! [`GroupCommit`] amortises both: writers *submit* their already-framed WAL
//! transaction group (one atomic unit = one `write` call from the
//! [`cind_storage::wal::WalSink`], which emits exactly one buffered
//! `write_all` per Begin..Commit group) into a shared in-memory buffer, then
//! *wait* for their ticket to become durable. The first waiter that finds no
//! flush in progress becomes the **leader**: it optionally lingers for the
//! configured gather window so concurrent writers can pile on, takes the
//! whole buffer, and — with the coordinator unlocked so followers keep
//! enqueueing — issues a single `write_all` plus a single
//! [`cind_storage::vfs::VfsFile::sync`] for the entire group, then advances
//! the durable watermark and wakes every follower with the shared result.
//!
//! Ordering: submissions only happen under the shard's writer lock, so
//! buffer order equals commit order equals WAL byte order — a group-commit
//! log is byte-identical to a per-op log for the same operation sequence,
//! at any window setting. The crash surface is unchanged from PR 5's
//! single-write framing: a torn group is a torn prefix of whole frames plus
//! at most one torn frame, which replay already discards.
//!
//! Failure is sticky, mirroring the WAL sink's poison discipline: once a
//! group write or sync fails, the coordinator records the `ErrorKind`,
//! every waiter past the durable watermark gets that error, and every later
//! submit refuses — which poisons the attached `WalSink` and surfaces as
//! [`cind_storage::StorageError::WalAppend`] on the next mutation. An acked
//! commit is therefore always durable; a failed one never acks.
//!
//! This module is the **only** place in `cind-server` allowed to call
//! `sync`/`flush` on a file (audit rule CIND-A007).

use std::io::{self, ErrorKind, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use cind_storage::vfs::VfsFile;

/// Cumulative WAL I/O counters for one engine, shared across the
/// coordinator generations a checkpoint cycles through. All relaxed: these
/// are observability counters, not synchronisation.
#[derive(Debug, Default)]
pub struct WalCounters {
    /// `write` calls issued to the log file (one per flushed group).
    pub appends: AtomicU64,
    /// `sync` (fsync) calls issued to the log file.
    pub syncs: AtomicU64,
    /// Flush groups completed (successfully or not).
    pub groups: AtomicU64,
    /// Atomic units (WAL transaction groups) submitted.
    pub ops: AtomicU64,
}

/// A point-in-time copy of [`WalCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalCountersSnapshot {
    /// See [`WalCounters::appends`].
    pub appends: u64,
    /// See [`WalCounters::syncs`].
    pub syncs: u64,
    /// See [`WalCounters::groups`].
    pub groups: u64,
    /// See [`WalCounters::ops`].
    pub ops: u64,
}

impl WalCounters {
    /// Reads all counters (relaxed; consistent enough for reporting).
    #[must_use]
    pub fn snapshot(&self) -> WalCountersSnapshot {
        WalCountersSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
        }
    }
}

struct CommitState {
    /// The log file. `None` only while the leader holds it for I/O (or
    /// after an unrecoverable coordinator fault).
    file: Option<Box<dyn VfsFile>>,
    /// Framed-but-not-yet-flushed WAL bytes, in submission order.
    buf: Vec<u8>,
    /// Tickets issued so far (one per submitted atomic unit).
    enqueued: u64,
    /// Highest ticket whose bytes are known durable.
    durable: u64,
    /// Whether a leader currently owns the flush.
    leader: bool,
    /// Sticky poison: the kind of the first failed group flush.
    failed: Option<ErrorKind>,
}

/// The per-shard commit coordinator. Shared (`Arc`) between the engine's
/// WAL sink (which submits) and its write paths (which wait).
pub struct GroupCommit {
    state: Mutex<CommitState>,
    cond: Condvar,
    window: Duration,
    counters: Arc<WalCounters>,
}

impl GroupCommit {
    /// A coordinator over `file`, gathering followers for `window` before
    /// each flush (`Duration::ZERO` = flush immediately, i.e. per-op
    /// semantics with coalescing only when writers genuinely race).
    #[must_use]
    pub fn new(file: Box<dyn VfsFile>, window: Duration, counters: Arc<WalCounters>) -> Self {
        Self {
            state: Mutex::new(CommitState {
                file: Some(file),
                buf: Vec::new(),
                enqueued: 0,
                durable: 0,
                leader: false,
                failed: None,
            }),
            cond: Condvar::new(),
            window,
            counters,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CommitState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues one atomic unit of framed WAL bytes.
    ///
    /// # Errors
    /// The sticky poison kind, once any group flush has failed.
    pub fn submit(&self, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        if let Some(kind) = st.failed {
            return Err(io::Error::new(kind, "wal group commit poisoned"));
        }
        st.buf.extend_from_slice(bytes);
        st.enqueued += 1;
        self.counters.ops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The ticket covering everything submitted so far — pass it to
    /// [`Self::wait_durable`] after releasing the writer lock.
    #[must_use]
    pub fn ticket(&self) -> u64 {
        self.lock().enqueued
    }

    /// Blocks until `ticket` is durable (leader/follower protocol: the
    /// caller may end up doing the flush for everyone).
    ///
    /// # Errors
    /// The sticky poison kind when the group containing `ticket` (or any
    /// earlier group) failed to reach the disk.
    pub fn wait_durable(&self, ticket: u64) -> Result<(), ErrorKind> {
        let mut st = self.lock();
        loop {
            if st.durable >= ticket {
                return Ok(());
            }
            if let Some(kind) = st.failed {
                return Err(kind);
            }
            if st.leader {
                // A flush is in progress; wait for its result.
                st = self
                    .cond
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // Become the leader.
            st.leader = true;
            if !self.window.is_zero() {
                // Linger so concurrent writers can join the group. Submits
                // don't signal the condvar, so this sleeps ~the window
                // (modulo spurious wakeups, which only shrink it).
                st = self
                    .cond
                    .wait_timeout(st, self.window)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            let batch = std::mem::take(&mut st.buf);
            let upto = st.enqueued;
            if batch.is_empty() && st.durable >= upto {
                // Nothing accumulated (a racing drain): step down.
                st.leader = false;
                self.cond.notify_all();
                continue;
            }
            let Some(mut file) = st.file.take() else {
                // Defensive: the file can only be absent if a previous
                // leader panicked mid-flush; poison rather than wedge.
                st.leader = false;
                st.failed = Some(ErrorKind::Other);
                self.cond.notify_all();
                return Err(ErrorKind::Other);
            };
            drop(st);
            // The flush itself runs unlocked so followers keep enqueueing
            // into the *next* group while this one hits the disk.
            let res = Self::flush_group(&mut *file, &batch, &self.counters);
            st = self.lock();
            st.file = Some(file);
            st.leader = false;
            match res {
                Ok(()) => st.durable = st.durable.max(upto),
                Err(e) => st.failed = Some(e.kind()),
            }
            self.cond.notify_all();
            // Loop: re-evaluate our own ticket against the new watermark.
        }
    }

    fn flush_group(
        file: &mut dyn VfsFile,
        batch: &[u8],
        counters: &WalCounters,
    ) -> io::Result<()> {
        counters.groups.fetch_add(1, Ordering::Relaxed);
        if !batch.is_empty() {
            counters.appends.fetch_add(1, Ordering::Relaxed);
            file.write_all(batch)?;
        }
        counters.syncs.fetch_add(1, Ordering::Relaxed);
        file.sync()
    }

    /// Flushes everything submitted so far and blocks until durable.
    ///
    /// # Errors
    /// The sticky poison kind on flush failure.
    pub fn drain(&self) -> Result<(), ErrorKind> {
        let ticket = self.ticket();
        self.wait_durable(ticket)
    }
}

/// Adapts a [`GroupCommit`] to the plain `Write + Send + Sync` sink that
/// [`cind_storage::UniversalTable::attach_wal`] takes. Each `write` call is
/// one atomic unit (the `WalSink` buffers a whole transaction group into a
/// single `write_all`), and `flush` drains the coordinator — so
/// `UniversalTable::flush_wal` means "everything logged so far is on disk".
pub struct GroupSink(Arc<GroupCommit>);

impl GroupSink {
    /// Wraps `coord` for [`cind_storage::UniversalTable::attach_wal`].
    #[must_use]
    pub fn new(coord: Arc<GroupCommit>) -> Self {
        Self(coord)
    }
}

impl Write for GroupSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.0.submit(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0
            .drain()
            .map_err(|kind| io::Error::new(kind, "wal group flush failed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::sync::atomic::AtomicUsize;

    /// An in-memory `VfsFile` that records write/sync call counts and can
    /// be told to fail its next sync.
    struct MemFile {
        data: Arc<Mutex<Vec<u8>>>,
        writes: Arc<AtomicUsize>,
        syncs: Arc<AtomicUsize>,
        fail_next_sync: Arc<Mutex<bool>>,
    }

    impl Read for MemFile {
        fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
    }
    impl Write for MemFile {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.data.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl VfsFile for MemFile {
        fn sync(&mut self) -> io::Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            if std::mem::take(&mut *self.fail_next_sync.lock().unwrap()) {
                return Err(io::Error::other("sync refused"));
            }
            Ok(())
        }
    }

    struct Probe {
        data: Arc<Mutex<Vec<u8>>>,
        /// `write` calls the file saw — must track `counters.appends`.
        writes: Arc<AtomicUsize>,
        syncs: Arc<AtomicUsize>,
        fail_next_sync: Arc<Mutex<bool>>,
    }

    fn mem_file() -> (Box<dyn VfsFile>, Probe) {
        let data = Arc::new(Mutex::new(Vec::new()));
        let writes = Arc::new(AtomicUsize::new(0));
        let syncs = Arc::new(AtomicUsize::new(0));
        let fail = Arc::new(Mutex::new(false));
        let file = MemFile {
            data: Arc::clone(&data),
            writes: Arc::clone(&writes),
            syncs: Arc::clone(&syncs),
            fail_next_sync: Arc::clone(&fail),
        };
        (Box::new(file), Probe { data, writes, syncs, fail_next_sync: fail })
    }

    fn coord(window: Duration) -> (Arc<GroupCommit>, Probe, Arc<WalCounters>) {
        let (file, probe) = mem_file();
        let counters = Arc::new(WalCounters::default());
        (
            Arc::new(GroupCommit::new(file, window, Arc::clone(&counters))),
            probe,
            counters,
        )
    }

    #[test]
    fn single_writer_flushes_inline_and_preserves_bytes() {
        let (c, probe, counters) = coord(Duration::ZERO);
        c.submit(b"aa").unwrap();
        let t = c.ticket();
        c.wait_durable(t).unwrap();
        c.submit(b"bb").unwrap();
        c.wait_durable(c.ticket()).unwrap();
        assert_eq!(&*probe.data.lock().unwrap(), b"aabb");
        assert_eq!(probe.syncs.load(Ordering::Relaxed), 2);
        let snap = counters.snapshot();
        assert_eq!(snap.ops, 2);
        assert_eq!(snap.syncs, 2);
        assert_eq!(snap.groups, 2);
    }

    #[test]
    fn concurrent_writers_coalesce_into_fewer_syncs() {
        let (c, probe, counters) = coord(Duration::from_millis(4));
        const N: usize = 16;
        std::thread::scope(|s| {
            for i in 0..N {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let unit = [i as u8; 3];
                    c.submit(&unit).unwrap();
                    let t = c.ticket();
                    c.wait_durable(t).unwrap();
                });
            }
        });
        assert_eq!(probe.data.lock().unwrap().len(), N * 3);
        let snap = counters.snapshot();
        assert_eq!(snap.ops, N as u64);
        // At least some coalescing must have happened: 16 units cannot
        // take 16 separate groups when a 4ms window gathers them.
        assert!(
            snap.syncs < N as u64,
            "expected <{N} syncs, got {}",
            snap.syncs
        );
        assert_eq!(probe.syncs.load(Ordering::Relaxed) as u64, snap.syncs);
        assert_eq!(probe.writes.load(Ordering::Relaxed) as u64, snap.appends);
    }

    #[test]
    fn failed_sync_poisons_all_waiters_and_later_submits() {
        let (c, probe, _) = coord(Duration::ZERO);
        c.submit(b"ok").unwrap();
        c.wait_durable(c.ticket()).unwrap();
        *probe.fail_next_sync.lock().unwrap() = true;
        c.submit(b"doomed").unwrap();
        let err = c.wait_durable(c.ticket()).expect_err("sync failure surfaces");
        assert_eq!(err, ErrorKind::Other);
        // Sticky: everything after the poison refuses.
        assert!(c.submit(b"later").is_err());
        assert!(c.wait_durable(c.ticket()).is_err());
        // But tickets at or below the durable watermark still report Ok —
        // an acked commit stays acked.
        assert!(c.wait_durable(1).is_ok());
    }

    #[test]
    fn drain_on_empty_coordinator_is_cheap() {
        let (c, probe, _) = coord(Duration::ZERO);
        c.drain().unwrap();
        c.drain().unwrap();
        assert_eq!(probe.syncs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn group_sink_write_is_one_unit_and_flush_drains() {
        let (c, probe, counters) = coord(Duration::ZERO);
        let mut sink = GroupSink::new(Arc::clone(&c));
        sink.write_all(b"frame-one").unwrap();
        sink.write_all(b"frame-two").unwrap();
        assert_eq!(counters.snapshot().ops, 2);
        assert_eq!(probe.data.lock().unwrap().len(), 0, "buffered until flush");
        sink.flush().unwrap();
        assert_eq!(&*probe.data.lock().unwrap(), b"frame-oneframe-two");
        assert_eq!(probe.syncs.load(Ordering::Relaxed), 1, "one sync for both");
    }
}
