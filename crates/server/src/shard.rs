//! Entity-to-shard routing.
//!
//! The routing function is deliberately factored out of the engine: today
//! it is a stateless hash (`mix(id) mod shards`), but the interface is the
//! seam where *partition-ownership* routing — placing an entity on the
//! shard whose partitions its synopsis matches, the distributed adaptive
//! placement of PHD-Store/AdPart — can be swapped in later without
//! touching the engine, the persistence layout, or the tests.
//!
//! **Stability contract.** Routing is part of the on-disk format: a store
//! created with `N` shards placed every entity by this exact function, so
//! changing the hash (or the shard count, see
//! [`cind_storage::Manifest`]) reshuffles ownership of persisted rows.
//! The mixer below is the splitmix64 finalizer, fixed forever for a given
//! store generation.

/// Maps entity ids to shard indices; stable across reopens by
/// construction.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) }
    }

    /// Number of shards routed over.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning entity `id`.
    #[must_use]
    pub fn route(&self, id: u64) -> usize {
        (Self::mix(id) % self.shards as u64) as usize
    }

    /// splitmix64 finalizer: a full-avalanche mix so structured id spaces
    /// (sequential, all-even, high-bits-only) still spread evenly.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for id in [0u64, 1, 7, u64::MAX] {
            assert_eq!(r.route(id), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            let a = ShardRouter::new(shards);
            let b = ShardRouter::new(shards);
            for id in 0..1000u64 {
                let s = a.route(id);
                assert!(s < shards);
                assert_eq!(s, b.route(id), "routing must be a pure function");
            }
        }
    }

    #[test]
    fn structured_ids_spread_evenly() {
        // Sequential and all-even id spaces must both land within 2x of a
        // perfectly even split — the property a raw `id % shards` fails
        // for the all-even space at shards=2.
        for stride in [1u64, 2] {
            let shards = 4;
            let r = ShardRouter::new(shards);
            let mut counts = vec![0usize; shards];
            let n = 4000u64;
            for i in 0..n {
                counts[r.route(i * stride)] += 1;
            }
            let ideal = n as usize / shards;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c > ideal / 2 && c < ideal * 2,
                    "stride {stride}: shard {s} got {c} of {n} (ideal {ideal})"
                );
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let r = ShardRouter::new(0);
        assert_eq!(r.shards(), 1);
        assert_eq!(r.route(42), 0);
    }
}
