//! A closed-loop load generator: N connections × mixed insert/query
//! workload, per-operation latency histograms.
//!
//! Each connection is one thread with one [`Client`], issuing requests
//! back-to-back (closed loop: the next request starts when the previous
//! response arrives). The entity stream comes from the DBpedia-like
//! generator, split across the connections; every `query_every`-th
//! operation is a `SELECT` over a small attribute set instead of an
//! insert. [`Response::Busy`](crate::Response::Busy) sheds are counted and
//! retried after a short backoff — under admission control a closed-loop
//! client *backs off*, it does not hammer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cind_datagen::{DbpediaConfig, DbpediaGenerator};
use cind_metrics::LatencyHistogram;
use cind_model::AttributeCatalog;

use crate::client::Client;
use crate::protocol::WireEntity;
use crate::ServerError;

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Total entities to insert, split across the connections.
    pub entities: usize,
    /// Distinct attributes in the generated data.
    pub attributes: usize,
    /// Every `query_every`-th operation is a query instead of an insert
    /// (`0` = inserts only).
    pub query_every: usize,
    /// RNG seed (generation and query choice are deterministic per seed).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            entities: 2_000,
            attributes: 60,
            query_every: 10,
            seed: 0xC1DE,
        }
    }
}

/// What one load run did and how fast the server answered.
pub struct LoadReport {
    /// Inserts acknowledged.
    pub inserts: u64,
    /// Queries answered.
    pub queries: u64,
    /// Rows returned across all queries.
    pub rows: u64,
    /// `Busy` sheds observed (each was retried until accepted).
    pub busy_sheds: u64,
    /// Queries that raced ahead of the inserts interning their attribute
    /// (typed `UnknownAttribute` — benign under a mixed workload).
    pub unknown_attr: u64,
    /// Other typed remote errors — should be zero on a healthy run.
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Per-insert round-trip latencies.
    pub insert_latency: LatencyHistogram,
    /// Per-query round-trip latencies.
    pub query_latency: LatencyHistogram,
}

impl LoadReport {
    /// Acknowledged operations per second over the whole run.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let ops = (self.inserts + self.queries) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            ops / secs
        } else {
            0.0
        }
    }

    /// A fixed-width text summary for the CLI.
    #[must_use]
    pub fn render(&mut self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ops: {} inserts, {} queries ({} rows) in {:.2?}  →  {:.0} ops/s\n",
            self.inserts,
            self.queries,
            self.rows,
            self.elapsed,
            self.throughput(),
        ));
        out.push_str(&format!(
            "admission control: {} Busy sheds, {} unseen-attribute queries, {} errors\n",
            self.busy_sheds, self.unknown_attr, self.errors
        ));
        for (name, hist) in [
            ("insert", &mut self.insert_latency),
            ("query", &mut self.query_latency),
        ] {
            if hist.is_empty() {
                continue;
            }
            let p50 = hist.percentile(50.0).unwrap_or_default();
            let p99 = hist.percentile(99.0).unwrap_or_default();
            out.push_str(&format!(
                "{name:>7} latency: p50 {p50:.2?}  p99 {p99:.2?}  mean {:.2?}\n",
                hist.mean().unwrap_or_default()
            ));
        }
        out
    }
}

struct ConnOutcome {
    inserts: u64,
    queries: u64,
    rows: u64,
    busy_sheds: u64,
    unknown_attr: u64,
    errors: u64,
    insert_lat: Vec<Duration>,
    query_lat: Vec<Duration>,
}

/// Generates the wire-ready entity stream and the query attribute pool for
/// a load config. Exposed so tests and the benchmark harness can reuse the
/// exact workload the generator drives.
#[must_use]
pub fn workload(cfg: &LoadConfig) -> (Vec<WireEntity>, Vec<String>) {
    let mut catalog = AttributeCatalog::new();
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: cfg.entities,
        attributes: cfg.attributes.max(4),
        seed: cfg.seed,
        ..DbpediaConfig::default()
    })
    .generate(&mut catalog);
    let wire: Vec<WireEntity> = entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| {
                    (
                        catalog.name(*a).unwrap_or_default().to_string(),
                        v.clone(),
                    )
                })
                .collect(),
        })
        .collect();
    let names: Vec<String> = catalog.iter().map(|(_, n)| n.to_string()).collect();
    (wire, names)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the closed-loop load against `addr` and aggregates per-connection
/// measurements into one report (no double counting: every operation is
/// timed exactly once, on the connection that issued it).
///
/// # Errors
/// Connection failures; in-band remote errors are *counted*, not raised.
pub fn run_load(addr: &str, cfg: &LoadConfig) -> Result<LoadReport, ServerError> {
    let (entities, names) = workload(cfg);
    let names = Arc::new(names);
    let connections = cfg.connections.max(1);
    let mut chunks: Vec<Vec<WireEntity>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, e) in entities.into_iter().enumerate() {
        chunks[i % connections].push(e);
    }

    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for (conn_id, chunk) in chunks.into_iter().enumerate() {
        let addr = addr.to_string();
        let names = Arc::clone(&names);
        let query_every = cfg.query_every;
        let seed = cfg.seed ^ (conn_id as u64).wrapping_mul(0xA5A5_A5A5);
        handles.push(std::thread::spawn(move || {
            run_connection(&addr, chunk, &names, query_every, seed)
        }));
    }

    let mut report = LoadReport {
        inserts: 0,
        queries: 0,
        rows: 0,
        busy_sheds: 0,
        unknown_attr: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        insert_latency: LatencyHistogram::new(),
        query_latency: LatencyHistogram::new(),
    };
    let mut first_err: Option<ServerError> = None;
    for h in handles {
        match h.join() {
            Ok(Ok(out)) => {
                report.inserts += out.inserts;
                report.queries += out.queries;
                report.rows += out.rows;
                report.busy_sheds += out.busy_sheds;
                report.unknown_attr += out.unknown_attr;
                report.errors += out.errors;
                for d in out.insert_lat {
                    report.insert_latency.record(d);
                }
                for d in out.query_lat {
                    report.query_latency.record(d);
                }
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err =
                    first_err.or(Some(ServerError::Io(std::io::Error::other(
                        "load connection thread panicked",
                    ))));
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

fn run_connection(
    addr: &str,
    chunk: Vec<WireEntity>,
    names: &[String],
    query_every: usize,
    seed: u64,
) -> Result<ConnOutcome, ServerError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    let mut rng = seed;
    let mut out = ConnOutcome {
        inserts: 0,
        queries: 0,
        rows: 0,
        busy_sheds: 0,
        unknown_attr: 0,
        errors: 0,
        insert_lat: Vec::with_capacity(chunk.len()),
        query_lat: Vec::new(),
    };
    for (i, entity) in chunk.into_iter().enumerate() {
        if query_every > 0 && i > 0 && i % query_every == 0 && !names.is_empty() {
            let a = &names[(splitmix(&mut rng) as usize) % names.len()];
            let b = &names[(splitmix(&mut rng) as usize) % names.len()];
            let t0 = Instant::now();
            match retry_busy(&mut out.busy_sheds, || {
                client.query([a.as_str(), b.as_str()])
            }) {
                Ok((rows, _)) => {
                    out.query_lat.push(t0.elapsed());
                    out.queries += 1;
                    out.rows += rows.len() as u64;
                }
                Err(ServerError::Remote { code: crate::ErrorCode::UnknownAttribute, .. }) => {
                    out.unknown_attr += 1;
                }
                Err(ServerError::Remote { .. }) => out.errors += 1,
                Err(e) => return Err(e),
            }
        }
        let t0 = Instant::now();
        match retry_busy(&mut out.busy_sheds, || client.insert(entity.clone())) {
            Ok(_) => {
                out.insert_lat.push(t0.elapsed());
                out.inserts += 1;
            }
            Err(ServerError::Remote { .. }) => out.errors += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Retries `op` while the server sheds it, counting the sheds. The backoff
/// is short and fixed: the point of admission control is that the *server*
/// stays responsive; the client's job is merely not to spin.
fn retry_busy<T>(
    sheds: &mut u64,
    mut op: impl FnMut() -> Result<T, ServerError>,
) -> Result<T, ServerError> {
    loop {
        match op() {
            Err(ServerError::Busy) => {
                *sheds += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            other => return other,
        }
    }
}
