//! A load generator: N connections × mixed insert/query workload,
//! per-operation latency histograms.
//!
//! Each connection is one thread with one [`Client`]. In the default
//! closed loop it issues requests back-to-back (the next request starts
//! when the previous response arrives); with [`LoadConfig::pipeline`]` >
//! 1` it keeps K requests in flight per connection, and with
//! [`LoadConfig::batch`]` > 1` it packs inserts into wire-level
//! `InsertBatch` frames. The entity stream comes from the DBpedia-like
//! generator, split across the connections; every `query_every`-th
//! operation is a `SELECT` over a small attribute set instead of an
//! insert. [`Response::Busy`](crate::Response::Busy) sheds are counted
//! and retried after a short backoff (closed loop) or by re-queueing the
//! operation (pipelined) — under admission control a load client *backs
//! off*, it does not hammer.
//!
//! # Latency accounting under pipelining
//!
//! A closed-loop round-trip time is an honest per-operation latency; a
//! pipelined one is not — response *i* cannot arrive before response
//! *i−1* has been read, so the raw `recv − send` of a deeply pipelined
//! operation mostly measures queueing behind its own connection's
//! earlier requests. The report therefore keeps two histograms per
//! operation class:
//!
//! * **end-to-end** — `recv_i − send_i`, what the caller experienced;
//! * **service** — `recv_i − max(recv_{i−1}, send_i)`, the marginal time
//!   attributable to operation *i* itself once the line ahead of it had
//!   cleared.
//!
//! In closed-loop mode the two coincide.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use cind_datagen::{DbpediaConfig, DbpediaGenerator, DriftConfig, DriftMode, DriftOp, DriftScenario};
use cind_metrics::LatencyHistogram;
use cind_model::AttributeCatalog;

use crate::client::Client;
use crate::protocol::{Request, Response, WireEntity};
use crate::ServerError;

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Total entities to insert, split across the connections.
    pub entities: usize,
    /// Distinct attributes in the generated data.
    pub attributes: usize,
    /// Every `query_every`-th operation is a query instead of an insert
    /// (`0` = inserts only).
    pub query_every: usize,
    /// RNG seed (generation and query choice are deterministic per seed).
    pub seed: u64,
    /// Requests kept in flight per connection. `0` or `1` = classic
    /// closed loop; `K > 1` = pipelined mode, K frames outstanding before
    /// the first response is read (the client batches the unsent frames
    /// into single `write` calls).
    pub pipeline: usize,
    /// Inserts packed per wire-level `InsertBatch` frame. `0` or `1` =
    /// one insert per frame; `N > 1` = batched mode (mutually exclusive
    /// with pipelining; batch wins if both are set).
    pub batch: usize,
    /// Workload shape. [`DriftMode::Steady`] keeps the classic DBpedia
    /// stream; the drift modes generate grouped scenario streams
    /// ([`DriftScenario`]) whose query focus moves (or whose population
    /// churns) so the reorganizer has something to chase.
    pub mode: DriftMode,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            entities: 2_000,
            attributes: 60,
            query_every: 10,
            seed: 0xC1DE,
            pipeline: 1,
            batch: 1,
            mode: DriftMode::Steady,
        }
    }
}

/// What one load run did and how fast the server answered.
pub struct LoadReport {
    /// Inserts acknowledged.
    pub inserts: u64,
    /// Deletes acknowledged (drift scenario streams only).
    pub deletes: u64,
    /// Queries answered.
    pub queries: u64,
    /// Rows returned across all queries.
    pub rows: u64,
    /// `Busy` sheds observed (each was retried until accepted).
    pub busy_sheds: u64,
    /// Queries that raced ahead of the inserts interning their attribute
    /// (typed `UnknownAttribute` — benign under a mixed workload).
    pub unknown_attr: u64,
    /// Other typed remote errors — should be zero on a healthy run.
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Per-insert end-to-end latencies (`recv − send`).
    pub insert_latency: LatencyHistogram,
    /// Per-query end-to-end latencies.
    pub query_latency: LatencyHistogram,
    /// Per-insert service times (see the module docs; equals end-to-end
    /// in closed-loop mode).
    pub insert_service: LatencyHistogram,
    /// Per-query service times.
    pub query_service: LatencyHistogram,
}

impl LoadReport {
    /// Acknowledged operations per second over the whole run.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let ops = (self.inserts + self.deletes + self.queries) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            ops / secs
        } else {
            0.0
        }
    }

    /// A fixed-width text summary for the CLI.
    #[must_use]
    pub fn render(&mut self) -> String {
        let mut out = String::new();
        let deletes = if self.deletes > 0 {
            format!(", {} deletes", self.deletes)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "ops: {} inserts{deletes}, {} queries ({} rows) in {:.2?}  →  {:.0} ops/s\n",
            self.inserts,
            self.queries,
            self.rows,
            self.elapsed,
            self.throughput(),
        ));
        out.push_str(&format!(
            "admission control: {} Busy sheds, {} unseen-attribute queries, {} errors\n",
            self.busy_sheds, self.unknown_attr, self.errors
        ));
        for (name, hist) in [
            ("insert e2e", &mut self.insert_latency),
            ("insert svc", &mut self.insert_service),
            ("query e2e", &mut self.query_latency),
            ("query svc", &mut self.query_service),
        ] {
            if hist.is_empty() {
                continue;
            }
            let p50 = hist.percentile(50.0).unwrap_or_default();
            let p99 = hist.percentile(99.0).unwrap_or_default();
            out.push_str(&format!(
                "{name:>11} latency: p50 {p50:.2?}  p99 {p99:.2?}  mean {:.2?}\n",
                hist.mean().unwrap_or_default()
            ));
        }
        out
    }
}

#[derive(Default)]
struct ConnOutcome {
    inserts: u64,
    deletes: u64,
    queries: u64,
    rows: u64,
    busy_sheds: u64,
    unknown_attr: u64,
    errors: u64,
    insert_lat: Vec<Duration>,
    query_lat: Vec<Duration>,
    insert_svc: Vec<Duration>,
    query_svc: Vec<Duration>,
}

/// One scheduled operation in a connection's stream.
enum LoadOp {
    Insert(WireEntity),
    Delete(u64),
    Query(Vec<String>),
}

impl LoadOp {
    fn to_request(&self) -> Request {
        match self {
            LoadOp::Insert(e) => Request::Insert(e.clone()),
            LoadOp::Delete(id) => Request::Delete(*id),
            LoadOp::Query(attrs) => Request::Query(attrs.clone()),
        }
    }
}

/// Generates the wire-ready entity stream and the query attribute pool for
/// a load config. Exposed so tests and the benchmark harness can reuse the
/// exact workload the generator drives.
#[must_use]
pub fn workload(cfg: &LoadConfig) -> (Vec<WireEntity>, Vec<String>) {
    let mut catalog = AttributeCatalog::new();
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: cfg.entities,
        attributes: cfg.attributes.max(4),
        seed: cfg.seed,
        ..DbpediaConfig::default()
    })
    .generate(&mut catalog);
    let wire: Vec<WireEntity> = entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| {
                    (
                        catalog.name(*a).unwrap_or_default().to_string(),
                        v.clone(),
                    )
                })
                .collect(),
        })
        .collect();
    let names: Vec<String> = catalog.iter().map(|(_, n)| n.to_string()).collect();
    (wire, names)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Plans every connection's operation stream up front. Steady mode splits
/// the DBpedia entity stream round-robin and interleaves queries exactly
/// as the original closed loop did; the drift modes give each connection
/// its own [`DriftScenario`] over a disjoint id space, so deletes always
/// trail their inserts on the same (ordered) connection.
fn plan_connections(cfg: &LoadConfig, connections: usize) -> Vec<Vec<LoadOp>> {
    let conn_seed =
        |c: usize| cfg.seed ^ (c as u64).wrapping_mul(0xA5A5_A5A5);
    if cfg.mode != DriftMode::Steady {
        let per_conn = cfg.entities.div_ceil(connections);
        return (0..connections)
            .map(|c| plan_drift_ops(cfg, per_conn, c, conn_seed(c)))
            .collect();
    }
    let (entities, names) = workload(cfg);
    let mut chunks: Vec<Vec<WireEntity>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, e) in entities.into_iter().enumerate() {
        chunks[i % connections].push(e);
    }
    chunks
        .into_iter()
        .enumerate()
        .map(|(c, chunk)| plan_ops(chunk, &names, cfg.query_every, conn_seed(c)))
        .collect()
}

/// One connection's drift-scenario stream, rendered to wire operations.
/// Entity ids are offset per connection so the streams never collide.
fn plan_drift_ops(cfg: &LoadConfig, per_conn: usize, conn_id: usize, seed: u64) -> Vec<LoadOp> {
    let query_share = if cfg.query_every > 0 {
        1.0 / (cfg.query_every as f64 + 1.0)
    } else {
        0.0
    };
    let ops = per_conn + per_conn.checked_div(cfg.query_every).unwrap_or(0);
    let mut catalog = AttributeCatalog::new();
    let stream = DriftScenario::new(DriftConfig {
        mode: cfg.mode,
        ops: ops.max(1),
        query_share,
        seed,
        ..DriftConfig::default()
    })
    .generate(&mut catalog, (conn_id as u64) << 40);
    let name_of = |a: cind_model::AttrId| catalog.name(a).unwrap_or_default().to_string();
    stream
        .into_iter()
        .map(|op| match op {
            DriftOp::Insert(e) => LoadOp::Insert(WireEntity {
                id: e.id().0,
                attrs: e.attrs().iter().map(|(a, v)| (name_of(*a), v.clone())).collect(),
            }),
            DriftOp::Delete(id) => LoadOp::Delete(id.0),
            DriftOp::Query(attrs) => {
                LoadOp::Query(attrs.into_iter().map(name_of).collect())
            }
        })
        .collect()
}

/// Interleaves the connection's insert chunk with its scheduled queries,
/// in the same order the original closed loop issued them.
fn plan_ops(
    chunk: Vec<WireEntity>,
    names: &[String],
    query_every: usize,
    mut rng: u64,
) -> Vec<LoadOp> {
    let mut ops = Vec::with_capacity(chunk.len() + chunk.len() / query_every.max(1));
    for (i, entity) in chunk.into_iter().enumerate() {
        if query_every > 0 && i > 0 && i % query_every == 0 && !names.is_empty() {
            let a = names[(splitmix(&mut rng) as usize) % names.len()].clone();
            let b = names[(splitmix(&mut rng) as usize) % names.len()].clone();
            ops.push(LoadOp::Query(vec![a, b]));
        }
        ops.push(LoadOp::Insert(entity));
    }
    ops
}

/// Runs the load against `addr` and aggregates per-connection
/// measurements into one report (no double counting: every operation is
/// timed exactly once, on the connection that issued it).
///
/// # Errors
/// Connection failures; in-band remote errors are *counted*, not raised.
pub fn run_load(addr: &str, cfg: &LoadConfig) -> Result<LoadReport, ServerError> {
    let connections = cfg.connections.max(1);
    let plans = plan_connections(cfg, connections);

    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for ops in plans {
        let addr = addr.to_string();
        let pipeline = cfg.pipeline;
        let batch = cfg.batch;
        handles.push(std::thread::spawn(move || {
            run_connection(&addr, ops, pipeline, batch)
        }));
    }

    let mut report = LoadReport {
        inserts: 0,
        deletes: 0,
        queries: 0,
        rows: 0,
        busy_sheds: 0,
        unknown_attr: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        insert_latency: LatencyHistogram::new(),
        query_latency: LatencyHistogram::new(),
        insert_service: LatencyHistogram::new(),
        query_service: LatencyHistogram::new(),
    };
    let mut first_err: Option<ServerError> = None;
    for h in handles {
        match h.join() {
            Ok(Ok(out)) => {
                report.inserts += out.inserts;
                report.deletes += out.deletes;
                report.queries += out.queries;
                report.rows += out.rows;
                report.busy_sheds += out.busy_sheds;
                report.unknown_attr += out.unknown_attr;
                report.errors += out.errors;
                for d in out.insert_lat {
                    report.insert_latency.record(d);
                }
                for d in out.query_lat {
                    report.query_latency.record(d);
                }
                for d in out.insert_svc {
                    report.insert_service.record(d);
                }
                for d in out.query_svc {
                    report.query_service.record(d);
                }
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err =
                    first_err.or(Some(ServerError::Io(std::io::Error::other(
                        "load connection thread panicked",
                    ))));
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

fn run_connection(
    addr: &str,
    ops: Vec<LoadOp>,
    pipeline: usize,
    batch: usize,
) -> Result<ConnOutcome, ServerError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    if batch > 1 {
        run_batched(&mut client, ops, batch)
    } else if pipeline > 1 {
        run_pipelined(&mut client, ops, pipeline)
    } else {
        run_closed_loop(&mut client, ops)
    }
}

/// The classic closed loop: one request outstanding, service time equals
/// end-to-end time by construction.
fn run_closed_loop(client: &mut Client, ops: Vec<LoadOp>) -> Result<ConnOutcome, ServerError> {
    let mut out = ConnOutcome::default();
    for op in ops {
        let t0 = Instant::now();
        let resp = roundtrip_retrying(client, &op, &mut out.busy_sheds)?;
        let elapsed = t0.elapsed();
        settle(&op, resp, elapsed, elapsed, &mut out)?;
    }
    Ok(out)
}

/// One-at-a-time round-trip that absorbs `Busy` sheds with a short sleep
/// (`roundtrip` surfaces `Busy` as a decoded response value, not an
/// error, so the generic [`retry_busy`] wrapper cannot see it).
fn roundtrip_retrying(
    client: &mut Client,
    op: &LoadOp,
    sheds: &mut u64,
) -> Result<Response, ServerError> {
    loop {
        let resp = client.roundtrip(&op.to_request())?;
        if matches!(resp, Response::Busy) {
            *sheds += 1;
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        return Ok(resp);
    }
}

/// Pipelined mode: keep `depth` requests in flight; `Busy` sheds re-queue
/// the operation at the back instead of sleeping (the pipeline itself is
/// the backoff — shed work yields its slot to the line behind it).
fn run_pipelined(
    client: &mut Client,
    ops: Vec<LoadOp>,
    depth: usize,
) -> Result<ConnOutcome, ServerError> {
    let mut out = ConnOutcome::default();
    let mut todo: VecDeque<LoadOp> = ops.into();
    let mut inflight: VecDeque<(LoadOp, Instant)> = VecDeque::new();
    let mut prev_recv: Option<Instant> = None;
    while !todo.is_empty() || !inflight.is_empty() {
        while inflight.len() < depth {
            let Some(op) = todo.pop_front() else { break };
            client.send(&op.to_request())?;
            inflight.push_back((op, Instant::now()));
        }
        let resp = client.recv()?;
        let Some((op, sent)) = inflight.pop_front() else {
            return Err(ServerError::UnexpectedResponse);
        };
        let now = Instant::now();
        let e2e = now.duration_since(sent);
        let service = now.duration_since(prev_recv.map_or(sent, |p| p.max(sent)));
        prev_recv = Some(now);
        if matches!(resp, Response::Busy) {
            out.busy_sheds += 1;
            todo.push_back(op);
            continue;
        }
        settle(&op, resp, e2e, service, &mut out)?;
    }
    Ok(out)
}

/// Batched mode: inserts travel `width` to a frame; scheduled queries cut
/// the current batch so operation order is preserved. Every item in a
/// batch acks when the batch does, so the batch round-trip *is* each
/// item's end-to-end latency.
fn run_batched(
    client: &mut Client,
    ops: Vec<LoadOp>,
    width: usize,
) -> Result<ConnOutcome, ServerError> {
    let mut out = ConnOutcome::default();
    let mut pending: Vec<WireEntity> = Vec::with_capacity(width);
    for op in ops {
        match op {
            LoadOp::Insert(e) => {
                pending.push(e);
                if pending.len() >= width {
                    flush_batch(client, &mut pending, &mut out)?;
                }
            }
            // Queries and deletes cut the current batch so operation
            // order is preserved (a delete must not overtake the batched
            // insert of its own entity).
            op @ (LoadOp::Query(_) | LoadOp::Delete(_)) => {
                flush_batch(client, &mut pending, &mut out)?;
                let t0 = Instant::now();
                let resp = roundtrip_retrying(client, &op, &mut out.busy_sheds)?;
                let elapsed = t0.elapsed();
                settle(&op, resp, elapsed, elapsed, &mut out)?;
            }
        }
    }
    flush_batch(client, &mut pending, &mut out)?;
    Ok(out)
}

fn flush_batch(
    client: &mut Client,
    pending: &mut Vec<WireEntity>,
    out: &mut ConnOutcome,
) -> Result<(), ServerError> {
    if pending.is_empty() {
        return Ok(());
    }
    let batch: Vec<WireEntity> = std::mem::take(pending);
    let t0 = Instant::now();
    let results = retry_busy(&mut out.busy_sheds, || client.insert_batch(batch.clone()))?;
    let elapsed = t0.elapsed();
    for item in results {
        match item {
            Ok(_) => {
                out.inserts += 1;
                out.insert_lat.push(elapsed);
                out.insert_svc.push(elapsed);
            }
            Err(ServerError::Busy) => out.busy_sheds += 1,
            Err(_) => out.errors += 1,
        }
    }
    Ok(())
}

/// Books one non-`Busy` response into the outcome. `Busy` must be handled
/// by the caller (retry policy differs per mode).
fn settle(
    op: &LoadOp,
    resp: Response,
    e2e: Duration,
    service: Duration,
    out: &mut ConnOutcome,
) -> Result<(), ServerError> {
    match (op, resp) {
        (LoadOp::Insert(_), Response::Written { .. }) => {
            out.inserts += 1;
            out.insert_lat.push(e2e);
            out.insert_svc.push(service);
        }
        // Deletes are counted but not folded into the insert histograms
        // (the report labels those per operation class).
        (LoadOp::Delete(_), Response::Deleted) => out.deletes += 1,
        (LoadOp::Query(_), Response::Rows { rows, .. }) => {
            out.queries += 1;
            out.rows += rows.len() as u64;
            out.query_lat.push(e2e);
            out.query_svc.push(service);
        }
        (
            LoadOp::Query(_),
            Response::Error { code: crate::ErrorCode::UnknownAttribute, .. },
        ) => out.unknown_attr += 1,
        (_, Response::Error { .. }) => out.errors += 1,
        _ => return Err(ServerError::UnexpectedResponse),
    }
    Ok(())
}

/// Retries `op` while the server sheds it, counting the sheds. The backoff
/// is short and fixed: the point of admission control is that the *server*
/// stays responsive; the client's job is merely not to spin.
fn retry_busy<T>(
    sheds: &mut u64,
    mut op: impl FnMut() -> Result<T, ServerError>,
) -> Result<T, ServerError> {
    loop {
        match op() {
            Err(ServerError::Busy) => {
                *sheds += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            other => return other,
        }
    }
}
