//! The [`ShardedEngine`]: N independent [`Engine`] shards behind one
//! service facade.
//!
//! Each shard owns a full vertical slice — its own Cinderella partitioner,
//! universal table, buffer pool, WAL, and snapshot file — living in its own
//! subdirectory (`shard-0000/`, `shard-0001/`, …) of the store root, and is
//! recovered independently (restore → replay → rebuild → checkpoint). A
//! [`cind_storage::Manifest`] at the root records the shard count, which is
//! structural: entities hash-route via [`ShardRouter`], so the manifest is
//! authoritative on reopen — the requested count is only used when creating
//! a fresh store.
//!
//! Concurrency model: writes route to exactly one shard and serialise on
//! *that shard's* writer lock only; a write to shard 2 never blocks a write
//! to shard 5, and queries never block behind any writer at all — each
//! shard hands out an epoch-tagged [`crate::engine::EngineSnapshot`] and
//! the scan runs entirely off-lock. Queries fan out to every shard and
//! merge in shard order (each shard's rows are already in its own
//! deterministic plan order), so results are reproducible run to run.
//!
//! Crash domains: because shards share no mutable state and no files, a
//! crash (torn WAL, failed checkpoint) in one shard is recoverable by
//! reopening *that shard alone* ([`ShardedEngine::reopen_shard`]) while the
//! others keep serving — the property the simulation harness machine-checks
//! by crashing individual shards mid-workload.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

use cind_storage::{Manifest, Vfs};
use cinderella_core::MergeReport;

use crate::engine::{to_frame, Engine, EngineOptions, SNAPSHOT_FILE, WAL_FILE};
use crate::protocol::{EngineStats, IoCounters, QueryStats, Request, Response, WireEntity};
use crate::shard::ShardRouter;
use crate::ServerError;

/// Manifest file name at the root of a sharded store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The subdirectory name for shard `i` (`shard-0000`, `shard-0001`, …).
#[must_use]
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:04}")
}

/// Hardware threads available to this process, probed once. Gates whether
/// query fan-out spawns OS threads at all: on a single hardware thread the
/// legs run inline instead.
fn hardware_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// How to build a [`ShardedEngine`].
#[derive(Clone)]
pub struct ShardedOptions {
    /// Per-shard engine options (partitioner config, pool pages, query
    /// threads, default VFS).
    pub engine: EngineOptions,
    /// Requested shard count (clamped to ≥ 1). On reopen the on-disk
    /// manifest wins; this value only shapes a *fresh* store.
    pub shards: usize,
    /// Optional per-shard VFS override: shard `i` uses `shard_vfs[i]` when
    /// present, else `engine.vfs`. The simulation harness injects one
    /// fault-injecting backend per shard here so crashes stay confined to
    /// one crash domain.
    pub shard_vfs: Vec<Arc<dyn Vfs>>,
}

impl ShardedOptions {
    /// Options for `shards` shards sharing `engine`'s defaults.
    #[must_use]
    pub fn new(engine: EngineOptions, shards: usize) -> Self {
        Self { engine, shards, shard_vfs: Vec::new() }
    }
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self::new(EngineOptions::default(), 1)
    }
}

impl std::fmt::Debug for ShardedOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOptions")
            .field("engine", &self.engine)
            .field("shards", &self.shards)
            .field("shard_vfs", &format_args!("[{} overrides]", self.shard_vfs.len()))
            .finish()
    }
}

/// N independent engine shards behind one facade: routed writes, fanned-out
/// queries, aggregated stats, per-shard recovery.
pub struct ShardedEngine {
    /// One slot per shard. The slot lock is *not* the shard's writer lock —
    /// the engine has its own — it only guards swapping the `Arc` during
    /// [`Self::reopen_shard`], so operations in flight on the old engine
    /// finish against the old instance while new ones see the reopened one.
    slots: Vec<RwLock<Arc<Engine>>>,
    router: ShardRouter,
    store: Option<PathBuf>,
    opts: ShardedOptions,
}

impl ShardedEngine {
    /// A fresh in-memory sharded engine (no durability).
    #[must_use]
    pub fn in_memory(opts: ShardedOptions) -> Self {
        let shards = opts.shards.max(1);
        let slots = (0..shards)
            .map(|i| RwLock::new(Arc::new(Engine::in_memory(Self::shard_opts(&opts, i)))))
            .collect();
        Self { slots, router: ShardRouter::new(shards), store: None, opts }
    }

    /// Opens (or creates) a sharded store directory.
    ///
    /// * Fresh directory: writes a manifest for `opts.shards` and creates
    ///   the shard subdirectories.
    /// * Existing sharded store: the manifest's count is authoritative (the
    ///   requested count is ignored — resharding is not an in-place
    ///   operation).
    /// * Legacy unsharded store (`store.cind` / `wal.log` at the root, no
    ///   manifest): migrated into `shard-0000/` when `opts.shards == 1`;
    ///   refused loudly otherwise, since hash-routing an already-placed
    ///   population across N shards would strand every row.
    ///
    /// # Errors
    /// I/O and persistence failures; [`ServerError::Internal`] on the
    /// legacy-layout mismatch above; per-shard recovery failures.
    pub fn open(dir: &Path, opts: ShardedOptions) -> Result<Self, ServerError> {
        let meta_vfs = Arc::clone(&opts.engine.vfs);
        meta_vfs.create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let requested = opts.shards.max(1);
        let shards = match Manifest::read_from(&*meta_vfs, &manifest_path)? {
            Some(m) => m.shards,
            None => {
                let legacy_snap = dir.join(SNAPSHOT_FILE);
                let legacy_wal = dir.join(WAL_FILE);
                let legacy = meta_vfs.exists(&legacy_snap) || meta_vfs.exists(&legacy_wal);
                if legacy && requested != 1 {
                    return Err(ServerError::Internal(format!(
                        "store at {} has a legacy unsharded layout; open it with \
                         --shards 1 first (it migrates into shard-0000/)",
                        dir.display()
                    )));
                }
                if legacy {
                    let shard0 = dir.join(shard_dir_name(0));
                    meta_vfs.create_dir_all(&shard0)?;
                    if meta_vfs.exists(&legacy_snap) {
                        meta_vfs.rename(&legacy_snap, &shard0.join(SNAPSHOT_FILE))?;
                    }
                    if meta_vfs.exists(&legacy_wal) {
                        meta_vfs.rename(&legacy_wal, &shard0.join(WAL_FILE))?;
                    }
                }
                Manifest { shards: requested }.write_to(&*meta_vfs, &manifest_path)?;
                requested
            }
        };
        let mut slots = Vec::with_capacity(shards);
        for i in 0..shards {
            slots.push(RwLock::new(Arc::new(Self::open_shard(dir, &opts, i)?)));
        }
        Ok(Self {
            slots,
            router: ShardRouter::new(shards),
            store: Some(dir.to_path_buf()),
            opts,
        })
    }

    fn shard_opts(opts: &ShardedOptions, i: usize) -> EngineOptions {
        let mut engine = opts.engine.clone();
        if let Some(vfs) = opts.shard_vfs.get(i) {
            engine.vfs = Arc::clone(vfs);
        }
        engine
    }

    fn open_shard(dir: &Path, opts: &ShardedOptions, i: usize) -> Result<Engine, ServerError> {
        Engine::open(&dir.join(shard_dir_name(i)), Self::shard_opts(opts, i))
    }

    /// Number of shards (fixed at store creation).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The routing function (exposed so harnesses can predict placement).
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard owning entity `id`.
    #[must_use]
    pub fn shard_of(&self, id: u64) -> usize {
        self.router.route(id)
    }

    /// The current engine instance for shard `i` (an `Arc` clone; the slot
    /// lock is held only for the clone, never across engine calls).
    #[must_use]
    pub fn shard_engine(&self, i: usize) -> Arc<Engine> {
        Arc::clone(&self.slots[i].read().unwrap_or_else(PoisonError::into_inner))
    }

    /// `Arc` clones of every shard engine, in shard order.
    fn engines(&self) -> Vec<Arc<Engine>> {
        self.slots
            .iter()
            .map(|slot| Arc::clone(&slot.read().unwrap_or_else(PoisonError::into_inner)))
            .collect()
    }

    /// Inserts an entity on its owning shard; returns `(segment, split?)`.
    ///
    /// # Errors
    /// Duplicate ids, storage failures, attribute-less entities.
    pub fn insert(&self, wire: &crate::protocol::WireEntity) -> Result<(u32, bool), ServerError> {
        self.shard_engine(self.router.route(wire.id)).insert(wire)
    }

    /// Inserts a batch of entities: one pass groups them by owning shard,
    /// then each shard runs its group under a single writer-lock
    /// acquisition and a single group-commit durability wait
    /// ([`Engine::insert_many`]). Placement is identical to inserting the
    /// same entities one at a time in request order — within a shard the
    /// relative order is preserved, and entities on different shards never
    /// observe each other.
    ///
    /// Per-item results, scattered back to request order.
    #[must_use]
    pub fn insert_batch(
        &self,
        wires: &[WireEntity],
    ) -> Vec<Result<(u32, bool), ServerError>> {
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (i, wire) in wires.iter().enumerate() {
            per_shard[self.router.route(wire.id)].push(i);
        }
        let mut out: Vec<Option<Result<(u32, bool), ServerError>>> =
            wires.iter().map(|_| None).collect();
        for (shard, idxs) in per_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let engine = self.shard_engine(shard);
            let group: Vec<&WireEntity> = idxs.iter().map(|&i| &wires[i]).collect();
            for (&i, result) in idxs.iter().zip(engine.insert_many(&group)) {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(ServerError::Internal("batch item lost in routing".to_string()))
                })
            })
            .collect()
    }

    /// Runs a batch of queries sequentially; the legs share each shard's
    /// per-epoch snapshot cache, so the fan-out clone is paid once per
    /// epoch, not once per leg.
    #[must_use]
    pub fn query_batch(
        &self,
        queries: &[Vec<String>],
    ) -> Vec<Result<(Vec<crate::client::Row>, QueryStats), ServerError>> {
        queries.iter().map(|attrs| self.query(attrs)).collect()
    }

    /// Replaces a stored entity on its owning shard.
    ///
    /// # Errors
    /// Unknown ids, storage failures.
    pub fn update(&self, wire: &crate::protocol::WireEntity) -> Result<(u32, bool), ServerError> {
        self.shard_engine(self.router.route(wire.id)).update(wire)
    }

    /// Deletes an entity from its owning shard.
    ///
    /// # Errors
    /// Unknown ids, storage failures.
    pub fn delete(&self, id: u64) -> Result<(), ServerError> {
        self.shard_engine(self.router.route(id)).delete(id)
    }

    /// Runs a `SELECT attrs` query across every shard and merges the rows
    /// in shard order (deterministic: each shard's rows are already in its
    /// own plan order). Per-shard stats are summed. An attribute unknown on
    /// *some* shards projects as NULL there; only an attribute unknown on
    /// **every** shard is an error — matching the unsharded engine, where
    /// there is exactly one catalog.
    ///
    /// # Errors
    /// [`ServerError::UnknownAttribute`]; storage failures from any leg.
    pub fn query(
        &self,
        attrs: &[String],
    ) -> Result<(Vec<crate::client::Row>, QueryStats), ServerError> {
        let engines = self.engines();
        if engines.len() == 1 {
            return engines[0].query(attrs);
        }
        if attrs.is_empty() {
            // `Query::from_names` accepts an empty projection (zero rows);
            // keep the sharded path consistent with the unsharded one.
            return Err(ServerError::UnknownAttribute("<empty attribute list>".to_string()));
        }
        // Fan out on threads only when the machine can actually run legs
        // concurrently; on a single hardware thread the spawn/join overhead
        // is pure loss, so scan the shards inline. Either way the first leg
        // runs on the caller's thread. Merge order is by shard index in
        // both paths, so results are byte-identical.
        let legs: Vec<Result<_, ServerError>> = if hardware_threads() == 1 {
            engines.iter().map(|engine| engine.query_subset(attrs)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = engines
                    .iter()
                    .skip(1)
                    .map(|engine| scope.spawn(move || engine.query_subset(attrs)))
                    .collect();
                let mut legs = vec![engines[0].query_subset(attrs)];
                legs.extend(handles.into_iter().map(|h| {
                    h.join()
                        .map_err(|_| {
                            ServerError::Internal("shard query worker panicked".to_string())
                        })
                        .and_then(|leg| leg)
                }));
                legs
            })
        };
        let mut rows = Vec::new();
        let mut stats = QueryStats::default();
        let mut known_any = vec![false; attrs.len()];
        for leg in legs {
            let (leg_rows, leg_stats, known) = leg?;
            rows.extend(leg_rows);
            stats.entities_scanned += leg_stats.entities_scanned;
            stats.segments_read += leg_stats.segments_read;
            stats.segments_pruned += leg_stats.segments_pruned;
            stats.logical_reads += leg_stats.logical_reads;
            stats.physical_reads += leg_stats.physical_reads;
            for (any, k) in known_any.iter_mut().zip(known) {
                *any |= k;
            }
        }
        if let Some(i) = known_any.iter().position(|k| !k) {
            return Err(ServerError::UnknownAttribute(attrs[i].clone()));
        }
        Ok((rows, stats))
    }

    /// Aggregated counters: additive fields are summed; `attributes` is the
    /// size of the *union* of per-shard catalogs (shards intern
    /// independently, so summing would double-count shared names).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        let mut names: BTreeSet<String> = BTreeSet::new();
        for engine in self.engines() {
            let s = engine.stats();
            total.entities += s.entities;
            total.partitions += s.partitions;
            total.logical_reads += s.logical_reads;
            total.physical_reads += s.physical_reads;
            total.page_writes += s.page_writes;
            total.evictions += s.evictions;
            engine.with_parts(|table, _| {
                for (_, name) in table.catalog().iter() {
                    names.insert(name.to_string());
                }
            });
        }
        total.attributes = names.len() as u64;
        total
    }

    /// Runs the full structural validation on every shard; each violation
    /// line is prefixed with its crash domain (`[shard i] …`).
    ///
    /// # Errors
    /// Storage failures from the validation scans.
    pub fn validate(&self) -> Result<Vec<String>, ServerError> {
        let mut out = Vec::new();
        for (i, engine) in self.engines().into_iter().enumerate() {
            for line in engine.validate()? {
                out.push(format!("[shard {i}] {line}"));
            }
        }
        Ok(out)
    }

    /// Drains every shard's WAL through its commit coordinator.
    ///
    /// # Errors
    /// The first shard's sticky WAL failure, if appends or group flushes
    /// have been failing.
    pub fn flush_wal(&self) -> Result<(), ServerError> {
        for engine in self.engines() {
            engine.flush_wal()?;
        }
        Ok(())
    }

    /// Summed WAL I/O counters across all shards (net counters are zero;
    /// the server layer fills them in).
    #[must_use]
    pub fn io_counters(&self) -> IoCounters {
        let mut total = IoCounters::default();
        for engine in self.engines() {
            let io = engine.io_counters();
            total.wal_appends += io.wal_appends;
            total.wal_syncs += io.wal_syncs;
            total.wal_groups += io.wal_groups;
            total.wal_ops += io.wal_ops;
        }
        total
    }

    /// Checkpoints every shard (snapshot + WAL truncation). Failures stop
    /// at the first failing shard — its WAL is poisoned by the engine, and
    /// shards already checkpointed are simply ahead, which recovery
    /// tolerates because each shard's snapshot/log pairing is independent.
    ///
    /// # Errors
    /// I/O and persistence failures.
    pub fn checkpoint(&self) -> Result<(), ServerError> {
        for engine in self.engines() {
            engine.checkpoint()?;
        }
        Ok(())
    }

    /// Checkpoints one shard only — the unit the crash simulation kills
    /// between.
    ///
    /// # Errors
    /// I/O and persistence failures on that shard.
    pub fn checkpoint_shard(&self, i: usize) -> Result<(), ServerError> {
        self.shard_engine(i).checkpoint()
    }

    /// Runs one background reorganization step on every shard; reports the
    /// number of shards whose step enacted an action. A no-op (zero) when
    /// the reorganizer is configured off.
    ///
    /// # Errors
    /// Storage/WAL failures from an enacted action's moves.
    pub fn reorg_step(&self) -> Result<u64, ServerError> {
        let mut enacted = 0;
        for engine in self.engines() {
            if engine.reorg_step()?.action.is_some() {
                enacted += 1;
            }
        }
        Ok(enacted)
    }

    /// Summed reorganizer counters across every shard.
    #[must_use]
    pub fn reorg_stats(&self) -> cind_reorg::ReorgStats {
        let mut total = cind_reorg::ReorgStats::default();
        for engine in self.engines() {
            let s = engine.reorg_stats();
            total.steps += s.steps;
            total.resplits += s.resplits;
            total.migrations += s.migrations;
            total.merges += s.merges;
            total.entities_moved += s.entities_moved;
        }
        total
    }

    /// Switches the pruning-index tier on every shard (in-memory index
    /// state only; nothing is WAL-framed).
    pub fn set_index_tier(&self, tier: cinderella_core::IndexTier) {
        for engine in self.engines() {
            engine.set_index_tier(tier);
        }
    }

    /// Runs one partition merge pass on every shard; reports are summed.
    ///
    /// # Errors
    /// Storage/WAL failures from the moves.
    pub fn merge_pass(&self, threshold: f64) -> Result<MergeReport, ServerError> {
        let mut total = MergeReport::default();
        for engine in self.engines() {
            let report = engine.merge_pass(threshold)?;
            total.merges += report.merges;
            total.entities_moved += report.entities_moved;
            total.kept += report.kept;
        }
        Ok(total)
    }

    /// Re-runs recovery for shard `i` alone (restore → replay → rebuild →
    /// checkpoint) and swaps the fresh engine into the slot. The other
    /// shards keep serving throughout — recovery I/O happens entirely
    /// before the slot lock is taken. This is the crash-domain story: a
    /// torn WAL or poisoned sink on one shard never forces a full restart.
    ///
    /// # Errors
    /// [`ServerError::Internal`] for in-memory engines or an out-of-range
    /// shard index; recovery failures from the shard itself.
    pub fn reopen_shard(&self, i: usize) -> Result<(), ServerError> {
        let Some(dir) = &self.store else {
            return Err(ServerError::Internal(
                "reopen_shard needs a durable store".to_string(),
            ));
        };
        let Some(slot) = self.slots.get(i) else {
            return Err(ServerError::Internal(format!(
                "shard {i} out of range (store has {} shards)",
                self.slots.len()
            )));
        };
        let engine = Self::open_shard(dir, &self.opts, i)?;
        let mut guard = slot.write().unwrap_or_else(PoisonError::into_inner);
        *guard = Arc::new(engine);
        Ok(())
    }

    /// Dispatches one request and folds any error into a typed
    /// [`Response`] — the sharded counterpart of [`Engine::handle`].
    #[must_use]
    pub fn handle(&self, req: &Request) -> Response {
        let result = match req {
            Request::Insert(e) => self
                .insert(e)
                .map(|(segment, split)| Response::Written { segment, split }),
            Request::Update(e) => self
                .update(e)
                .map(|(segment, split)| Response::Written { segment, split }),
            Request::Delete(id) => self.delete(*id).map(|()| Response::Deleted),
            Request::Query(attrs) => self
                .query(attrs)
                .map(|(rows, stats)| Response::Rows { rows, stats }),
            Request::InsertBatch(entities) => Ok(Response::Batch(
                self.insert_batch(entities)
                    .into_iter()
                    .map(|r| {
                        to_frame(r.map(|(segment, split)| Response::Written {
                            segment,
                            split,
                        }))
                    })
                    .collect(),
            )),
            Request::QueryBatch(queries) => Ok(Response::Batch(
                self.query_batch(queries)
                    .into_iter()
                    .map(|r| to_frame(r.map(|(rows, stats)| Response::Rows { rows, stats })))
                    .collect(),
            )),
            Request::IoCounters => Ok(Response::IoCounters(self.io_counters())),
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::Validate => self.validate().map(Response::Validated),
            Request::Ping(delay_ms) => {
                if *delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(*delay_ms));
                }
                Ok(Response::Pong)
            }
            Request::Shutdown => Ok(Response::ShutdownAck),
        };
        to_frame(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireEntity;
    use cind_model::Value;

    fn wire(id: u64, attrs: &[(&str, i64)]) -> WireEntity {
        WireEntity {
            id,
            attrs: attrs
                .iter()
                .map(|(n, v)| ((*n).to_string(), Value::Int(*v)))
                .collect(),
        }
    }

    fn opts(shards: usize) -> ShardedOptions {
        ShardedOptions::new(EngineOptions::default(), shards)
    }

    #[test]
    fn writes_route_and_queries_fan_out() {
        let eng = ShardedEngine::in_memory(opts(4));
        for id in 0..40u64 {
            let name = if id % 2 == 0 { "rpm" } else { "mp" };
            eng.insert(&wire(id, &[(name, id as i64)])).unwrap();
        }
        assert_eq!(eng.stats().entities, 40);
        let (rows, _) = eng.query(&["rpm".to_string()]).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(eng.validate().unwrap().is_empty());

        // Every shard actually holds something at this scale.
        for i in 0..eng.shard_count() {
            assert!(eng.shard_engine(i).stats().entities > 0, "shard {i} empty");
        }
    }

    #[test]
    fn insert_batch_matches_singles_and_reports_per_item_errors() {
        let singles = ShardedEngine::in_memory(opts(4));
        let batched = ShardedEngine::in_memory(opts(4));
        let wires: Vec<WireEntity> = (0..40u64)
            .map(|id| wire(id, &[(if id % 2 == 0 { "rpm" } else { "mp" }, id as i64)]))
            .collect();
        let expect: Vec<_> = wires.iter().map(|w| singles.insert(w).unwrap()).collect();
        let got = batched.insert_batch(&wires);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(g.as_ref().unwrap(), e, "item {i} diverged from per-op insert");
        }
        assert_eq!(batched.stats().entities, singles.stats().entities);

        // A duplicate inside a batch fails that item alone.
        let dup = vec![wire(100, &[("rpm", 1)]), wire(100, &[("rpm", 2)]), wire(101, &[("mp", 3)])];
        let results = batched.insert_batch(&dup);
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "duplicate id must fail its item");
        assert!(results[2].is_ok());
        assert!(batched.validate().unwrap().is_empty());

        // Query batch: two legs, one unknown — per-item results.
        let legs = batched.query_batch(&[vec!["rpm".to_string()], vec!["ghost".to_string()]]);
        assert!(legs[0].is_ok());
        assert!(matches!(legs[1], Err(ServerError::UnknownAttribute(_))));
    }

    #[test]
    fn partially_unknown_attribute_projects_null() {
        let eng = ShardedEngine::in_memory(opts(8));
        // Find two ids on different shards; give them disjoint attributes.
        let a = 0u64;
        let b = (1..100u64).find(|&i| eng.shard_of(i) != eng.shard_of(a)).unwrap();
        eng.insert(&wire(a, &[("only_a", 1)])).unwrap();
        eng.insert(&wire(b, &[("only_b", 2)])).unwrap();
        // "only_a" is unknown on b's shard but known globally: no error.
        let (rows, _) = eng.query(&["only_a".to_string()]).unwrap();
        assert_eq!(rows, vec![vec![Some(Value::Int(1))]]);
        // Unknown everywhere: typed error, like the unsharded engine.
        match eng.query(&["ghost".to_string()]) {
            Err(ServerError::UnknownAttribute(a)) => assert_eq!(a, "ghost"),
            other => panic!("expected UnknownAttribute, got {other:?}"),
        }
    }

    #[test]
    fn durable_store_reopens_with_manifest_count() {
        let dir = std::env::temp_dir().join("cind_sharded_reopen");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let eng = ShardedEngine::open(&dir, opts(4)).unwrap();
            for id in 0..32u64 {
                eng.insert(&wire(id, &[("x", id as i64)])).unwrap();
            }
            eng.checkpoint().unwrap();
        }
        {
            // Ask for 2; the manifest's 4 wins.
            let eng = ShardedEngine::open(&dir, opts(2)).unwrap();
            assert_eq!(eng.shard_count(), 4);
            assert_eq!(eng.stats().entities, 32);
            assert!(eng.validate().unwrap().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_layout_migrates_at_one_shard_and_refuses_more() {
        let dir = std::env::temp_dir().join("cind_sharded_legacy");
        let _ = std::fs::remove_dir_all(&dir);
        {
            // A pre-sharding store: files at the root, no manifest.
            let eng = Engine::open(&dir, EngineOptions::default()).unwrap();
            eng.insert(&wire(1, &[("rpm", 7200)])).unwrap();
            eng.checkpoint().unwrap();
        }
        match ShardedEngine::open(&dir, opts(4)) {
            Err(ServerError::Internal(msg)) => assert!(msg.contains("legacy")),
            Err(other) => panic!("expected legacy-layout refusal, got {other:?}"),
            Ok(_) => panic!("expected legacy-layout refusal, got an engine"),
        }
        {
            let eng = ShardedEngine::open(&dir, opts(1)).unwrap();
            assert_eq!(eng.stats().entities, 1);
            assert!(dir.join(shard_dir_name(0)).join(SNAPSHOT_FILE).exists());
            assert!(!dir.join(SNAPSHOT_FILE).exists());
        }
        {
            // And the migrated store reopens cleanly as a sharded one.
            let eng = ShardedEngine::open(&dir, opts(1)).unwrap();
            assert_eq!(eng.stats().entities, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_shard_recovers_one_domain_in_place() {
        let dir = std::env::temp_dir().join("cind_sharded_reopen_one");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let eng = ShardedEngine::open(&dir, opts(2)).unwrap();
            for id in 0..16u64 {
                eng.insert(&wire(id, &[("x", id as i64)])).unwrap();
            }
            let before = eng.stats().entities;
            eng.reopen_shard(1).unwrap();
            assert_eq!(eng.stats().entities, before, "recovery must lose nothing");
            assert!(eng.validate().unwrap().is_empty());
            assert!(matches!(
                eng.reopen_shard(9),
                Err(ServerError::Internal(_))
            ));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
