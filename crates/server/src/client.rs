//! A blocking request/reply client for the wire protocol.
//!
//! One [`Client`] owns one TCP connection. The typed wrappers
//! ([`Client::insert`], [`Client::query`], …) issue strictly one request
//! at a time, so responses can never interleave. For throughput-sensitive
//! callers there is an explicit *pipelined* mode — [`Client::send`]
//! buffers encoded request frames locally and [`Client::recv`] ships the
//! whole buffer in one `write` before reading the next in-order response
//! — and wire-level batch calls ([`Client::insert_batch`],
//! [`Client::query_batch`]) that move many operations per frame. Typed
//! server failures come back as [`ServerError::Remote`]; an admission-
//! control shed comes back as [`ServerError::Busy`] so callers can back
//! off and retry.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_response, encode_request, frame, read_frame, EngineStats, IoCounters, QueryStats,
    Request, Response, WireEntity,
};
use crate::ServerError;

/// One connection to a `cind serve` instance.
pub struct Client {
    stream: TcpStream,
    /// Encoded-but-unsent request frames (pipelined mode). Shipped in one
    /// `write` call by the next [`Client::recv`] / [`Client::flush_out`].
    outbox: Vec<u8>,
    /// Requests sent (or buffered) whose responses have not been read.
    inflight: usize,
}

/// Per-item outcomes of a wire-level batch, in input order — one rejected
/// item does not fail its batch-mates.
pub type BatchResults<T> = Vec<Result<T, ServerError>>;

/// A materialised result row (query attribute order, `None` for NULL).
pub type Row = Vec<Option<cind_model::Value>>;

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7070"`).
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, outbox: Vec::new(), inflight: 0 })
    }

    /// Sets (or clears) the read timeout for responses.
    ///
    /// # Errors
    /// Socket failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServerError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Queues one request without waiting for its response (pipelined
    /// mode). The frame is buffered locally; the next [`Client::recv`] or
    /// [`Client::flush_out`] ships every buffered frame with a single
    /// `write` call, so K queued requests cost one syscall, not K.
    ///
    /// Responses arrive strictly in send order — pair each `send` with a
    /// later [`Client::recv`]. Don't mix with the one-shot typed wrappers
    /// while responses are outstanding ([`Client::in_flight`] `> 0`): the
    /// wrapper would read the oldest outstanding response, not its own.
    ///
    /// # Errors
    /// Never fails today (encoding is infallible; I/O is deferred) — the
    /// `Result` reserves the right to bound the buffer later.
    pub fn send(&mut self, req: &Request) -> Result<(), ServerError> {
        let body = encode_request(req);
        frame(&body, &mut self.outbox);
        self.inflight += 1;
        Ok(())
    }

    /// Ships every buffered request frame now (one `write` call) without
    /// reading anything. [`Client::recv`] does this implicitly; explicit
    /// flushing only matters for keeping the server busy while the caller
    /// does other work.
    ///
    /// # Errors
    /// Transport failures.
    pub fn flush_out(&mut self) -> Result<(), ServerError> {
        if !self.outbox.is_empty() {
            self.stream.write_all(&self.outbox)?;
            self.outbox.clear();
        }
        Ok(())
    }

    /// Reads the next in-order response for a pipelined [`Client::send`],
    /// shipping any still-buffered requests first.
    ///
    /// # Errors
    /// Transport and decode failures.
    pub fn recv(&mut self) -> Result<Response, ServerError> {
        self.flush_out()?;
        let resp = read_frame(&mut self.stream)?;
        self.inflight = self.inflight.saturating_sub(1);
        Ok(decode_response(&resp)?)
    }

    /// Requests sent or queued whose responses have not been received.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight
    }

    /// Sends one request and reads one response frame.
    ///
    /// # Errors
    /// Socket and protocol failures; never returns [`ServerError::Remote`]
    /// or [`ServerError::Busy`] itself — those are decoded `Response`
    /// values the typed wrappers below translate.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ServerError> {
        self.send(req)?;
        self.recv()
    }

    fn expect<T>(
        resp: Response,
        ok: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ServerError> {
        match resp {
            Response::Busy => Err(ServerError::Busy),
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => ok(other).ok_or(ServerError::UnexpectedResponse),
        }
    }

    /// Inserts an entity; returns `(segment, split?)`.
    ///
    /// # Errors
    /// [`ServerError::Busy`] when shed, [`ServerError::Remote`] on engine
    /// rejection, transport failures.
    pub fn insert(&mut self, entity: WireEntity) -> Result<(u32, bool), ServerError> {
        let resp = self.roundtrip(&Request::Insert(entity))?;
        Self::expect(resp, |r| match r {
            Response::Written { segment, split } => Some((segment, split)),
            _ => None,
        })
    }

    /// Inserts many entities in **one** request frame; the server routes
    /// them per shard and commits each shard's share under a single
    /// writer-lock acquisition and durability wait. Returns per-item
    /// results in input order — one rejected entity does not fail its
    /// batch-mates.
    ///
    /// # Errors
    /// The outer `Err` is transport/whole-batch failure (including a
    /// whole-batch [`ServerError::Busy`] shed); per-item engine rejections
    /// are the inner results.
    pub fn insert_batch(
        &mut self,
        entities: Vec<WireEntity>,
    ) -> Result<BatchResults<(u32, bool)>, ServerError> {
        let resp = self.roundtrip(&Request::InsertBatch(entities))?;
        let items = Self::expect(resp, |r| match r {
            Response::Batch(items) => Some(items),
            _ => None,
        })?;
        Ok(items.into_iter().map(Self::written_item).collect())
    }

    /// Runs many queries in **one** request frame. Per-item results in
    /// input order.
    ///
    /// # Errors
    /// As [`Client::insert_batch`].
    pub fn query_batch(
        &mut self,
        queries: Vec<Vec<String>>,
    ) -> Result<BatchResults<(Vec<Row>, QueryStats)>, ServerError> {
        let resp = self.roundtrip(&Request::QueryBatch(queries))?;
        let items = Self::expect(resp, |r| match r {
            Response::Batch(items) => Some(items),
            _ => None,
        })?;
        Ok(items
            .into_iter()
            .map(|item| {
                Self::expect(item, |r| match r {
                    Response::Rows { rows, stats } => Some((rows, stats)),
                    _ => None,
                })
            })
            .collect())
    }

    fn written_item(item: Response) -> Result<(u32, bool), ServerError> {
        Self::expect(item, |r| match r {
            Response::Written { segment, split } => Some((segment, split)),
            _ => None,
        })
    }

    /// Replaces a stored entity; returns `(segment, split?)`.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn update(&mut self, entity: WireEntity) -> Result<(u32, bool), ServerError> {
        let resp = self.roundtrip(&Request::Update(entity))?;
        Self::expect(resp, |r| match r {
            Response::Written { segment, split } => Some((segment, split)),
            _ => None,
        })
    }

    /// Deletes an entity by id.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn delete(&mut self, id: u64) -> Result<(), ServerError> {
        let resp = self.roundtrip(&Request::Delete(id))?;
        Self::expect(resp, |r| matches!(r, Response::Deleted).then_some(()))
    }

    /// Runs a query by attribute names; returns the rows plus execution
    /// measurements.
    ///
    /// # Errors
    /// As [`Client::insert`]; unknown attributes arrive as
    /// [`ServerError::Remote`] with [`crate::ErrorCode::UnknownAttribute`].
    pub fn query(
        &mut self,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<(Vec<Row>, QueryStats), ServerError> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let resp = self.roundtrip(&Request::Query(attrs))?;
        Self::expect(resp, |r| match r {
            Response::Rows { rows, stats } => Some((rows, stats)),
            _ => None,
        })
    }

    /// Fetches engine-wide counters.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn stats(&mut self) -> Result<EngineStats, ServerError> {
        let resp = self.roundtrip(&Request::Stats)?;
        Self::expect(resp, |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }

    /// Fetches the server's I/O syscall counters (WAL appends/fsyncs and
    /// network reads/writes) — the observability hook benchmarks use to
    /// report syscalls-per-operation.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn io_counters(&mut self) -> Result<IoCounters, ServerError> {
        let resp = self.roundtrip(&Request::IoCounters)?;
        Self::expect(resp, |r| match r {
            Response::IoCounters(io) => Some(io),
            _ => None,
        })
    }

    /// Runs the server-side structural validation; returns the rendered
    /// violation lines (empty = clean).
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn validate(&mut self) -> Result<Vec<String>, ServerError> {
        let resp = self.roundtrip(&Request::Validate)?;
        Self::expect(resp, |r| match r {
            Response::Validated(v) => Some(v),
            _ => None,
        })
    }

    /// Health check; the server worker sleeps `delay_ms` before
    /// answering. Subject to admission control like any other request.
    ///
    /// # Errors
    /// [`ServerError::Busy`] when shed; transport failures.
    pub fn ping(&mut self, delay_ms: u64) -> Result<(), ServerError> {
        let resp = self.roundtrip(&Request::Ping(delay_ms))?;
        Self::expect(resp, |r| matches!(r, Response::Pong).then_some(()))
    }

    /// Requests graceful shutdown. The ack is sequenced after the
    /// responses to everything this connection sent before it.
    ///
    /// # Errors
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        let resp = self.roundtrip(&Request::Shutdown)?;
        Self::expect(resp, |r| matches!(r, Response::ShutdownAck).then_some(()))
    }

    /// Sends raw bytes as one frame body — protocol-robustness tests use
    /// this to deliver deliberately malformed requests.
    ///
    /// # Errors
    /// Transport and response-decode failures.
    pub fn send_raw(&mut self, body: &[u8]) -> Result<Response, ServerError> {
        let mut wire = Vec::with_capacity(body.len() + 4);
        frame(body, &mut wire);
        self.stream.write_all(&wire)?;
        let resp = read_frame(&mut self.stream)?;
        Ok(decode_response(&resp)?)
    }

    /// Writes arbitrary bytes *without* framing them — for tests that
    /// need to damage the framing layer itself (oversize lengths,
    /// truncated frames).
    ///
    /// # Errors
    /// Transport failures.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), ServerError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads one response frame without sending anything first.
    ///
    /// # Errors
    /// Transport and decode failures.
    pub fn read_response(&mut self) -> Result<Response, ServerError> {
        let resp = read_frame(&mut self.stream)?;
        Ok(decode_response(&resp)?)
    }
}
