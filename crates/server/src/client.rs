//! A blocking request/reply client for the wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues strictly one request
//! at a time (no pipelining), so responses can never interleave. Typed
//! server failures come back as [`ServerError::Remote`]; an admission-
//! control shed comes back as [`ServerError::Busy`] so callers can back
//! off and retry.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_response, encode_request, frame, read_frame, EngineStats, QueryStats, Request,
    Response, WireEntity,
};
use crate::ServerError;

/// One connection to a `cind serve` instance.
pub struct Client {
    stream: TcpStream,
}

/// A materialised result row (query attribute order, `None` for NULL).
pub type Row = Vec<Option<cind_model::Value>>;

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7070"`).
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sets (or clears) the read timeout for responses.
    ///
    /// # Errors
    /// Socket failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServerError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads one response frame.
    ///
    /// # Errors
    /// Socket and protocol failures; never returns [`ServerError::Remote`]
    /// or [`ServerError::Busy`] itself — those are decoded `Response`
    /// values the typed wrappers below translate.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ServerError> {
        let body = encode_request(req);
        let mut wire = Vec::with_capacity(body.len() + 4);
        frame(&body, &mut wire);
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        let resp = read_frame(&mut self.stream)?;
        Ok(decode_response(&resp)?)
    }

    fn expect<T>(
        resp: Response,
        ok: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ServerError> {
        match resp {
            Response::Busy => Err(ServerError::Busy),
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => ok(other).ok_or(ServerError::UnexpectedResponse),
        }
    }

    /// Inserts an entity; returns `(segment, split?)`.
    ///
    /// # Errors
    /// [`ServerError::Busy`] when shed, [`ServerError::Remote`] on engine
    /// rejection, transport failures.
    pub fn insert(&mut self, entity: WireEntity) -> Result<(u32, bool), ServerError> {
        let resp = self.roundtrip(&Request::Insert(entity))?;
        Self::expect(resp, |r| match r {
            Response::Written { segment, split } => Some((segment, split)),
            _ => None,
        })
    }

    /// Replaces a stored entity; returns `(segment, split?)`.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn update(&mut self, entity: WireEntity) -> Result<(u32, bool), ServerError> {
        let resp = self.roundtrip(&Request::Update(entity))?;
        Self::expect(resp, |r| match r {
            Response::Written { segment, split } => Some((segment, split)),
            _ => None,
        })
    }

    /// Deletes an entity by id.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn delete(&mut self, id: u64) -> Result<(), ServerError> {
        let resp = self.roundtrip(&Request::Delete(id))?;
        Self::expect(resp, |r| matches!(r, Response::Deleted).then_some(()))
    }

    /// Runs a query by attribute names; returns the rows plus execution
    /// measurements.
    ///
    /// # Errors
    /// As [`Client::insert`]; unknown attributes arrive as
    /// [`ServerError::Remote`] with [`crate::ErrorCode::UnknownAttribute`].
    pub fn query(
        &mut self,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<(Vec<Row>, QueryStats), ServerError> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let resp = self.roundtrip(&Request::Query(attrs))?;
        Self::expect(resp, |r| match r {
            Response::Rows { rows, stats } => Some((rows, stats)),
            _ => None,
        })
    }

    /// Fetches engine-wide counters.
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn stats(&mut self) -> Result<EngineStats, ServerError> {
        let resp = self.roundtrip(&Request::Stats)?;
        Self::expect(resp, |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }

    /// Runs the server-side structural validation; returns the rendered
    /// violation lines (empty = clean).
    ///
    /// # Errors
    /// As [`Client::insert`].
    pub fn validate(&mut self) -> Result<Vec<String>, ServerError> {
        let resp = self.roundtrip(&Request::Validate)?;
        Self::expect(resp, |r| match r {
            Response::Validated(v) => Some(v),
            _ => None,
        })
    }

    /// Health check; the server worker sleeps `delay_ms` before
    /// answering. Subject to admission control like any other request.
    ///
    /// # Errors
    /// [`ServerError::Busy`] when shed; transport failures.
    pub fn ping(&mut self, delay_ms: u64) -> Result<(), ServerError> {
        let resp = self.roundtrip(&Request::Ping(delay_ms))?;
        Self::expect(resp, |r| matches!(r, Response::Pong).then_some(()))
    }

    /// Requests graceful shutdown (acknowledged before the drain starts).
    ///
    /// # Errors
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        let resp = self.roundtrip(&Request::Shutdown)?;
        Self::expect(resp, |r| matches!(r, Response::ShutdownAck).then_some(()))
    }

    /// Sends raw bytes as one frame body — protocol-robustness tests use
    /// this to deliver deliberately malformed requests.
    ///
    /// # Errors
    /// Transport and response-decode failures.
    pub fn send_raw(&mut self, body: &[u8]) -> Result<Response, ServerError> {
        let mut wire = Vec::with_capacity(body.len() + 4);
        frame(body, &mut wire);
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        let resp = read_frame(&mut self.stream)?;
        Ok(decode_response(&resp)?)
    }

    /// Writes arbitrary bytes *without* framing them — for tests that
    /// need to damage the framing layer itself (oversize lengths,
    /// truncated frames).
    ///
    /// # Errors
    /// Transport failures.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), ServerError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response frame without sending anything first.
    ///
    /// # Errors
    /// Transport and decode failures.
    pub fn read_response(&mut self) -> Result<Response, ServerError> {
        let resp = read_frame(&mut self.stream)?;
        Ok(decode_response(&resp)?)
    }
}
