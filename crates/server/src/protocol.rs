//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! frame := len:varint  body:len bytes
//! ```
//!
//! reusing the storage layer's LEB128 codec ([`cind_storage::varint`]).
//! The body's first byte is a tag; the payload layout per tag is fixed and
//! self-contained (no negotiation, no versioning handshake — the protocol
//! is an internal engine surface, not a public API). `len` is capped at
//! [`MAX_FRAME`] so a hostile or corrupt length prefix cannot make the
//! server allocate unboundedly; anything larger is a typed
//! [`ProtoError::Oversize`], never an OOM.
//!
//! Entities cross the wire with attribute *names*, not ids: `AttrId`s are
//! an engine-side interning artifact, and the server's catalog is the only
//! authority on them. The server interns unseen names on write requests
//! and resolves names on queries (unknown name ⇒ typed error response).
//!
//! Decoding is total: every byte sequence either parses or produces a
//! [`ProtoError`] — malformed input can never panic the server (audit rule
//! CIND-A002 applies to this crate).

use std::io::Read;

use cind_model::Value;
use cind_storage::varint;

/// Hard cap on one frame's body length (16 MiB).
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;

/// An entity as it crosses the wire: the id plus `(attribute name, value)`
/// pairs. The server interns the names into its catalog on write requests.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEntity {
    /// The entity id (must be unique table-wide for inserts).
    pub id: u64,
    /// Instantiated attributes, by name.
    pub attrs: Vec<(String, Value)>,
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Insert a new entity (Algorithm 1 placement).
    Insert(WireEntity),
    /// Replace a stored entity's attributes (may move it).
    Update(WireEntity),
    /// Delete an entity by id.
    Delete(u64),
    /// Run a `SELECT attrs WHERE any IS NOT NULL` query; payload is the
    /// requested attribute names.
    Query(Vec<String>),
    /// Engine-wide statistics.
    Stats,
    /// Run the full structural invariant validation.
    Validate,
    /// Graceful shutdown: stop accepting, drain, flush, validate.
    Shutdown,
    /// Health check; the server's worker sleeps `delay_ms` before
    /// answering [`Response::Pong`]. The delay exists so tests can pin a
    /// worker deterministically and observe admission control.
    Ping(u64),
    /// Insert a batch of entities in one frame: the server routes them per
    /// shard in one pass and amortises the writer-lock handoff and group
    /// commit across the batch. Answered by [`Response::Batch`] with one
    /// per-item result in request order.
    InsertBatch(Vec<WireEntity>),
    /// Run several queries in one frame (each is an attribute-name list,
    /// as in [`Request::Query`]). Answered by [`Response::Batch`]; the
    /// legs share the server's per-epoch snapshot.
    QueryBatch(Vec<Vec<String>>),
    /// Server and WAL I/O counters (syscall/fsync observability).
    IoCounters,
}

/// Aggregate measurements of one remote query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Entities scanned (matching or not).
    pub entities_scanned: u64,
    /// Segments scanned (the `UNION ALL` width).
    pub segments_read: u64,
    /// Partitions pruned before touching data.
    pub segments_pruned: u64,
    /// Pages touched by this query (per-access attribution, exact under
    /// concurrency).
    pub logical_reads: u64,
    /// Buffer-pool misses among them.
    pub physical_reads: u64,
}

/// Engine-wide counters answered to [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Stored entities.
    pub entities: u64,
    /// Live partitions.
    pub partitions: u64,
    /// Cataloged attributes.
    pub attributes: u64,
    /// Cumulative logical page reads (all sessions).
    pub logical_reads: u64,
    /// Cumulative buffer-pool misses.
    pub physical_reads: u64,
    /// Cumulative page writes.
    pub page_writes: u64,
    /// Cumulative evictions.
    pub evictions: u64,
}

/// Cumulative server-side I/O counters answered to
/// [`Request::IoCounters`]: the observability surface that makes the
/// group-commit and pipelining amortisation measurable over the wire
/// (BENCH_PR7 records fsyncs-per-op and syscalls-per-op from deltas of
/// these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Socket `read` calls the server issued (each may carry many frames).
    pub net_reads: u64,
    /// Socket write calls the server issued (each may carry many frames).
    pub net_writes: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames sent.
    pub frames_out: u64,
    /// WAL file `write` calls (one per flushed commit group).
    pub wal_appends: u64,
    /// WAL fsyncs (one per flushed commit group).
    pub wal_syncs: u64,
    /// Commit groups flushed.
    pub wal_groups: u64,
    /// WAL transaction groups submitted (≥ `wal_groups`; the ratio is the
    /// coalescing factor).
    pub wal_ops: u64,
}

/// Why a request failed, as a machine-readable code on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or its body did not parse.
    Malformed,
    /// A query named an attribute absent from the catalog.
    UnknownAttribute,
    /// The storage/partitioning engine rejected the operation (duplicate
    /// id, missing entity, …).
    Engine,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownAttribute => 2,
            ErrorCode::Engine => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u8(b: u8) -> Self {
        match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownAttribute,
            3 => ErrorCode::Engine,
            4 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Internal,
        }
    }
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A write (insert/update) landed in `segment`; `split` reports
    /// whether placing it split a partition.
    Written {
        /// The segment now holding the entity.
        segment: u32,
        /// Whether the insert triggered a split.
        split: bool,
    },
    /// The delete succeeded.
    Deleted,
    /// Query result: the projected rows (query attribute order, `None`
    /// for NULL) plus execution measurements.
    Rows {
        /// Materialised rows.
        rows: Vec<Vec<Option<Value>>>,
        /// Execution measurements.
        stats: QueryStats,
    },
    /// Engine statistics.
    Stats(EngineStats),
    /// Structural validation report: one rendered line per violation
    /// (empty = all invariants hold).
    Validated(Vec<String>),
    /// Graceful shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// Ping answered.
    Pong,
    /// Server I/O counters.
    IoCounters(IoCounters),
    /// Per-item results for a batch request, in request order. Items are
    /// ordinary responses (`Written`, `Rows`, `Error`, …); nesting another
    /// `Batch` is a protocol violation.
    Batch(Vec<Response>),
    /// Admission control: the bounded request queue is full. The request
    /// was *not* executed; retry after backing off.
    Busy,
    /// The request failed; `code` is machine-readable, `message` human.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Decoding failures. `Closed` is the clean end-of-stream (no partial
/// frame); everything else is a protocol violation or truncation.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection between frames.
    Closed,
    /// The stream ended (or errored) inside a frame.
    ShortRead(std::io::ErrorKind),
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversize(u64),
    /// The body did not parse; the payload says what was expected.
    Malformed(&'static str),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::ShortRead(k) => write!(f, "short read mid-frame ({k:?})"),
            ProtoError::Oversize(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::Malformed(what) => write!(f, "malformed body: expected {what}"),
            ProtoError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---- framing ----------------------------------------------------------

/// Writes `body` as one frame into `buf` (length prefix + body).
pub fn frame(body: &[u8], buf: &mut Vec<u8>) {
    varint::encode(body.len() as u64, buf);
    buf.extend_from_slice(body);
}

/// Reads one frame's body from `r`.
///
/// The length prefix is consumed byte-by-byte (it is at most
/// [`varint::MAX_LEN`] bytes), checked against [`MAX_FRAME`], and the body
/// read exactly. EOF before the first byte is the clean [`ProtoError::Closed`];
/// EOF anywhere later is a [`ProtoError::ShortRead`].
///
/// # Errors
/// [`ProtoError`] as described; never panics on any input.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut prefix = [0u8; varint::MAX_LEN];
    let mut have = 0usize;
    let len = loop {
        if have == varint::MAX_LEN {
            return Err(ProtoError::Malformed("a terminated varint length"));
        }
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if have == 0 => return Err(ProtoError::Closed),
            Ok(0) => return Err(ProtoError::ShortRead(std::io::ErrorKind::UnexpectedEof)),
            Ok(_) => {
                prefix[have] = byte[0];
                have += 1;
                if byte[0] & 0x80 == 0 {
                    match varint::decode(&prefix[..have]) {
                        Some((len, used)) if used == have => break len,
                        _ => return Err(ProtoError::Malformed("a varint length")),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if have == 0 && would_block(&e) => return Err(ProtoError::Io(e)),
            Err(e) => return Err(ProtoError::Io(e)),
        }
    };
    if len > MAX_FRAME {
        return Err(ProtoError::Oversize(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            ProtoError::ShortRead(std::io::ErrorKind::UnexpectedEof)
        }
        _ => ProtoError::Io(e),
    })?;
    Ok(body)
}

/// Attempts to split one complete frame off the front of `buf` — the
/// zero-syscall path of the pipelined reader, which drains every complete
/// frame from each socket `read` before reading again.
///
/// Returns `Ok(Some((body, consumed)))` when a whole frame is present
/// (`consumed` covers the length prefix plus the body), `Ok(None)` when
/// more bytes are needed.
///
/// # Errors
/// [`ProtoError::Oversize`] / [`ProtoError::Malformed`] on a hostile
/// length prefix — exactly the cases [`read_frame`] rejects.
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtoError> {
    let mut used = 0usize;
    loop {
        if used == varint::MAX_LEN {
            return Err(ProtoError::Malformed("a terminated varint length"));
        }
        match buf.get(used) {
            None => return Ok(None),
            Some(b) => {
                used += 1;
                if b & 0x80 == 0 {
                    break;
                }
            }
        }
    }
    let len = match varint::decode(&buf[..used]) {
        Some((len, n)) if n == used => len,
        _ => return Err(ProtoError::Malformed("a varint length")),
    };
    if len > MAX_FRAME {
        return Err(ProtoError::Oversize(len));
    }
    let Some(end) = used.checked_add(len as usize) else {
        return Err(ProtoError::Oversize(len));
    };
    if buf.len() < end {
        return Ok(None);
    }
    Ok(Some((&buf[used..end], end)))
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

// ---- primitive codecs -------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        let (v, n) =
            varint::decode(&self.buf[self.pos..]).ok_or(ProtoError::Malformed(what))?;
        self.pos += n;
        Ok(v)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError::Malformed(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Malformed(what))?;
        if end > self.buf.len() {
            return Err(ProtoError::Malformed(what));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn string(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let len = self.u64(what)?;
        if len > MAX_FRAME {
            return Err(ProtoError::Malformed(what));
        }
        let raw = self.bytes(len as usize, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtoError::Malformed(what))
    }

    fn done(&self, what: &'static str) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(what))
        }
    }
}

fn put_string(s: &str, out: &mut Vec<u8>) {
    varint::encode(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Bool(b) => {
            out.push(0);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(1);
            varint::encode(zigzag(*i), out);
        }
        Value::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            put_string(s, out);
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value, ProtoError> {
    match c.u8("a value tag")? {
        0 => Ok(Value::Bool(c.u8("a bool byte")? != 0)),
        1 => Ok(Value::Int(unzigzag(c.u64("an int")?))),
        2 => {
            let raw = c.bytes(8, "a float")?;
            let mut bits = [0u8; 8];
            bits.copy_from_slice(raw);
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bits))))
        }
        3 => Ok(Value::Text(c.string("a text value")?)),
        _ => Err(ProtoError::Malformed("a known value tag")),
    }
}

fn put_entity(e: &WireEntity, out: &mut Vec<u8>) {
    varint::encode(e.id, out);
    varint::encode(e.attrs.len() as u64, out);
    for (name, value) in &e.attrs {
        put_string(name, out);
        put_value(value, out);
    }
}

fn get_entity(c: &mut Cursor<'_>) -> Result<WireEntity, ProtoError> {
    let id = c.u64("an entity id")?;
    let n = c.u64("an attribute count")?;
    if n > MAX_FRAME {
        return Err(ProtoError::Malformed("a sane attribute count"));
    }
    let mut attrs = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        let name = c.string("an attribute name")?;
        let value = get_value(c)?;
        attrs.push((name, value));
    }
    Ok(WireEntity { id, attrs })
}

// ---- request codec ----------------------------------------------------

const REQ_INSERT: u8 = 1;
const REQ_UPDATE: u8 = 2;
const REQ_DELETE: u8 = 3;
const REQ_QUERY: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_VALIDATE: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;
const REQ_PING: u8 = 8;
const REQ_IO_COUNTERS: u8 = 9;
const REQ_INSERT_BATCH: u8 = 10;
const REQ_QUERY_BATCH: u8 = 11;

/// Encodes one request body (unframed).
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Insert(e) => {
            out.push(REQ_INSERT);
            put_entity(e, &mut out);
        }
        Request::Update(e) => {
            out.push(REQ_UPDATE);
            put_entity(e, &mut out);
        }
        Request::Delete(id) => {
            out.push(REQ_DELETE);
            varint::encode(*id, &mut out);
        }
        Request::Query(attrs) => {
            out.push(REQ_QUERY);
            varint::encode(attrs.len() as u64, &mut out);
            for a in attrs {
                put_string(a, &mut out);
            }
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Validate => out.push(REQ_VALIDATE),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
        Request::Ping(ms) => {
            out.push(REQ_PING);
            varint::encode(*ms, &mut out);
        }
        Request::InsertBatch(entities) => {
            out.push(REQ_INSERT_BATCH);
            varint::encode(entities.len() as u64, &mut out);
            for e in entities {
                put_entity(e, &mut out);
            }
        }
        Request::QueryBatch(queries) => {
            out.push(REQ_QUERY_BATCH);
            varint::encode(queries.len() as u64, &mut out);
            for attrs in queries {
                varint::encode(attrs.len() as u64, &mut out);
                for a in attrs {
                    put_string(a, &mut out);
                }
            }
        }
        Request::IoCounters => out.push(REQ_IO_COUNTERS),
    }
    out
}

/// Decodes one request body.
///
/// # Errors
/// [`ProtoError::Malformed`] on any byte sequence that is not a complete,
/// exact encoding of one request.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(body);
    let req = match c.u8("a request tag")? {
        REQ_INSERT => Request::Insert(get_entity(&mut c)?),
        REQ_UPDATE => Request::Update(get_entity(&mut c)?),
        REQ_DELETE => Request::Delete(c.u64("an entity id")?),
        REQ_QUERY => {
            let n = c.u64("an attribute count")?;
            if n > MAX_FRAME {
                return Err(ProtoError::Malformed("a sane attribute count"));
            }
            let mut attrs = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                attrs.push(c.string("an attribute name")?);
            }
            Request::Query(attrs)
        }
        REQ_STATS => Request::Stats,
        REQ_VALIDATE => Request::Validate,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_PING => Request::Ping(c.u64("a delay")?),
        REQ_INSERT_BATCH => {
            let n = c.u64("a batch entity count")?;
            if n > MAX_FRAME {
                return Err(ProtoError::Malformed("a sane batch entity count"));
            }
            let mut entities = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                entities.push(get_entity(&mut c)?);
            }
            Request::InsertBatch(entities)
        }
        REQ_QUERY_BATCH => {
            let n = c.u64("a batch query count")?;
            if n > MAX_FRAME {
                return Err(ProtoError::Malformed("a sane batch query count"));
            }
            let mut queries = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let m = c.u64("an attribute count")?;
                if m > MAX_FRAME {
                    return Err(ProtoError::Malformed("a sane attribute count"));
                }
                let mut attrs = Vec::with_capacity(m.min(1024) as usize);
                for _ in 0..m {
                    attrs.push(c.string("an attribute name")?);
                }
                queries.push(attrs);
            }
            Request::QueryBatch(queries)
        }
        REQ_IO_COUNTERS => Request::IoCounters,
        _ => return Err(ProtoError::Malformed("a known request tag")),
    };
    c.done("no trailing bytes")?;
    Ok(req)
}

// ---- response codec ---------------------------------------------------

const RESP_WRITTEN: u8 = 1;
const RESP_DELETED: u8 = 2;
const RESP_ROWS: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_VALIDATED: u8 = 5;
const RESP_SHUTDOWN_ACK: u8 = 6;
const RESP_PONG: u8 = 7;
const RESP_IO_COUNTERS: u8 = 8;
const RESP_BATCH: u8 = 9;
const RESP_BUSY: u8 = 0xFE;
const RESP_ERROR: u8 = 0xFF;

/// Encodes one response body (unframed).
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Written { segment, split } => {
            out.push(RESP_WRITTEN);
            varint::encode(u64::from(*segment), &mut out);
            out.push(u8::from(*split));
        }
        Response::Deleted => out.push(RESP_DELETED),
        Response::Rows { rows, stats } => {
            out.push(RESP_ROWS);
            for v in [
                stats.entities_scanned,
                stats.segments_read,
                stats.segments_pruned,
                stats.logical_reads,
                stats.physical_reads,
            ] {
                varint::encode(v, &mut out);
            }
            varint::encode(rows.len() as u64, &mut out);
            let width = rows.first().map_or(0, Vec::len);
            varint::encode(width as u64, &mut out);
            for row in rows {
                for cell in row {
                    match cell {
                        None => out.push(0),
                        Some(v) => {
                            out.push(1);
                            put_value(v, &mut out);
                        }
                    }
                }
            }
        }
        Response::Stats(s) => {
            out.push(RESP_STATS);
            for v in [
                s.entities,
                s.partitions,
                s.attributes,
                s.logical_reads,
                s.physical_reads,
                s.page_writes,
                s.evictions,
            ] {
                varint::encode(v, &mut out);
            }
        }
        Response::Validated(violations) => {
            out.push(RESP_VALIDATED);
            varint::encode(violations.len() as u64, &mut out);
            for v in violations {
                put_string(v, &mut out);
            }
        }
        Response::ShutdownAck => out.push(RESP_SHUTDOWN_ACK),
        Response::Pong => out.push(RESP_PONG),
        Response::IoCounters(io) => {
            out.push(RESP_IO_COUNTERS);
            for v in [
                io.net_reads,
                io.net_writes,
                io.frames_in,
                io.frames_out,
                io.wal_appends,
                io.wal_syncs,
                io.wal_groups,
                io.wal_ops,
            ] {
                varint::encode(v, &mut out);
            }
        }
        Response::Batch(items) => {
            out.push(RESP_BATCH);
            varint::encode(items.len() as u64, &mut out);
            for item in items {
                // Length-prefixed nested bodies: a decoder can skip or
                // slice items without understanding every tag.
                let body = encode_response(item);
                varint::encode(body.len() as u64, &mut out);
                out.extend_from_slice(&body);
            }
        }
        Response::Busy => out.push(RESP_BUSY),
        Response::Error { code, message } => {
            out.push(RESP_ERROR);
            out.push(code.to_u8());
            put_string(message, &mut out);
        }
    }
    out
}

/// Decodes one response body.
///
/// # Errors
/// [`ProtoError::Malformed`] on any byte sequence that is not a complete,
/// exact encoding of one response.
pub fn decode_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(body);
    let resp = match c.u8("a response tag")? {
        RESP_WRITTEN => {
            let segment = c.u64("a segment id")?;
            let segment =
                u32::try_from(segment).map_err(|_| ProtoError::Malformed("a segment id"))?;
            Response::Written { segment, split: c.u8("a split flag")? != 0 }
        }
        RESP_DELETED => Response::Deleted,
        RESP_ROWS => {
            let stats = QueryStats {
                entities_scanned: c.u64("entities_scanned")?,
                segments_read: c.u64("segments_read")?,
                segments_pruned: c.u64("segments_pruned")?,
                logical_reads: c.u64("logical_reads")?,
                physical_reads: c.u64("physical_reads")?,
            };
            let nrows = c.u64("a row count")?;
            let width = c.u64("a row width")?;
            if nrows.saturating_mul(width.max(1)) > MAX_FRAME {
                return Err(ProtoError::Malformed("a sane row count"));
            }
            let mut rows = Vec::with_capacity(nrows.min(4096) as usize);
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(width as usize);
                for _ in 0..width {
                    match c.u8("a cell flag")? {
                        0 => row.push(None),
                        1 => row.push(Some(get_value(&mut c)?)),
                        _ => return Err(ProtoError::Malformed("a cell flag")),
                    }
                }
                rows.push(row);
            }
            Response::Rows { rows, stats }
        }
        RESP_STATS => Response::Stats(EngineStats {
            entities: c.u64("entities")?,
            partitions: c.u64("partitions")?,
            attributes: c.u64("attributes")?,
            logical_reads: c.u64("logical_reads")?,
            physical_reads: c.u64("physical_reads")?,
            page_writes: c.u64("page_writes")?,
            evictions: c.u64("evictions")?,
        }),
        RESP_VALIDATED => {
            let n = c.u64("a violation count")?;
            if n > MAX_FRAME {
                return Err(ProtoError::Malformed("a sane violation count"));
            }
            let mut out = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                out.push(c.string("a violation line")?);
            }
            Response::Validated(out)
        }
        RESP_SHUTDOWN_ACK => Response::ShutdownAck,
        RESP_PONG => Response::Pong,
        RESP_IO_COUNTERS => Response::IoCounters(IoCounters {
            net_reads: c.u64("net_reads")?,
            net_writes: c.u64("net_writes")?,
            frames_in: c.u64("frames_in")?,
            frames_out: c.u64("frames_out")?,
            wal_appends: c.u64("wal_appends")?,
            wal_syncs: c.u64("wal_syncs")?,
            wal_groups: c.u64("wal_groups")?,
            wal_ops: c.u64("wal_ops")?,
        }),
        RESP_BATCH => {
            let n = c.u64("a batch item count")?;
            if n > MAX_FRAME {
                return Err(ProtoError::Malformed("a sane batch item count"));
            }
            let mut items = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let len = c.u64("a batch item length")?;
                if len > MAX_FRAME {
                    return Err(ProtoError::Malformed("a sane batch item length"));
                }
                let body = c.bytes(len as usize, "a batch item body")?;
                if body.first() == Some(&RESP_BATCH) {
                    return Err(ProtoError::Malformed("no nested batch"));
                }
                items.push(decode_response(body)?);
            }
            Response::Batch(items)
        }
        RESP_BUSY => Response::Busy,
        RESP_ERROR => Response::Error {
            code: ErrorCode::from_u8(c.u8("an error code")?),
            message: c.string("an error message")?,
        },
        _ => return Err(ProtoError::Malformed("a known response tag")),
    };
    c.done("no trailing bytes")?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let body = encode_request(&req);
        assert_eq!(decode_request(&body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let body = encode_response(&resp);
        assert_eq!(decode_response(&body).unwrap(), resp);
    }

    fn entity() -> WireEntity {
        WireEntity {
            id: 42,
            attrs: vec![
                ("name".into(), Value::Text("WD4000".into())),
                ("rpm".into(), Value::Int(-7200)),
                ("price".into(), Value::Float(129.5)),
                ("ssd".into(), Value::Bool(false)),
            ],
        }
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Insert(entity()));
        roundtrip_request(Request::Update(entity()));
        roundtrip_request(Request::Delete(7));
        roundtrip_request(Request::Query(vec!["a".into(), "b".into()]));
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Validate);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Ping(250));
        roundtrip_request(Request::InsertBatch(vec![entity(), entity()]));
        roundtrip_request(Request::InsertBatch(vec![]));
        roundtrip_request(Request::QueryBatch(vec![
            vec!["a".into(), "b".into()],
            vec![],
            vec!["c".into()],
        ]));
        roundtrip_request(Request::IoCounters);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Written { segment: 9, split: true });
        roundtrip_response(Response::Deleted);
        roundtrip_response(Response::Rows {
            rows: vec![
                vec![Some(Value::Int(1)), None],
                vec![None, Some(Value::Text("x".into()))],
            ],
            stats: QueryStats {
                entities_scanned: 10,
                segments_read: 2,
                segments_pruned: 3,
                logical_reads: 5,
                physical_reads: 4,
            },
        });
        roundtrip_response(Response::Rows {
            rows: vec![],
            stats: QueryStats::default(),
        });
        roundtrip_response(Response::Stats(EngineStats {
            entities: 1,
            partitions: 2,
            attributes: 3,
            logical_reads: 4,
            physical_reads: 5,
            page_writes: 6,
            evictions: 7,
        }));
        roundtrip_response(Response::Validated(vec!["arena: bad slot".into()]));
        roundtrip_response(Response::Validated(vec![]));
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::Error {
            code: ErrorCode::UnknownAttribute,
            message: "no such attribute \"nope\"".into(),
        });
        roundtrip_response(Response::IoCounters(IoCounters {
            net_reads: 1,
            net_writes: 2,
            frames_in: 3,
            frames_out: 4,
            wal_appends: 5,
            wal_syncs: 6,
            wal_groups: 7,
            wal_ops: 8,
        }));
        roundtrip_response(Response::Batch(vec![
            Response::Written { segment: 3, split: false },
            Response::Error { code: ErrorCode::Engine, message: "dup".into() },
            Response::Rows { rows: vec![], stats: QueryStats::default() },
        ]));
        roundtrip_response(Response::Batch(vec![]));
    }

    #[test]
    fn nested_batch_is_rejected() {
        let evil = encode_response(&Response::Batch(vec![Response::Pong]));
        // Hand-craft a batch whose single item is itself a batch body.
        let inner = encode_response(&Response::Batch(vec![Response::Pong]));
        let mut body = vec![9u8]; // RESP_BATCH
        varint::encode(1, &mut body);
        varint::encode(inner.len() as u64, &mut body);
        body.extend_from_slice(&inner);
        assert!(matches!(decode_response(&body), Err(ProtoError::Malformed(_))));
        // The legal outer batch still decodes.
        assert!(decode_response(&evil).is_ok());
    }

    #[test]
    fn split_frame_drains_multiple_frames_from_one_buffer() {
        let a = encode_request(&Request::Ping(1));
        let b = encode_request(&Request::Stats);
        let mut wire = Vec::new();
        frame(&a, &mut wire);
        frame(&b, &mut wire);
        // Plus half of a third frame.
        let c = encode_request(&Request::Delete(7));
        let mut partial = Vec::new();
        frame(&c, &mut partial);
        wire.extend_from_slice(&partial[..partial.len() - 1]);

        let (body, used) = split_frame(&wire).unwrap().expect("first frame");
        assert_eq!(body, &a[..]);
        let rest = &wire[used..];
        let (body, used2) = split_frame(rest).unwrap().expect("second frame");
        assert_eq!(body, &b[..]);
        // The incomplete tail asks for more bytes, without error.
        assert!(split_frame(&rest[used2..]).unwrap().is_none());
        assert!(split_frame(&[]).unwrap().is_none());
    }

    #[test]
    fn split_frame_rejects_hostile_prefixes() {
        let mut oversize = Vec::new();
        varint::encode(MAX_FRAME + 1, &mut oversize);
        assert!(matches!(split_frame(&oversize), Err(ProtoError::Oversize(_))));
        let unterminated = [0x80u8; 12];
        assert!(matches!(split_frame(&unterminated), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn zigzag_covers_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456, -123_456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut wire = Vec::new();
        let a = encode_request(&Request::Ping(1));
        let b = encode_request(&Request::Stats);
        frame(&a, &mut wire);
        frame(&b, &mut wire);
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap(), b);
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
    }

    #[test]
    fn oversize_length_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        cind_storage::varint::encode(MAX_FRAME + 1, &mut wire);
        let mut r = &wire[..];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Oversize(_))));
    }

    #[test]
    fn truncated_frame_is_a_short_read() {
        let mut wire = Vec::new();
        frame(&encode_request(&Request::Stats), &mut wire);
        wire.pop(); // lose the last body byte
        let mut r = &wire[..];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::ShortRead(_))));
    }

    #[test]
    fn unterminated_varint_is_malformed() {
        let wire = [0x80u8; 12];
        let mut r = &wire[..];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn garbage_bodies_never_panic() {
        // Every prefix of a valid body, and random-ish garbage, must come
        // back as Malformed — not a panic or a bogus success.
        let good = encode_request(&Request::Insert(entity()));
        for cut in 0..good.len() {
            let _ = decode_request(&good[..cut]);
        }
        for seed in 0..64u8 {
            let garbage: Vec<u8> = (0..48u8)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i.wrapping_mul(17)))
                .collect();
            let _ = decode_request(&garbage);
            let _ = decode_response(&garbage);
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        // Trailing bytes after a complete request are rejected too.
        let mut padded = good;
        padded.push(0);
        assert!(decode_request(&padded).is_err());
    }
}
