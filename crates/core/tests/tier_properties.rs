//! Property suite for the tiered pruning index: random interleavings of
//! entity adds/removes, partition merges and re-splits, and random hot
//! tier promotions/demotions, on a catalog with deliberately tiny filter
//! groups (so grows and staleness rebuilds fire constantly).
//!
//! After EVERY operation:
//!
//! * `PartitionCatalog::validate` must be clean — which includes the
//!   structural no-false-negative check: no exact-present
//!   `(attr, partition)` pair may be absent from the approximate tier, in
//!   particular across the grow-rebuilds the tiny blocks force
//!   (membership preservation under `grow`);
//! * the tiered survivor set must be a superset of the exact disjointness
//!   oracle over `pruning_view` (and the exact twin's survivors);
//! * the tiered insert-scan argmax must equal an exact twin's whenever
//!   the best rating is non-negative (sign agreement otherwise).

use cind_model::{EntityId, Synopsis};
use cind_storage::SegmentId;
use cinderella_core::{IndexMode, IndexTier, PartitionCatalog, TierParams};
use proptest::prelude::*;

const UNIVERSE: usize = 24;

fn syn(bits: &[u32]) -> Synopsis {
    Synopsis::from_bits(UNIVERSE, bits.iter().copied())
}

/// Tiny tier knobs: 2-block groups saturate after a handful of distinct
/// pairs (forcing grow-rebuilds), a 3-slot hot tier overflows immediately,
/// and 16-op epochs decay heat all the time.
fn tiny_params() -> TierParams {
    TierParams {
        blocks_per_group: 2,
        max_blocks_per_group: 8,
        hot_capacity: 3,
        epoch_ops: 16,
        promote_heat: 2,
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Add an entity (attrs, size) to a picked partition.
    Add(Vec<u32>, u64, prop::sample::Index),
    /// Remove a picked member from a picked partition.
    Remove(prop::sample::Index, prop::sample::Index),
    /// Re-split a picked partition onto two fresh segments.
    Split(prop::sample::Index),
    /// Merge two picked partitions onto one fresh segment.
    Merge(prop::sample::Index, prop::sample::Index),
    /// Force a picked partition in or out of the hot tier.
    SetHot(prop::sample::Index, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (
            prop::collection::vec(0u32..UNIVERSE as u32, 0..5),
            0u64..4,
            any::<prop::sample::Index>(),
        )
            .prop_map(|(a, s, p)| Op::Add(a, s, p)),
        2 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(p, m)| Op::Remove(p, m)),
        1 => any::<prop::sample::Index>().prop_map(Op::Split),
        1 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::Merge(a, b)),
        2 => (any::<prop::sample::Index>(), any::<bool>())
            .prop_map(|(p, h)| Op::SetHot(p, h)),
    ]
}

/// Mirror member: (entity id, attrs, size).
type Member = (u64, Vec<u32>, u64);

struct Harness {
    tiered: PartitionCatalog,
    exact: PartitionCatalog,
    /// Mirror of live partitions: (seg, members).
    live: Vec<(u32, Vec<Member>)>,
    next_seg: u32,
    next_id: u64,
}

impl Harness {
    fn new(nparts: usize) -> Self {
        let mut h = Self {
            tiered: PartitionCatalog::with_tier_params(
                IndexMode::On,
                IndexTier::Tiered,
                tiny_params(),
            ),
            exact: PartitionCatalog::new(IndexMode::On),
            live: Vec::new(),
            next_seg: 0,
            next_id: 0,
        };
        for _ in 0..nparts {
            h.create();
        }
        h
    }

    fn create(&mut self) -> u32 {
        let seg = self.next_seg;
        self.next_seg += 1;
        self.tiered.create_partition(SegmentId(seg));
        self.exact.create_partition(SegmentId(seg));
        self.live.push((seg, Vec::new()));
        seg
    }

    fn add_to(&mut self, seg: u32, id: u64, attrs: &[u32], size: u64) {
        let s = syn(attrs);
        for cat in [&mut self.tiered, &mut self.exact] {
            cat.add_entity(SegmentId(seg), EntityId(id), &s, &s, size, true);
        }
    }

    fn remove_from(&mut self, seg: u32, id: u64, attrs: &[u32], size: u64) -> u64 {
        let s = syn(attrs);
        let left = self
            .tiered
            .remove_entity(SegmentId(seg), EntityId(id), &s, &s, size);
        let left2 = self
            .exact
            .remove_entity(SegmentId(seg), EntityId(id), &s, &s, size);
        assert_eq!(left, left2);
        left
    }

    fn drop_partition(&mut self, slot: usize) {
        let (seg, _) = self.live.remove(slot);
        self.tiered.remove_partition(SegmentId(seg));
        self.exact.remove_partition(SegmentId(seg));
        if self.live.is_empty() {
            self.create();
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Add(attrs, size, pick) => {
                let slot = pick.index(self.live.len());
                let id = self.next_id;
                self.next_id += 1;
                let seg = self.live[slot].0;
                self.add_to(seg, id, attrs, *size);
                self.live[slot].1.push((id, attrs.clone(), *size));
            }
            Op::Remove(ppick, mpick) => {
                let slot = ppick.index(self.live.len());
                if self.live[slot].1.is_empty() {
                    return;
                }
                let idx = mpick.index(self.live[slot].1.len());
                let (id, attrs, size) = self.live[slot].1.remove(idx);
                let seg = self.live[slot].0;
                if self.remove_from(seg, id, &attrs, size) == 0 {
                    self.drop_partition(slot);
                }
            }
            Op::Split(pick) => {
                let slot = pick.index(self.live.len());
                if self.live[slot].1.len() < 2 {
                    return;
                }
                let members = self.live[slot].1.clone();
                self.drop_partition(slot);
                let a = self.create();
                let b = self.create();
                let mut halves = (Vec::new(), Vec::new());
                for (i, (id, attrs, size)) in members.into_iter().enumerate() {
                    let target = if i % 2 == 0 { a } else { b };
                    self.add_to(target, id, &attrs, size);
                    if i % 2 == 0 {
                        halves.0.push((id, attrs, size));
                    } else {
                        halves.1.push((id, attrs, size));
                    }
                }
                let n = self.live.len();
                self.live[n - 2].1 = halves.0;
                self.live[n - 1].1 = halves.1;
            }
            Op::Merge(apick, bpick) => {
                if self.live.len() < 2 {
                    return;
                }
                let ai = apick.index(self.live.len());
                let mut bi = bpick.index(self.live.len());
                if ai == bi {
                    bi = (bi + 1) % self.live.len();
                }
                let (hi, lo) = (ai.max(bi), ai.min(bi));
                let mut members = self.live[lo].1.clone();
                members.extend(self.live[hi].1.clone());
                self.drop_partition(hi);
                self.drop_partition(lo);
                let target = self.create();
                for (id, attrs, size) in &members {
                    self.add_to(target, *id, attrs, *size);
                }
                let n = self.live.len();
                self.live[n - 1].1 = members;
            }
            Op::SetHot(pick, hot) => {
                let slot = pick.index(self.live.len());
                let seg = self.live[slot].0;
                self.tiered.tier_set_hot(SegmentId(seg), *hot);
            }
        }
    }

    /// The invariants checked after every single operation.
    fn check(&self, probes: &[Vec<u32>]) -> Result<(), TestCaseError> {
        // Structural: includes the no-false-negative implication (every
        // exact-present pair admitted by the tier) and hot ⇔ refcounts.
        let report = self.tiered.validate();
        prop_assert!(
            report.is_empty(),
            "{}",
            cinderella_core::validate::render(&report)
        );
        for attrs in probes {
            let q = syn(attrs);
            // Survivors: tiered ⊇ exact oracle.
            let oracle: Vec<SegmentId> = self
                .tiered
                .pruning_view()
                .filter(|(_, p, _)| !q.is_disjoint(p))
                .map(|(s, _, _)| s)
                .collect();
            let (tiered_s, _) = self.tiered.plan_survivors(&q).expect("index on");
            prop_assert!(
                oracle.iter().all(|s| tiered_s.binary_search(s).is_ok()),
                "query {:?}: tiered {:?} must contain oracle {:?}",
                attrs,
                tiered_s,
                oracle
            );
            let (exact_s, _) = self.exact.plan_survivors(&q).expect("index on");
            prop_assert_eq!(&exact_s, &oracle);

            // Insert scan: exact argmax agreement for non-negative best.
            let size = attrs.len() as u64;
            let (a, _) = self.exact.best_partition(&q, size, 0.3);
            let (b, _) = self.tiered.best_partition(&q, size, 0.3);
            match (a, b) {
                (Some((sa, ra)), Some((sb, rb))) => {
                    if ra >= 0.0 {
                        prop_assert_eq!((sa, ra), (sb, rb), "probe {:?}", attrs);
                    } else {
                        prop_assert!(rb < 0.0, "probe {:?}: {} vs {}", attrs, ra, rb);
                    }
                }
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tier_invariants_hold_after_every_op(
        nparts in 1usize..6,
        ops in prop::collection::vec(op_strategy(), 1..60),
        probes in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 0..4),
            1..4,
        ),
    ) {
        let mut h = Harness::new(nparts);
        h.check(&probes)?;
        for op in &ops {
            h.apply(op);
            h.check(&probes)?;
        }
        // The tiny hot tier must actually have seen traffic in most runs.
        prop_assert!(h.tiered.tier_active());
    }
}
