//! Differential suite for the catalog's candidate index: the indexed
//! rating scan against the full arena sweep, on randomized catalogs that
//! see entity additions, removals, zero-size partitions, and splits
//! (partition removal + redistribution onto fresh segments, which also
//! exercises arena slot recycling).
//!
//! Contract (see `PartitionCatalog::best_partition`): whenever the best
//! rating is non-negative — the only case Algorithm 1 acts on the returned
//! partition — the indexed argmax equals the sweep argmax exactly,
//! including the lowest-segment tie-break; when negative, both paths agree
//! the best is negative (the caller creates a new partition either way).

use cind_model::{EntityId, Synopsis};
use cind_storage::SegmentId;
use cinderella_core::{IndexMode, PartitionCatalog};
use proptest::prelude::*;

const UNIVERSE: usize = 24;

fn syn(bits: &[u32]) -> Synopsis {
    Synopsis::from_bits(UNIVERSE, bits.iter().copied())
}

/// One randomized catalog history, replayed identically on any mode.
#[derive(Clone, Debug)]
struct Script {
    nparts: usize,
    /// (attrs, size, partition pick) — size 0 makes zero-size members,
    /// empty attrs make empty synopses.
    entities: Vec<(Vec<u32>, u64, prop::sample::Index)>,
    /// (partition pick, member pick) removals, applied best-effort.
    removals: Vec<(prop::sample::Index, prop::sample::Index)>,
    /// Partitions to split in two (remove + redistribute onto new segs).
    splits: Vec<prop::sample::Index>,
}

/// Mirror member: (entity id, attrs, size).
type Member = (u64, Vec<u32>, u64);

/// Replays `script` on a fresh catalog of the given mode. Both modes see
/// byte-identical mutation sequences, so any divergence is the index's.
fn build(script: &Script, mode: IndexMode) -> PartitionCatalog {
    let mut cat = PartitionCatalog::new(mode);
    // Mirror of live partitions: (seg, members).
    let mut live: Vec<(u32, Vec<Member>)> = Vec::new();
    let mut next_seg = 0u32;
    let mut next_id = 0u64;
    for _ in 0..script.nparts {
        cat.create_partition(SegmentId(next_seg));
        live.push((next_seg, Vec::new()));
        next_seg += 1;
    }
    for (attrs, size, pick) in &script.entities {
        let slot = pick.index(live.len());
        let (seg, members) = &mut live[slot];
        let s = syn(attrs);
        cat.add_entity(SegmentId(*seg), EntityId(next_id), &s, &s, *size, true);
        members.push((next_id, attrs.clone(), *size));
        next_id += 1;
    }
    for (ppick, mpick) in &script.removals {
        let slot = ppick.index(live.len());
        let (seg, members) = &mut live[slot];
        if members.is_empty() {
            continue;
        }
        let (id, attrs, size) = members.remove(mpick.index(members.len()));
        let s = syn(&attrs);
        let left = cat.remove_entity(SegmentId(*seg), EntityId(id), &s, &s, size);
        if left == 0 {
            // The partitioner drops empty partitions; mirror that so the
            // sweep and the index both stop seeing them.
            cat.remove_partition(SegmentId(*seg));
            live.remove(slot);
            if live.is_empty() {
                cat.create_partition(SegmentId(next_seg));
                live.push((next_seg, Vec::new()));
                next_seg += 1;
            }
        }
    }
    for pick in &script.splits {
        let slot = pick.index(live.len());
        let (seg, members) = live[slot].clone();
        if members.len() < 2 {
            continue;
        }
        cat.remove_partition(SegmentId(seg));
        live.remove(slot);
        let (a, b) = (next_seg, next_seg + 1);
        next_seg += 2;
        cat.create_partition(SegmentId(a));
        cat.create_partition(SegmentId(b));
        let mut halves = (Vec::new(), Vec::new());
        for (i, (id, attrs, size)) in members.into_iter().enumerate() {
            let target = if i % 2 == 0 { a } else { b };
            let s = syn(&attrs);
            cat.add_entity(SegmentId(target), EntityId(id), &s, &s, size, true);
            if i % 2 == 0 {
                halves.0.push((id, attrs, size));
            } else {
                halves.1.push((id, attrs, size));
            }
        }
        live.push((a, halves.0));
        live.push((b, halves.1));
    }
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_argmax_matches_full_scan(
        nparts in 1usize..8,
        entities in prop::collection::vec(
            (
                prop::collection::vec(0u32..UNIVERSE as u32, 0..5),
                0u64..4,
                any::<prop::sample::Index>(),
            ),
            1..60,
        ),
        removals in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            0..12,
        ),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        probes in prop::collection::vec(
            (prop::collection::vec(0u32..UNIVERSE as u32, 0..5), 0u64..4),
            1..6,
        ),
    ) {
        let script = Script { nparts, entities, removals, splits };
        let plain = build(&script, IndexMode::Off);
        let indexed = build(&script, IndexMode::On);
        prop_assert_eq!(plain.len(), indexed.len());

        for (attrs, size) in &probes {
            let e = syn(attrs);
            // 1.0 exercises the w = 1 fallback; the rest the indexed path.
            for w in [0.0, 0.3, 0.7, 1.0] {
                let (a, _) = plain.best_partition(&e, *size, w);
                let (b, _) = indexed.best_partition(&e, *size, w);
                let (sa, ra) = a.expect("catalog never empty");
                let (sb, rb) = b.expect("catalog never empty");
                if ra >= 0.0 {
                    prop_assert_eq!(
                        (sa, ra), (sb, rb),
                        "probe {:?} size {} w {}", attrs, size, w
                    );
                } else {
                    prop_assert!(
                        rb < 0.0,
                        "probe {:?} w {}: sweep {} vs indexed {}", attrs, w, ra, rb
                    );
                }
            }
        }
    }

    #[test]
    fn survivor_bitmap_matches_disjoint_pruning(
        nparts in 1usize..8,
        entities in prop::collection::vec(
            (
                prop::collection::vec(0u32..UNIVERSE as u32, 0..5),
                0u64..4,
                any::<prop::sample::Index>(),
            ),
            1..60,
        ),
        removals in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            0..12,
        ),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        queries in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 0..4),
            1..6,
        ),
    ) {
        let script = Script { nparts, entities, removals, splits };
        for mode in [IndexMode::On, IndexMode::Auto] {
            let cat = build(&script, mode);
            for qattrs in &queries {
                let q = syn(qattrs);
                let oracle: Vec<SegmentId> = cat
                    .pruning_view()
                    .filter(|(_, p, _)| !q.is_disjoint(p))
                    .map(|(s, _, _)| s)
                    .collect();
                let (survivors, pruned) =
                    cat.plan_survivors(&q).expect("index not off");
                prop_assert_eq!(&survivors, &oracle, "query {:?}", qattrs);
                prop_assert_eq!(pruned, cat.len() - survivors.len());
            }
        }
    }
}
