//! Golden test for Definition 1 — EFFICIENCY(P) on a tiny fixture whose
//! value is derived by hand and asserted *exactly*. Guards
//! `crates/core/src/efficiency.rs` against accidental semantic drift
//! (sgn vs count, entity vs partition sizing, denominator conventions).

use cind_model::{AttrId, Entity, EntityId, Synopsis, Value};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, efficiency_of, Capacity, Cinderella, Config};

const UNIVERSE: usize = 6;

fn syn(bits: &[u32]) -> Synopsis {
    Synopsis::from_bits(UNIVERSE, bits.iter().copied())
}

/// The fixture: 4 entities (SIZE 2 each), 2 partitions, 3 queries.
///
/// ```text
/// e1 = {a0, a1}   e2 = {a1, a2}   e3 = {a3, a4}   e4 = {a4, a5}
/// P1 = {e1, e2}: synopsis {a0,a1,a2}, SIZE 4
/// P2 = {e3, e4}: synopsis {a3,a4,a5}, SIZE 4
/// q1 = {a0}       q2 = {a4}       q3 = {a1, a3}
/// ```
///
/// Numerator   Σ_{q,e} sgn(|e ∧ q|)·SIZE(e):
///   q1 matches e1           → 2
///   q2 matches e3, e4       → 4
///   q3 matches e1, e2, e3   → 6          total 12
///
/// Denominator Σ_{q,p} sgn(|p ∧ q|)·SIZE(p):
///   q1 reads P1             → 4
///   q2 reads P2             → 4
///   q3 reads P1 and P2      → 8          total 16
///
/// EFFICIENCY(P) = 12/16 = 3/4, exactly representable in an f64.
const EXPECTED: f64 = 0.75;

type Sized2 = Vec<(Synopsis, u64)>;

fn fixture() -> (Sized2, Sized2, Vec<Synopsis>) {
    let entities = vec![
        (syn(&[0, 1]), 2u64),
        (syn(&[1, 2]), 2),
        (syn(&[3, 4]), 2),
        (syn(&[4, 5]), 2),
    ];
    let partitions = vec![(syn(&[0, 1, 2]), 4u64), (syn(&[3, 4, 5]), 4)];
    let queries = vec![syn(&[0]), syn(&[4]), syn(&[1, 3])];
    (entities, partitions, queries)
}

#[test]
fn definition_1_exact_on_the_fixture() {
    let (entities, partitions, queries) = fixture();
    let eff = efficiency_of(entities, &partitions, &queries);
    assert_eq!(eff, EXPECTED, "EFFICIENCY(P) must be exactly 3/4");
}

#[test]
fn definition_1_is_monotone_in_partition_quality() {
    // Collapsing the two partitions into one universal partition reads
    // every cell for every matching query: denominator becomes 3·8 = 24,
    // efficiency drops to 12/24 = 1/2 — still exact.
    let (entities, _, queries) = fixture();
    let universal = vec![(syn(&[0, 1, 2, 3, 4, 5]), 8u64)];
    let eff = efficiency_of(entities, &universal, &queries);
    assert_eq!(eff, 0.5, "universal-table efficiency must be exactly 1/2");
}

#[test]
fn end_to_end_table_reproduces_a_hand_derived_value() {
    // A second golden, this time through the partitioner and the physical
    // table. Four entities in two shape groups:
    //
    //   e1 = {a0,a1} (SIZE 2)   e2 = {a0,a1,a2} (SIZE 3)
    //   e3 = {a3,a4} (SIZE 2)   e4 = {a3,a4}    (SIZE 2)
    //
    // Cinderella folds e2 into e1's partition (positive rating: 2 of 3
    // attributes shared) and keeps the disjoint group apart, yielding
    // exactly  P1 = {a0,a1,a2}, SIZE 5  and  P2 = {a3,a4}, SIZE 4.
    //
    // Workload: q1 = {a2}, q2 = {a4}, q3 = {a0,a3}.
    //   Numerator:   q1→e2 (3) + q2→e3,e4 (4) + q3→all (9)   = 16
    //   Denominator: q1→P1 (5) + q2→P2 (4) + q3→P1,P2 (9)    = 18
    //
    // EFFICIENCY(P) = 16/18: asserted as the bitwise-identical IEEE
    // quotient 16.0/18.0 — no epsilon.
    let mut table = UniversalTable::new(64);
    for i in 0..UNIVERSE as u32 {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let mut cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(10),
        ..Config::default()
    });
    let shapes: [&[u32]; 4] = [&[0, 1], &[0, 1, 2], &[3, 4], &[3, 4]];
    for (i, attrs) in shapes.iter().enumerate() {
        let e = Entity::new(
            EntityId(i as u64),
            attrs.iter().map(|&a| (AttrId(a), Value::Int(1))),
        )
        .unwrap();
        cindy.insert(&mut table, e).unwrap();
    }
    assert_eq!(cindy.catalog().len(), 2, "two shape groups, two partitions");
    let mut sizes: Vec<u64> = cindy.catalog().iter().map(|m| m.size).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![4, 5], "partition SIZEs fix the denominator");

    let queries = vec![syn(&[2]), syn(&[4]), syn(&[0, 3])];
    let eff = efficiency(&table, &cindy, &queries);
    assert_eq!(eff, 16.0 / 18.0, "measured EFFICIENCY(P) must be exactly 16/18");
}
