//! EFFICIENCY(P) edge-case goldens — Definition 1's denominator-zero
//! corners, pinned so a refactor of the efficiency accounting cannot
//! silently change them:
//!
//! * empty workload (no queries),
//! * all partitions of SIZE zero,
//! * a workload whose queries match no partition.
//!
//! In every case the paper's ratio has denominator 0 ("the workload reads
//! nothing"); this repository defines that as vacuously efficient, 1.0 —
//! the value the simulator's independent recomputation also assumes.

use cind_model::{AttrId, Entity, EntityId, Synopsis, Value};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, efficiency_of, Capacity, Cinderella, Config};

fn syn(bits: &[u32]) -> Synopsis {
    Synopsis::from_bits(16, bits.iter().copied())
}

// ---- explicit-collection goldens --------------------------------------

#[test]
fn empty_workload_is_vacuously_efficient() {
    let entities = vec![(syn(&[0, 1]), 2u64), (syn(&[3]), 7)];
    let partitions = vec![(syn(&[0, 1]), 2u64), (syn(&[3]), 7)];
    assert_eq!(efficiency_of(entities, &partitions, &[]), 1.0);
}

#[test]
fn empty_everything_is_vacuously_efficient() {
    assert_eq!(efficiency_of(Vec::new(), &[], &[]), 1.0);
    assert_eq!(efficiency_of(Vec::new(), &[], &[syn(&[0])]), 1.0);
    assert_eq!(efficiency_of(Vec::new(), &[(syn(&[0]), 3)], &[]), 1.0);
}

#[test]
fn all_zero_size_partitions_are_vacuously_efficient() {
    // Partitions overlap the workload but contribute SIZE 0 each: the
    // denominator is 0 regardless of the numerator, and the defined
    // answer is 1.0 — not a NaN, not an infinity.
    let entities = vec![(syn(&[0]), 4u64), (syn(&[1]), 2)];
    let partitions = vec![(syn(&[0]), 0u64), (syn(&[1]), 0)];
    let queries = vec![syn(&[0]), syn(&[1])];
    assert_eq!(efficiency_of(entities, &partitions, &queries), 1.0);
}

#[test]
fn workload_matching_no_partition_is_vacuously_efficient() {
    let entities = vec![(syn(&[0, 1]), 2u64), (syn(&[2]), 5)];
    let partitions = vec![(syn(&[0, 1]), 2u64), (syn(&[2]), 5)];
    // Bits 9 and 12 appear in no entity and no partition.
    let queries = vec![syn(&[9]), syn(&[12])];
    assert_eq!(efficiency_of(entities, &partitions, &queries), 1.0);
}

#[test]
fn no_match_queries_add_nothing_to_either_sum() {
    // Golden for the mixed case: one real query against a universal
    // partition scores 2/5; adding a no-match query must leave the ratio
    // exactly unchanged (it contributes 0 to numerator and denominator).
    let entities = vec![(syn(&[0]), 2u64), (syn(&[1]), 3)];
    let partitions = vec![(syn(&[0, 1]), 5u64)];
    let only_real = efficiency_of(entities.clone(), &partitions, &[syn(&[0])]);
    assert!((only_real - 2.0 / 5.0).abs() < 1e-12, "got {only_real}");
    let with_ghost = efficiency_of(entities, &partitions, &[syn(&[0]), syn(&[9])]);
    assert_eq!(with_ghost, only_real);
}

// ---- end-to-end goldens through a real table --------------------------

fn small_store() -> (UniversalTable, Cinderella) {
    let mut t = UniversalTable::new(64);
    let mut c = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(4),
        ..Config::default()
    });
    for i in 0..12u64 {
        let names: &[&str] = if i % 2 == 0 { &["a", "b"] } else { &["x", "y", "z"] };
        let attrs: Vec<(AttrId, Value)> = names
            .iter()
            .map(|n| (t.catalog_mut().intern(n), Value::Int(i as i64)))
            .collect();
        let e = Entity::new(EntityId(i), attrs).expect("valid entity");
        c.insert(&mut t, e).expect("insert");
    }
    (t, c)
}

#[test]
fn empty_table_scores_one_for_any_workload() {
    let t = UniversalTable::new(64);
    let c = Cinderella::new(Config::default());
    assert_eq!(efficiency(&t, &c, &[]), 1.0);
    assert_eq!(efficiency(&t, &c, &[syn(&[0])]), 1.0);
}

#[test]
fn populated_table_with_empty_workload_scores_one() {
    let (t, c) = small_store();
    assert_eq!(efficiency(&t, &c, &[]), 1.0);
}

#[test]
fn populated_table_with_unmatched_workload_scores_one() {
    let (mut t, c) = small_store();
    // An attribute the catalog knows but no entity instantiates: queries
    // over it prune every partition, so the workload reads nothing.
    let ghost = t.catalog_mut().intern("ghost");
    let q = Synopsis::from_attrs(t.universe(), [ghost]);
    assert_eq!(efficiency(&t, &c, std::slice::from_ref(&q)), 1.0);
}
