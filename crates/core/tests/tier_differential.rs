//! Differential suite for the tiered pruning index: a `tiered` Cinderella
//! against the `exact` oracle on TPC-H-shaped and DBpedia-shaped
//! workloads.
//!
//! Contract: the approximate tier is superset-sound — candidate and
//! survivor sets may only *grow* relative to exact (asserted explicitly
//! per query), and no exact-surviving partition may be missed, so query
//! answers and surviving-row sets are identical. Insertion evolution is
//! byte-identical too (non-candidates rate strictly negative, so extra
//! candidates cannot change a non-negative argmax; a negative best creates
//! a new partition either way), which the suite checks by comparing the
//! full partition-by-partition catalog state.

use std::collections::BTreeMap;

use cind_datagen::{DbpediaConfig, DbpediaGenerator, TpchConfig, TpchGenerator};
use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, UniversalTable};
use cinderella_core::{Capacity, Cinderella, Config, IndexMode, IndexTier};

fn config(tier: IndexTier) -> Config {
    Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(32),
        index: IndexMode::On,
        tier,
        ..Config::default()
    }
}

/// Generates a dataset into a fresh table's catalog and loads it under the
/// given tier. The generators are seed-deterministic, so two calls with
/// the same `generate` produce byte-identical entities and universes.
fn load(
    generate: &dyn Fn(&mut UniversalTable) -> Vec<Entity>,
    tier: IndexTier,
) -> (UniversalTable, Cinderella, Vec<Entity>) {
    let mut table = UniversalTable::new(256);
    let entities = generate(&mut table);
    let mut cindy = Cinderella::new(config(tier));
    for e in entities.clone() {
        cindy.insert(&mut table, e).expect("insert generated entity");
    }
    (table, cindy, entities)
}

/// Deterministic query mix: a few multi-attribute synopses sampled from
/// entities plus single-attribute probes across the universe.
fn queries(entities: &[Entity], universe: usize) -> Vec<Synopsis> {
    let mut qs = Vec::new();
    for e in entities.iter().step_by(97.max(entities.len() / 16)).take(12) {
        let bits: Vec<u32> = e.attrs().iter().map(|(a, _)| a.index()).take(3).collect();
        if !bits.is_empty() {
            qs.push(Synopsis::from_bits(universe, bits));
        }
    }
    let step = universe / 8 + 1;
    for a in (0..universe as u32).step_by(step) {
        qs.push(Synopsis::from_bits(universe, [a]));
    }
    qs
}

/// `entity id → segment` as actually stored.
fn placements(table: &UniversalTable) -> BTreeMap<EntityId, SegmentId> {
    let mut map = BTreeMap::new();
    for seg in table.segment_ids().collect::<Vec<_>>() {
        for e in table.scan_collect(seg).expect("segment readable") {
            map.insert(e.id(), seg);
        }
    }
    map
}

/// The core differential: identical catalog evolution, superset-only
/// survivor drift, identical answers and surviving-row sets.
fn assert_differential(generate: &dyn Fn(&mut UniversalTable) -> Vec<Entity>) {
    let (table_e, exact, entities) = load(generate, IndexTier::Exact);
    let (table_t, tiered, entities_t) = load(generate, IndexTier::Tiered);
    assert_eq!(entities, entities_t, "generator must be deterministic");
    let universe = table_e.universe();

    assert!(tiered.catalog().tier_active(), "tiered knob must activate the tier");
    assert!(!exact.catalog().tier_active());

    // Insertion evolution is byte-identical: same partitions, same
    // members, same synopses and sizes.
    assert_eq!(exact.catalog().len(), tiered.catalog().len());
    for (a, b) in exact.catalog().iter().zip(tiered.catalog().iter()) {
        assert_eq!(a.segment, b.segment);
        assert_eq!(a.entities, b.entities, "{}", a.segment);
        assert_eq!(a.size, b.size, "{}", a.segment);
        assert_eq!(a.attr_synopsis, b.attr_synopsis, "{}", a.segment);
    }
    assert_eq!(placements(&table_e), placements(&table_t));

    // Both instances validate clean — including the tier's structural
    // no-false-negative check.
    let report = tiered.validate(&table_t).expect("storage readable");
    assert!(report.is_empty(), "{}", cinderella_core::validate::render(&report));

    let members = placements(&table_e);
    let synopses: BTreeMap<EntityId, Synopsis> = entities
        .iter()
        .map(|e| (e.id(), e.synopsis(universe)))
        .collect();

    for q in queries(&entities, universe) {
        let (exact_s, exact_pruned) =
            exact.catalog().plan_survivors(&q).expect("index on");
        let (tiered_s, tiered_pruned) =
            tiered.catalog().plan_survivors(&q).expect("index on");

        // Candidate sets may only be supersets — asserted explicitly.
        assert!(
            exact_s.iter().all(|s| tiered_s.binary_search(s).is_ok()),
            "tiered survivors {tiered_s:?} must contain exact {exact_s:?}"
        );
        assert!(tiered_pruned <= exact_pruned);

        // No lost rows: every entity matching the query lives in a
        // surviving segment under BOTH tiers, so the executor (which
        // re-checks `matches` per row) returns identical answer sets.
        for (id, syn) in &synopses {
            if q.is_disjoint(syn) {
                continue;
            }
            let seg = members[id];
            assert!(
                exact_s.binary_search(&seg).is_ok(),
                "exact lost {id} (segment {seg}) for query {q:?}"
            );
            assert!(
                tiered_s.binary_search(&seg).is_ok(),
                "tiered lost {id} (segment {seg}) for query {q:?}"
            );
        }
    }
}

#[test]
fn tpch_tiered_matches_exact() {
    assert_differential(&|table: &mut UniversalTable| {
        let (entities, _) = TpchGenerator::new(TpchConfig { scale: 0.001, seed: 3 })
            .generate(table.catalog_mut());
        assert!(entities.len() > 500, "scale too small to be meaningful");
        entities
    });
}

#[test]
fn dbpedia_tiered_matches_exact() {
    assert_differential(&|table: &mut UniversalTable| {
        DbpediaGenerator::new(DbpediaConfig {
            entities: 1500,
            seed: 11,
            ..DbpediaConfig::default()
        })
        .generate(table.catalog_mut())
    });
}

#[test]
fn runtime_tier_switch_roundtrips() {
    let generate = |table: &mut UniversalTable| {
        DbpediaGenerator::new(DbpediaConfig {
            entities: 800,
            seed: 5,
            ..DbpediaConfig::default()
        })
        .generate(table.catalog_mut())
    };
    let (table, mut cindy, entities) = load(&generate, IndexTier::Exact);
    let universe = table.universe();
    let qs = queries(&entities, universe);
    let before: Vec<_> = qs
        .iter()
        .map(|q| cindy.catalog().plan_survivors(q).expect("index on"))
        .collect();

    // Exact → tiered: the tier is built from the catalog; survivors may
    // only grow, and validate stays clean.
    cindy.set_index_tier(IndexTier::Tiered);
    assert!(cindy.catalog().tier_active());
    let report = cindy.validate(&table).expect("storage readable");
    assert!(report.is_empty(), "{}", cinderella_core::validate::render(&report));
    for (q, (exact_s, _)) in qs.iter().zip(&before) {
        let (tiered_s, _) = cindy.catalog().plan_survivors(q).expect("index on");
        assert!(exact_s.iter().all(|s| tiered_s.binary_search(s).is_ok()));
    }

    // Tiered → exact: the bitmaps are rebuilt from the refcount state and
    // planning returns to the original results exactly.
    cindy.set_index_tier(IndexTier::Exact);
    assert!(!cindy.catalog().tier_active());
    let report = cindy.validate(&table).expect("storage readable");
    assert!(report.is_empty(), "{}", cinderella_core::validate::render(&report));
    for (q, want) in qs.iter().zip(&before) {
        let got = cindy.catalog().plan_survivors(q).expect("index on");
        assert_eq!(&got, want);
    }
}
