//! The deep structural validator under adversarial operation sequences.
//!
//! `tests/property_invariants.rs` (workspace tier 1) re-derives a few
//! invariants by hand; this suite instead drives the *full*
//! [`Cinderella::validate`] — arena free-list and stride layout, presence
//! bitmaps vs refcounts, partition synopses vs stored entities, split
//! starters, segment accounting — after every single operation of random
//! insert/update/delete/merge interleavings. A tiny capacity keeps splits
//! frequent, and explicit `merge_pass` ops exercise the merge boundary the
//! insert path never takes.

use cind_model::{AttrId, Entity, EntityId, Value};
use cind_storage::UniversalTable;
use cinderella_core::{validate, Capacity, Cinderella, Config};
use proptest::prelude::*;

const UNIVERSE: u32 = 10;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u32>),
    Update(usize, Vec<u32>),
    Delete(usize),
    Merge,
}

fn attrs() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..UNIVERSE, 1..5).prop_map(|s| s.into_iter().collect())
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => attrs().prop_map(Op::Insert),
            1 => (any::<usize>(), attrs()).prop_map(|(i, a)| Op::Update(i, a)),
            1 => any::<usize>().prop_map(Op::Delete),
            1 => Just(Op::Merge),
        ],
        1..60,
    )
}

fn entity(id: u64, attrs: &[u32]) -> Entity {
    Entity::new(
        EntityId(id),
        attrs.iter().map(|&a| (AttrId(a), Value::Int(i64::from(a)))),
    )
    .expect("attrs are unique")
}

fn setup(universe: u32, capacity: u64) -> (UniversalTable, Cinderella) {
    let mut table = UniversalTable::new(32);
    for i in 0..universe {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(capacity),
        ..Config::default()
    });
    (table, cindy)
}

fn assert_valid(cindy: &Cinderella, table: &UniversalTable) -> Result<(), TestCaseError> {
    let violations = cindy.validate(table).expect("validation scan");
    prop_assert!(violations.is_empty(), "{}", validate::render(&violations));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every structure the catalog/arena/index triad maintains stays
    /// internally consistent after every operation, including the split
    /// (capacity 4) and merge boundaries.
    #[test]
    fn full_validation_after_every_op(ops in ops()) {
        let (mut table, mut cindy) = setup(UNIVERSE, 4);
        let mut live: Vec<EntityId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Insert(a) => {
                    let e = entity(next, &a);
                    next += 1;
                    live.push(e.id());
                    cindy.insert(&mut table, e).expect("insert");
                }
                Op::Update(pick, a) => {
                    if live.is_empty() { continue; }
                    let id = live[pick % live.len()];
                    cindy.update(&mut table, entity(id.0, &a)).expect("update");
                }
                Op::Delete(pick) => {
                    if live.is_empty() { continue; }
                    let id = live.swap_remove(pick % live.len());
                    cindy.delete(&mut table, id).expect("delete");
                }
                Op::Merge => {
                    cindy.merge_pass(&mut table, 0.8).expect("merge pass");
                }
            }
            assert_valid(&cindy, &table)?;
        }
    }
}

/// The arena's stride relayout at the u64 word boundary: partitions are
/// laid out with one synopsis word while the universe is ≤ 64 attributes;
/// interning attribute 64 forces `grow_stride`, which moves every live row
/// to a wider stride. Everything — membership, synopses, presence bitmaps,
/// free-list — must survive the move, including recycled (dead) slots.
#[test]
fn stride_relayout_at_word_boundary_preserves_everything() {
    let (mut table, mut cindy) = setup(63, 3);
    // Fill several partitions (and recycle some arena slots via deletes)
    // entirely within the one-word universe.
    for i in 0..24u64 {
        let a = u32::try_from(i % 63).expect("fits");
        let b = (a + 1) % 63;
        cindy.insert(&mut table, entity(i, &[a, b])).expect("insert");
    }
    for i in (0..24u64).step_by(5) {
        cindy.delete(&mut table, EntityId(i)).expect("delete");
    }
    let violations = cindy.validate(&table).expect("scan");
    assert!(violations.is_empty(), "{}", validate::render(&violations));
    let before: u64 = cindy.catalog().iter().map(|m| m.entities).sum();

    // Cross the boundary: attributes 63 (still word 0), 64 and 65 (word 1).
    for (offset, new_attr) in (63..66u32).enumerate() {
        table.catalog_mut().intern(&format!("b{new_attr}"));
        let id = 1000 + offset as u64;
        cindy
            .insert(&mut table, entity(id, &[new_attr, 0]))
            .expect("insert across word boundary");
        let violations = cindy.validate(&table).expect("scan");
        assert!(
            violations.is_empty(),
            "after interning attr {new_attr}:\n{}",
            validate::render(&violations)
        );
    }

    let after: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
    assert_eq!(after, before + 3, "no entities lost in the relayout");
    // Old-universe entities are still queryable with their old synopses.
    assert!(table.get(EntityId(1)).is_ok());
    assert_eq!(table.universe(), 66);
}
