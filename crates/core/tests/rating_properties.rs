//! Metamorphic property tests on the §IV rating and the split-starter
//! heuristic — algebraic identities that must hold for *any* synopses.

use cind_model::{EntityId, Synopsis};
use cinderella_core::starters::SplitStarters;
use cinderella_core::{global_rating, RatingInputs};
use proptest::prelude::*;

const UNIVERSE: usize = 64;

fn synopsis() -> impl Strategy<Value = Synopsis> {
    prop::collection::btree_set(0u32..UNIVERSE as u32, 0..20)
        .prop_map(|bits| Synopsis::from_bits(UNIVERSE, bits))
}

fn weight() -> impl Strategy<Value = f64> {
    (0u8..=10).prop_map(|w| f64::from(w) / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// |r| ≤ 1 always: both h⁺ and (h⁻_e + h⁻_p) are bounded by the
    /// normaliser.
    #[test]
    fn rating_is_bounded(e in synopsis(), p in synopsis(), se in 0u64..1000, sp in 0u64..100_000, w in weight()) {
        let r = global_rating(w, &RatingInputs::compute(&e, se, &p, sp));
        prop_assert!(r.is_finite());
        prop_assert!((-1.0..=1.0).contains(&r), "r = {r}");
    }

    /// The rating is monotonically non-decreasing in the weight w.
    #[test]
    fn rating_is_monotone_in_weight(e in synopsis(), p in synopsis(), se in 0u64..1000, sp in 0u64..100_000) {
        let inputs = RatingInputs::compute(&e, se, &p, sp);
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=10 {
            let w = f64::from(step) / 10.0;
            let r = global_rating(w, &inputs);
            prop_assert!(r >= prev - 1e-12, "w={w}: {r} < {prev}");
            prev = r;
        }
    }

    /// The rating is symmetric: swapping the roles of entity and partition
    /// (synopsis and size together) leaves it unchanged — h⁺ is symmetric
    /// and the two heterogeneity terms swap.
    #[test]
    fn rating_is_symmetric(e in synopsis(), p in synopsis(), se in 0u64..1000, sp in 0u64..100_000, w in weight()) {
        let forward = global_rating(w, &RatingInputs::compute(&e, se, &p, sp));
        let backward = global_rating(w, &RatingInputs::compute(&p, sp, &e, se));
        prop_assert!((forward - backward).abs() < 1e-12);
    }

    /// The rating is scale-invariant: multiplying both sizes by the same
    /// factor changes nothing (it is a *ratio* of evidence).
    #[test]
    fn rating_is_scale_invariant(e in synopsis(), p in synopsis(), se in 1u64..100, sp in 1u64..1000, w in weight(), k in 1u64..50) {
        let base = global_rating(w, &RatingInputs::compute(&e, se, &p, sp));
        let scaled = global_rating(w, &RatingInputs::compute(&e, se * k, &p, sp * k));
        prop_assert!((base - scaled).abs() < 1e-9, "{base} vs {scaled} at k={k}");
    }

    /// A perfect attribute match rates exactly w; disjoint non-empty
    /// synopses with positive sizes rate strictly negative for w < 1.
    #[test]
    fn rating_anchors(e in synopsis(), se in 1u64..100, sp in 1u64..1000, w in weight()) {
        prop_assume!(!e.is_empty());
        let perfect = global_rating(w, &RatingInputs::compute(&e, se, &e, sp));
        prop_assert!((perfect - w).abs() < 1e-12);

        // Shift all bits by UNIVERSE to make a disjoint synopsis.
        let other = Synopsis::from_bits(
            2 * UNIVERSE,
            e.iter().map(|a| a.index() + UNIVERSE as u32),
        );
        let e2 = Synopsis::from_bits(2 * UNIVERSE, e.iter().map(|a| a.index()));
        let disjoint = global_rating(w, &RatingInputs::compute(&e2, se, &other, sp));
        if w < 1.0 {
            prop_assert!(disjoint < 0.0, "disjoint rated {disjoint} at w={w}");
        } else {
            prop_assert!(disjoint.abs() < 1e-12);
        }
    }

    /// Split-starter maintenance: the pair difference never decreases over
    /// any offer sequence, the starters are always entities that were
    /// offered, and the cached diff is always achievable by the pair.
    #[test]
    fn starter_pair_diff_is_monotone(offers in prop::collection::vec(synopsis(), 1..30)) {
        let mut st = SplitStarters::new();
        let mut prev_diff = 0;
        for (i, syn) in offers.iter().enumerate() {
            st.offer(EntityId(i as u64), syn);
            let diff = st.pair_diff();
            prop_assert!(diff >= prev_diff, "pair diff shrank: {diff} < {prev_diff}");
            prev_diff = diff;
            // The cached diff matches the actual synopsis difference.
            if let (Some((_, sa)), Some((_, sb))) = (st.a(), st.b()) {
                prop_assert_eq!(diff, sa.diff(sb));
            }
            // Starter ids come from the offered sequence.
            for (id, _) in [st.a(), st.b()].into_iter().flatten() {
                prop_assert!(id.0 <= i as u64);
            }
        }
    }

    /// The heuristic never beats the exact best pair, but always reaches at
    /// least half of it (each starter update keeps the locally best pair
    /// involving the newcomer, a classic 2-approximation-style guarantee we
    /// verify empirically here).
    #[test]
    fn starter_pair_is_competitive(offers in prop::collection::vec(synopsis(), 2..16)) {
        let mut st = SplitStarters::new();
        for (i, syn) in offers.iter().enumerate() {
            st.offer(EntityId(i as u64), syn);
        }
        let mut exact = 0;
        for i in 0..offers.len() {
            for j in (i + 1)..offers.len() {
                exact = exact.max(offers[i].diff(&offers[j]));
            }
        }
        let heuristic = st.pair_diff();
        prop_assert!(heuristic <= exact, "heuristic cannot exceed the true max");
        prop_assert!(
            2 * heuristic >= exact,
            "heuristic {heuristic} fell below half of exact {exact}"
        );
    }
}
