//! Partition placement across nodes — an extension beyond the paper.
//!
//! §II motivates the Online Partitioning Problem with distribution: "in
//! distributed databases or distributed file systems, partitions are
//! distributed among the nodes; in modern main-memory database systems …
//! partitions resemble the local memory of each CPU core." Once Cinderella
//! has produced the partitions, *where to put them* is the follow-up
//! physical-design decision. This module implements the two canonical
//! strategies and the metrics to compare them:
//!
//! * [`place_balanced`] — LPT greedy (largest partition first onto the
//!   least-loaded node): minimises size imbalance, ignores structure.
//! * [`place_affinity`] — co-locates partitions with overlapping synopses
//!   (a query touching one partition of a node probably touches its
//!   neighbours too), subject to a balance cap, trading a bounded amount
//!   of imbalance for lower query *fan-out* (nodes contacted per query).

use std::collections::HashMap;

use cind_model::Synopsis;
use cind_storage::SegmentId;

use crate::catalog::PartitionCatalog;

/// A placement of partitions onto `nodes` nodes.
///
/// ```
/// use cind_model::{AttrId, Entity, EntityId, Value};
/// use cind_storage::UniversalTable;
/// use cinderella_core::{place_balanced, Cinderella, Config};
///
/// let mut table = UniversalTable::new(64);
/// let a = table.catalog_mut().intern("a");
/// let b = table.catalog_mut().intern("b");
/// let mut cindy = Cinderella::new(Config::default());
/// for i in 0..10u64 {
///     let attr = if i % 2 == 0 { a } else { b };
///     let e = Entity::new(EntityId(i), [(attr, Value::Int(1))]).unwrap();
///     cindy.insert(&mut table, e)?;
/// }
/// let placement = place_balanced(cindy.catalog(), 2);
/// assert_eq!(placement.assignment.len(), cindy.catalog().len());
/// assert!(placement.imbalance() >= 1.0);
/// # Ok::<(), cinderella_core::CoreError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Placement {
    /// Partition → node.
    pub assignment: HashMap<SegmentId, usize>,
    /// Total `SIZE` placed on each node.
    pub node_sizes: Vec<u64>,
    /// OR of the synopses placed on each node.
    pub node_synopses: Vec<Synopsis>,
}

impl Placement {
    fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            assignment: HashMap::new(),
            node_sizes: vec![0; nodes],
            node_synopses: vec![Synopsis::default(); nodes],
        }
    }

    fn assign(&mut self, seg: SegmentId, syn: &Synopsis, size: u64, node: usize) {
        self.assignment.insert(seg, node);
        self.node_sizes[node] += size;
        self.node_synopses[node].merge(syn);
    }

    /// Load imbalance: `max(node size) / mean(node size)`; 1.0 is perfect.
    /// 1.0 by convention when nothing is placed.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.node_sizes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.node_sizes.len() as f64;
        let max = self.node_sizes.iter().copied().fold(0, u64::max) as f64;
        max / mean
    }

    /// Mean number of nodes a workload query must contact (a node is
    /// contacted iff it hosts at least one non-pruned partition).
    pub fn fanout(&self, catalog: &PartitionCatalog, workload: &[Synopsis]) -> f64 {
        if workload.is_empty() {
            return 0.0;
        }
        let mut total = 0usize;
        for q in workload {
            let mut touched = vec![false; self.node_sizes.len()];
            for meta in catalog.iter() {
                if !q.is_disjoint(&meta.attr_synopsis) {
                    if let Some(&n) = self.assignment.get(&meta.segment) {
                        touched[n] = true;
                    }
                }
            }
            total += touched.iter().filter(|t| **t).count();
        }
        total as f64 / workload.len() as f64
    }
}

/// Partitions sorted by descending size — both strategies place big rocks
/// first.
fn by_size_desc(catalog: &PartitionCatalog) -> Vec<(SegmentId, Synopsis, u64)> {
    let mut parts: Vec<(SegmentId, Synopsis, u64)> = catalog
        .iter()
        .map(|m| (m.segment, m.attr_synopsis.clone(), m.size))
        .collect();
    parts.sort_by_key(|(seg, _, size)| (std::cmp::Reverse(*size), *seg));
    parts
}

/// LPT greedy: every partition goes to the currently least-loaded node.
///
/// # Panics
/// Panics if `nodes == 0`.
pub fn place_balanced(catalog: &PartitionCatalog, nodes: usize) -> Placement {
    let mut p = Placement::new(nodes);
    for (seg, syn, size) in by_size_desc(catalog) {
        let node = (0..nodes).min_by_key(|&n| p.node_sizes[n]).unwrap_or(0);
        p.assign(seg, &syn, size, node);
    }
    p
}

/// Affinity-first: each partition goes to the node whose accumulated
/// synopsis it overlaps most, among nodes whose load stays within
/// `(1 + slack) × ideal`; falls back to the least-loaded node when none
/// qualifies. `slack = 0` degenerates to (almost) balanced placement.
///
/// # Panics
/// Panics if `nodes == 0` or `slack` is negative.
pub fn place_affinity(catalog: &PartitionCatalog, nodes: usize, slack: f64) -> Placement {
    assert!(slack >= 0.0, "slack must be non-negative");
    let parts = by_size_desc(catalog);
    let total: u64 = parts.iter().map(|(_, _, s)| s).sum();
    let cap = (total as f64 / nodes as f64) * (1.0 + slack);
    let mut p = Placement::new(nodes);
    for (seg, syn, size) in parts {
        let candidates: Vec<usize> = (0..nodes)
            .filter(|&n| (p.node_sizes[n] + size) as f64 <= cap)
            .collect();
        // Prefer overlap among nodes with headroom (ties break toward the
        // emptier node); an empty candidate list falls back to the
        // least-loaded node.
        let node = candidates
            .iter()
            .max_by_key(|&&n| {
                (
                    p.node_synopses[n].overlap(&syn),
                    std::cmp::Reverse(p.node_sizes[n]),
                )
            })
            .copied()
            .unwrap_or_else(|| {
                (0..nodes).min_by_key(|&n| p.node_sizes[n]).unwrap_or(0)
            });
        p.assign(seg, &syn, size, node);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::EntityId;

    /// A catalog with `k` partitions per shape over `shapes` disjoint
    /// shapes, each of the given size.
    fn catalog(shapes: usize, per_shape: usize, size: u64) -> PartitionCatalog {
        let mut cat = PartitionCatalog::new(crate::IndexMode::Off);
        let mut seg = 0u32;
        for s in 0..shapes {
            for _ in 0..per_shape {
                let id = SegmentId(seg);
                seg += 1;
                cat.create_partition(id);
                let syn = Synopsis::from_bits(
                    shapes * 4,
                    (0..4).map(|k| (s * 4 + k) as u32),
                );
                cat.add_entity(id, EntityId(u64::from(seg)), &syn, &syn, size, true);
            }
        }
        cat
    }

    fn shape_queries(shapes: usize) -> Vec<Synopsis> {
        (0..shapes)
            .map(|s| Synopsis::from_bits(shapes * 4, [(s * 4) as u32]))
            .collect()
    }

    #[test]
    fn balanced_placement_is_balanced() {
        let cat = catalog(4, 3, 100);
        let p = place_balanced(&cat, 4);
        assert_eq!(p.assignment.len(), 12);
        assert!((p.imbalance() - 1.0).abs() < 1e-9, "12×100 over 4 nodes is exact");
    }

    #[test]
    fn affinity_placement_reduces_fanout() {
        // 4 shapes × 4 partitions on 4 nodes: affinity can give each node
        // one whole shape (fan-out 1); balanced placement scatters shapes.
        let cat = catalog(4, 4, 100);
        let queries = shape_queries(4);
        let balanced = place_balanced(&cat, 4);
        let affinity = place_affinity(&cat, 4, 0.05);
        assert!((affinity.imbalance() - 1.0).abs() < 0.06);
        let bf = balanced.fanout(&cat, &queries);
        let af = affinity.fanout(&cat, &queries);
        assert!((af - 1.0).abs() < 1e-9, "affinity fan-out must be 1, got {af}");
        assert!(bf > af, "balanced fan-out {bf} must exceed affinity {af}");
    }

    #[test]
    fn affinity_respects_the_balance_cap() {
        // One giant shape: without the cap everything would pile onto one
        // node.
        let cat = catalog(1, 8, 100);
        let p = place_affinity(&cat, 4, 0.10);
        assert!(p.imbalance() <= 1.11, "imbalance {} exceeds slack", p.imbalance());
    }

    #[test]
    fn single_node_trivia_and_empty_catalog() {
        let cat = catalog(2, 2, 10);
        let p = place_balanced(&cat, 1);
        assert_eq!(p.imbalance(), 1.0);
        assert_eq!(p.fanout(&cat, &shape_queries(2)), 1.0);

        let empty = PartitionCatalog::new(crate::IndexMode::Off);
        let p = place_balanced(&empty, 3);
        assert_eq!(p.imbalance(), 1.0);
        assert_eq!(p.fanout(&empty, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        place_balanced(&PartitionCatalog::new(crate::IndexMode::Off), 0);
    }
}
