//! Partition merging — an extension beyond the paper.
//!
//! The paper's delete routine leaves the partitioning untouched (§III);
//! only empty partitions disappear. Under sustained deletes this strands
//! many underfull partitions: queries pay one union branch (and at least
//! one page) per partition, so efficiency decays even though the data
//! shrinks. §VII lists improving the partitioning's upkeep as future work;
//! this module adds the natural counterpart of the split: a *merge pass*
//! that folds underfull partitions into their best-rated peers.
//!
//! The pass reuses the §IV rating machinery unchanged: an underfull
//! partition is rated against every other partition exactly as if it were
//! one entity with synopsis `p` and size `SIZE(p)` — homogeneity and both
//! heterogeneity terms keep their meaning. A merge happens only when the
//! rating is non-negative (the merged partition would have been formed by
//! Algorithm 1 too) and the target stays within capacity, so a merge can
//! never undo a split that was necessary.

use cind_storage::UniversalTable;

use crate::partitioner::Cinderella;
use crate::CoreError;

/// Report of one [`Cinderella::merge_pass`].
///
/// ```
/// use cind_model::{AttrId, Entity, EntityId, Value};
/// use cind_storage::UniversalTable;
/// use cinderella_core::{Capacity, Cinderella, Config};
///
/// let mut table = UniversalTable::new(64);
/// let a = table.catalog_mut().intern("a");
/// let mut cindy = Cinderella::new(Config {
///     capacity: Capacity::MaxEntities(4),
///     weight: 0.3,
///     ..Config::default()
/// });
/// // Overflowing B = 4 fragments same-shape data into several partitions …
/// for i in 0..10u64 {
///     let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
///     cindy.insert(&mut table, e)?;
/// }
/// // … deleting most of it leaves them underfull …
/// for i in 0..8u64 {
///     cindy.delete(&mut table, EntityId(i))?;
/// }
/// // … and the merge pass folds them back together.
/// let report = cindy.merge_pass(&mut table, 0.5)?;
/// assert!(report.merges >= 1);
/// assert_eq!(cindy.catalog().len(), 1);
/// # Ok::<(), cinderella_core::CoreError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MergeReport {
    /// Partitions folded into a peer.
    pub merges: u64,
    /// Entities physically moved.
    pub entities_moved: u64,
    /// Underfull partitions left alone (no peer rated ≥ 0 with room).
    pub kept: u64,
}

impl Cinderella {
    /// Folds underfull partitions (fill below `threshold` of the capacity)
    /// into their best-rated peer, if that peer rates non-negatively and
    /// has room for the whole partition. Returns what happened.
    ///
    /// Run this after bulk deletes, or periodically; it is deliberately
    /// *not* triggered automatically by `delete` — the paper's delete is
    /// O(1) and keeping it that way preserves the measured behaviour.
    ///
    /// # Panics
    /// Panics unless `0.0 < threshold <= 1.0`.
    ///
    /// # Errors
    /// Storage errors from moving entities.
    pub fn merge_pass(
        &mut self,
        table: &mut UniversalTable,
        threshold: f64,
    ) -> Result<MergeReport, CoreError> {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1], got {threshold}"
        );
        let mut report = MergeReport::default();
        // Sweep until quiescent: a merge grows its target, which can make
        // further merges viable. Each merge removes one partition, so the
        // loop terminates.
        loop {
            let mut merged_this_sweep = false;
            report.kept = 0;
            // Smallest partitions first: they gain the most and are the
            // cheapest to move.
            let mut candidates: Vec<_> = self
                .catalog()
                .iter()
                .filter(|m| self.is_underfull(m, threshold))
                .map(|m| (m.entities, m.segment))
                .collect();
            candidates.sort_unstable();

            for (_, seg) in candidates {
                // The catalog changes as we merge; the candidate may be
                // gone (merged into) or may have grown past the threshold.
                let Some(meta) = self.catalog().get(seg) else {
                    continue;
                };
                if !self.is_underfull(meta, threshold) {
                    continue;
                }
                match self.merge_one(table, seg)? {
                    Some(moved) => {
                        report.merges += 1;
                        report.entities_moved += moved;
                        merged_this_sweep = true;
                    }
                    None => report.kept += 1,
                }
            }
            if !merged_this_sweep {
                break;
            }
        }
        self.debug_validate_catalog();
        Ok(report)
    }

    fn is_underfull(&self, meta: &crate::PartitionMeta, threshold: f64) -> bool {
        match self.config().capacity {
            crate::Capacity::MaxEntities(b) => (meta.entities as f64) < b as f64 * threshold,
            crate::Capacity::MaxSize(b) => (meta.size as f64) < b as f64 * threshold,
        }
    }

    /// Tries to fold partition `seg` into its best-rated peer. Returns the
    /// number of entities moved, or `None` if no peer qualifies.
    fn merge_one(
        &mut self,
        table: &mut UniversalTable,
        seg: cind_storage::SegmentId,
    ) -> Result<Option<u64>, CoreError> {
        // The sweep re-checks liveness before calling, but the catalog may
        // shift under multi-candidate sweeps; a vanished candidate is
        // simply nothing to merge.
        let Some(meta) = self.catalog().get(seg) else {
            return Ok(None);
        };
        let (src_syn, src_size, src_entities) =
            (meta.rating_synopsis(), meta.size, meta.entities);

        // Rate the whole partition like an entity against every peer.
        let mut best: Option<(cind_storage::SegmentId, f64)> = None;
        for peer in self.catalog().iter() {
            if peer.segment == seg {
                continue;
            }
            // Capacity: the peer must absorb the whole partition.
            let fits = !self.config().capacity.would_overflow(
                peer.entities + src_entities - 1,
                peer.size + src_size.saturating_sub(1),
                1,
            ) && match self.config().capacity {
                crate::Capacity::MaxEntities(b) => peer.entities + src_entities <= b,
                crate::Capacity::MaxSize(b) => peer.size + src_size <= b,
            };
            if !fits {
                continue;
            }
            let r = crate::rating::rate(
                self.config().weight,
                &src_syn,
                src_size,
                &peer.rating_synopsis(),
                peer.size,
            );
            if r >= 0.0 && best.is_none_or(|(_, rb)| rb < r) {
                best = Some((peer.segment, r));
            }
        }
        let Some((target, _)) = best else {
            return Ok(None);
        };

        // Move every member; account in the catalog per entity so the
        // OR-of-members invariant and the starters stay exact.
        let members = table.scan_collect(seg)?;
        let moved = members.len() as u64;
        self.absorb(table, seg, target, members)?;
        Ok(Some(moved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Capacity, Config};
    use cind_model::{AttrId, Entity, EntityId, Value};

    fn entity(id: u64, attrs: &[u32]) -> Entity {
        Entity::new(
            EntityId(id),
            attrs.iter().map(|&a| (AttrId(a), Value::Int(1))),
        )
        .unwrap()
    }

    fn setup(b: u64) -> (UniversalTable, Cinderella) {
        let mut table = UniversalTable::new(64);
        for i in 0..16 {
            table.catalog_mut().intern(&format!("a{i}"));
        }
        let cindy = Cinderella::new(Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(b),
            ..Config::default()
        });
        (table, cindy)
    }

    /// Build two same-shape partitions by filling one to capacity, then
    /// deleting most of both halves after the split.
    fn fragmented(b: u64) -> (UniversalTable, Cinderella) {
        let (mut table, mut cindy) = setup(b);
        for i in 0..=b {
            cindy.insert(&mut table, entity(i, &[0, 1, 2])).unwrap();
        }
        assert!(cindy.stats().splits >= 1, "setup must split");
        assert!(cindy.catalog().len() >= 2);
        // Delete all but one entity per partition.
        let keep: Vec<EntityId> = cindy
            .catalog()
            .iter()
            .map(|m| {
                let mut first = None;
                table
                    .scan(m.segment, |e| {
                        if first.is_none() {
                            first = Some(e.id());
                        }
                    })
                    .unwrap();
                first.unwrap()
            })
            .collect();
        for i in 0..=b {
            let id = EntityId(i);
            if !keep.contains(&id) && table.location(id).is_some() {
                cindy.delete(&mut table, id).unwrap();
            }
        }
        (table, cindy)
    }

    #[test]
    fn merges_underfull_same_shape_partitions() {
        let (mut table, mut cindy) = fragmented(8);
        let before = cindy.catalog().len();
        assert!(before >= 2);
        let report = cindy.merge_pass(&mut table, 0.5).unwrap();
        assert!(report.merges >= 1, "{report:?}");
        assert_eq!(cindy.catalog().len(), before - report.merges as usize);
        // Everything still stored and the invariants hold.
        let total: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
        assert_eq!(total as usize, table.entity_count());
        for m in cindy.catalog().iter() {
            let mut count = 0;
            table.scan(m.segment, |_| count += 1).unwrap();
            assert_eq!(count, m.entities);
        }
    }

    #[test]
    fn never_merges_dissimilar_partitions() {
        let (mut table, mut cindy) = setup(100);
        cindy.insert(&mut table, entity(0, &[0, 1, 2])).unwrap();
        cindy.insert(&mut table, entity(1, &[8, 9, 10])).unwrap();
        assert_eq!(cindy.catalog().len(), 2);
        let report = cindy.merge_pass(&mut table, 1.0).unwrap();
        assert_eq!(report.merges, 0);
        assert_eq!(report.kept, 2);
        assert_eq!(cindy.catalog().len(), 2);
    }

    #[test]
    fn never_overflows_the_target() {
        let (mut table, mut cindy) = setup(4);
        // Two same-shape partitions of 3 entities each (3 + 3 > B = 4):
        // force them apart with an intervening split.
        for i in 0..5 {
            cindy.insert(&mut table, entity(i, &[0, 1])).unwrap();
        }
        // After the split at the 5th insert, partitions hold {4, 1}.
        let report = cindy.merge_pass(&mut table, 1.0).unwrap();
        for m in cindy.catalog().iter() {
            assert!(m.entities <= 4, "{report:?}");
        }
    }

    #[test]
    fn merge_improves_union_overhead() {
        let (mut table, mut cindy) = fragmented(8);
        let before = cindy.catalog().len();
        cindy.merge_pass(&mut table, 0.5).unwrap();
        assert!(
            cindy.catalog().len() < before,
            "merge pass must shrink the catalog"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let (mut table, mut cindy) = setup(8);
        let _ = cindy.merge_pass(&mut table, 0.0);
    }
}
