//! Cinderella configuration.

use cind_model::SizeModel;

use crate::modes::SynopsisMode;

/// Partition capacity limit — the paper's `B` / `MAXSIZE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Capacity {
    /// At most this many entities per partition. This is the limit the
    /// paper's evaluation uses (B ∈ {500, 5000, 50000} entities).
    MaxEntities(u64),
    /// At most this much `SIZE()` per partition (cells or bytes, per the
    /// configured [`SizeModel`]). Matches Algorithm 1's
    /// `SIZE(p) + SIZE(e) > MAXSIZE` check literally.
    MaxSize(u64),
}

impl Capacity {
    /// Whether adding an entity of size `entity_size` to a partition of
    /// `entities` entities and total size `part_size` would overflow.
    pub fn would_overflow(&self, entities: u64, part_size: u64, entity_size: u64) -> bool {
        match *self {
            Capacity::MaxEntities(b) => entities + 1 > b,
            Capacity::MaxSize(b) => part_size + entity_size > b,
        }
    }
}

/// Whether the catalog maintains the packed candidate/survivor index (the
/// attribute-presence bitmaps of [`crate::arena`]) and routes the rating
/// scan and query planning through it.
///
/// The index is semantics-preserving at every mode: the indexed rating scan
/// returns the same best partition as the full sweep whenever the best
/// rating is non-negative (the only case Algorithm 1 acts on), and the
/// survivor set equals per-partition `|p ∧ q| = 0` pruning exactly — both
/// are property-tested. The knob exists for A/B measurement and for
/// workloads small enough that the index's constant overhead is not worth
/// paying.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IndexMode {
    /// Cost-gated: the rating scan uses the index once the catalog has at
    /// least [`IndexMode::AUTO_MIN_PARTITIONS`] partitions (below that, the
    /// linear arena sweep is already a handful of cache lines); planning
    /// always uses it. The default.
    #[default]
    Auto,
    /// Always rate and plan through the index.
    On,
    /// Never: every insert sweeps all partitions, every plan tests every
    /// partition — the paper prototype's behaviour and the A/B baseline.
    Off,
}

impl IndexMode {
    /// The `Auto` gate: catalogs smaller than this are swept linearly.
    pub const AUTO_MIN_PARTITIONS: usize = 64;
}

impl std::str::FromStr for IndexMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "on" => Ok(Self::On),
            "off" => Ok(Self::Off),
            other => Err(format!("bad index mode {other:?}; use auto|on|off")),
        }
    }
}

/// How the catalog *stores* the attribute→partition presence metadata the
/// candidate/survivor index is built from: exact bitmaps for every
/// partition, or the tiered approximate structure of [`crate::tier`].
///
/// `Exact` is the oracle: one [`crate::arena::PresenceIndex`] row per
/// attribute, O(attrs × partitions) bits. `Tiered` replaces those bitmaps
/// with per-group blocked Bloom filter rows plus a bounded hot tier of
/// exact bitmaps (promotion driven by op-count heat, decayed on epochs —
/// never wall clock), cutting resident index memory by an order of
/// magnitude on large catalogs. The tier is *superset-sound* by
/// construction: an exact-present (attr, partition) pair is always present
/// in the approximate tier, so candidate sets can only grow — false
/// positives cost scans, never answers. `Cinderella::validate` checks the
/// implication structurally.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IndexTier {
    /// Exact presence bitmaps for every partition (the default and the
    /// differential-test oracle).
    #[default]
    Exact,
    /// Approximate filter tier + bounded exact hot tier, from the first
    /// partition on.
    Tiered,
    /// Cost-gated one-way ratchet: exact bitmaps until the catalog reaches
    /// [`IndexTier::AUTO_MIN_PARTITIONS`] partitions, tiered from then on.
    Auto,
}

impl IndexTier {
    /// The `Auto` ratchet point: below this partition count the exact
    /// bitmaps are small enough that approximation buys nothing.
    pub const AUTO_MIN_PARTITIONS: usize = 4096;
}

impl std::str::FromStr for IndexTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Self::Exact),
            "tiered" => Ok(Self::Tiered),
            "auto" => Ok(Self::Auto),
            other => Err(format!("bad index tier {other:?}; use exact|tiered|auto")),
        }
    }
}

impl std::fmt::Display for IndexTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Exact => "exact",
            Self::Tiered => "tiered",
            Self::Auto => "auto",
        })
    }
}

/// Whether the background reorganizer (the `cind-reorg` crate) is allowed
/// to act on this store.
///
/// `Off` is provably inert: no heat bookkeeping influences any decision,
/// no reorganization action runs, and the WAL/snapshot byte streams are
/// identical to a build without the subsystem (the server's differential
/// test checks exactly this). `Auto` lets the driver enact cost-modeled
/// merge / re-split / migrate actions between foreground operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReorgMode {
    /// Never reorganize (the default — the paper's behaviour).
    #[default]
    Off,
    /// Enact actions whose estimated gain clears the hysteresis threshold,
    /// within the per-step work budget.
    Auto,
}

impl std::str::FromStr for ReorgMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Self::Off),
            "auto" => Ok(Self::Auto),
            other => Err(format!("bad reorg mode {other:?}; use off|auto")),
        }
    }
}

impl std::fmt::Display for ReorgMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Off => "off",
            Self::Auto => "auto",
        })
    }
}

/// Knobs of the workload-adaptive background reorganizer.
///
/// All cadence is *op-count based* — the heat window advances every
/// `epoch_ops` partitioner operations, never on wall-clock time, so a run
/// is a pure function of its operation sequence (the CIND-A005 property
/// the simulation harness relies on).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReorgConfig {
    /// Whether the driver may act at all.
    pub mode: ReorgMode,
    /// Per-step work budget: the maximum number of entities one
    /// `ReorgDriver::step` may physically move. Bounds the writer-lock
    /// hold time of a background step to the same order as a split.
    pub budget: u64,
    /// Hysteresis threshold in `[0, 1]`: an action is enacted only when
    /// its estimated workload-weighted scan saving is at least this
    /// fraction of the affected partitions' current scan cost (and a merge
    /// only when its estimated scan *damage* stays below this fraction).
    pub threshold: f64,
    /// Operations per heat epoch: after this many partitioner ops the heat
    /// counters and workload weights are halved (deterministic sliding
    /// window) and the driver considers one reorganization step.
    pub epoch_ops: u64,
}

impl Default for ReorgConfig {
    fn default() -> Self {
        Self { mode: ReorgMode::Off, budget: 32, threshold: 0.05, epoch_ops: 64 }
    }
}

impl ReorgConfig {
    /// Whether any reorganization work may happen.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.mode == ReorgMode::Auto && self.budget > 0
    }
}

/// Tuning knobs of the algorithm.
#[derive(Clone, Debug)]
pub struct Config {
    /// Rating weight `w ∈ [0, 1]` balancing positive vs. negative evidence
    /// (§IV). `w = 0` admits only perfectly homogeneous partitions; the
    /// paper finds 0.2–0.5 reasonable and uses 0.2 for DBpedia.
    pub weight: f64,
    /// Partition capacity `B`.
    pub capacity: Capacity,
    /// The `SIZE()` function of Definition 1.
    pub size_model: SizeModel,
    /// Entity-based or workload-based partitioning (§II).
    pub mode: SynopsisMode,
    /// The candidate/survivor index mode: rate and plan through the
    /// attribute-presence bitmaps (`On`), never (`Off`), or cost-gated
    /// (`Auto`). Semantics-preserving; the `ablations` and `index` benches
    /// measure the speedup.
    pub index: IndexMode,
    /// How the index's presence metadata is stored: exact per-partition
    /// bitmaps (`exact`), the approximate filter tier plus bounded exact
    /// hot tier (`tiered`), or a partition-count-gated ratchet (`auto`).
    /// Superset-sound at every setting; see [`IndexTier`].
    pub tier: IndexTier,
    /// Record a per-insert [`InsertEvent`](crate::InsertEvent) trace
    /// (latency, split flag, ratings computed) for the Fig. 8 experiment.
    pub record_events: bool,
    /// Background reorganizer knobs (`--reorg off|auto` plus budget /
    /// threshold / epoch cadence). Off by default; see [`ReorgConfig`].
    pub reorg: ReorgConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weight: 0.2,
            capacity: Capacity::MaxEntities(5000),
            size_model: SizeModel::Cells,
            mode: SynopsisMode::EntityBased,
            index: IndexMode::Auto,
            tier: IndexTier::Exact,
            record_events: false,
            reorg: ReorgConfig::default(),
        }
    }
}

impl Config {
    /// Validates the knobs (weight range, positive capacity).
    ///
    /// # Panics
    /// Panics on an out-of-range weight or a zero capacity; configs are
    /// build-time values, so failing fast beats threading errors.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.weight) && self.weight.is_finite(),
            "weight w must be in [0, 1], got {}",
            self.weight
        );
        let cap_ok = match self.capacity {
            Capacity::MaxEntities(b) => b >= 2,
            Capacity::MaxSize(b) => b >= 1,
        };
        assert!(cap_ok, "capacity must allow at least two entities per partition");
        assert!(
            (0.0..=1.0).contains(&self.reorg.threshold) && self.reorg.threshold.is_finite(),
            "reorg threshold must be in [0, 1], got {}",
            self.reorg.threshold
        );
        assert!(self.reorg.epoch_ops >= 1, "reorg epoch must be at least one op");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_by_entities() {
        let c = Capacity::MaxEntities(3);
        assert!(!c.would_overflow(2, 999, 999));
        assert!(c.would_overflow(3, 0, 0));
    }

    #[test]
    fn overflow_by_size() {
        let c = Capacity::MaxSize(100);
        assert!(!c.would_overflow(999, 90, 10));
        assert!(c.would_overflow(0, 90, 11));
    }

    #[test]
    fn default_is_valid() {
        Config::default().validate();
    }

    #[test]
    fn index_mode_parses() {
        assert_eq!("auto".parse::<IndexMode>().unwrap(), IndexMode::Auto);
        assert_eq!("on".parse::<IndexMode>().unwrap(), IndexMode::On);
        assert_eq!("off".parse::<IndexMode>().unwrap(), IndexMode::Off);
        assert!("ON".parse::<IndexMode>().is_err());
    }

    #[test]
    fn index_tier_parses() {
        assert_eq!("exact".parse::<IndexTier>().unwrap(), IndexTier::Exact);
        assert_eq!("tiered".parse::<IndexTier>().unwrap(), IndexTier::Tiered);
        assert_eq!("auto".parse::<IndexTier>().unwrap(), IndexTier::Auto);
        assert!("TIERED".parse::<IndexTier>().is_err());
        assert_eq!(IndexTier::Tiered.to_string(), "tiered");
        assert_eq!(IndexTier::default(), IndexTier::Exact);
    }

    #[test]
    fn reorg_mode_parses() {
        assert_eq!("off".parse::<ReorgMode>().unwrap(), ReorgMode::Off);
        assert_eq!("auto".parse::<ReorgMode>().unwrap(), ReorgMode::Auto);
        assert!("AUTO".parse::<ReorgMode>().is_err());
        assert_eq!(ReorgMode::Auto.to_string(), "auto");
    }

    #[test]
    fn reorg_default_is_off_and_inert() {
        let r = ReorgConfig::default();
        assert_eq!(r.mode, ReorgMode::Off);
        assert!(!r.enabled());
        assert!(!ReorgConfig { budget: 0, mode: ReorgMode::Auto, ..r }.enabled());
        assert!(ReorgConfig { mode: ReorgMode::Auto, ..r }.enabled());
    }

    #[test]
    #[should_panic(expected = "reorg threshold")]
    fn bad_reorg_threshold_panics() {
        let mut cfg = Config::default();
        cfg.reorg.threshold = 2.0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn bad_weight_panics() {
        Config { weight: 1.5, ..Config::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_panics() {
        Config { capacity: Capacity::MaxEntities(1), ..Config::default() }.validate();
    }
}
