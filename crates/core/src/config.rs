//! Cinderella configuration.

use cind_model::SizeModel;

use crate::modes::SynopsisMode;

/// Partition capacity limit — the paper's `B` / `MAXSIZE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Capacity {
    /// At most this many entities per partition. This is the limit the
    /// paper's evaluation uses (B ∈ {500, 5000, 50000} entities).
    MaxEntities(u64),
    /// At most this much `SIZE()` per partition (cells or bytes, per the
    /// configured [`SizeModel`]). Matches Algorithm 1's
    /// `SIZE(p) + SIZE(e) > MAXSIZE` check literally.
    MaxSize(u64),
}

impl Capacity {
    /// Whether adding an entity of size `entity_size` to a partition of
    /// `entities` entities and total size `part_size` would overflow.
    pub fn would_overflow(&self, entities: u64, part_size: u64, entity_size: u64) -> bool {
        match *self {
            Capacity::MaxEntities(b) => entities + 1 > b,
            Capacity::MaxSize(b) => part_size + entity_size > b,
        }
    }
}

/// Tuning knobs of the algorithm.
#[derive(Clone, Debug)]
pub struct Config {
    /// Rating weight `w ∈ [0, 1]` balancing positive vs. negative evidence
    /// (§IV). `w = 0` admits only perfectly homogeneous partitions; the
    /// paper finds 0.2–0.5 reasonable and uses 0.2 for DBpedia.
    pub weight: f64,
    /// Partition capacity `B`.
    pub capacity: Capacity,
    /// The `SIZE()` function of Definition 1.
    pub size_model: SizeModel,
    /// Entity-based or workload-based partitioning (§II).
    pub mode: SynopsisMode,
    /// Maintain an inverted attribute→partition index so the rating scan
    /// only touches partitions that can rate ≥ 0 (candidate partitions).
    /// Semantics-preserving; the `ablations` bench measures the speedup.
    pub use_attr_index: bool,
    /// Record a per-insert [`InsertEvent`](crate::InsertEvent) trace
    /// (latency, split flag, ratings computed) for the Fig. 8 experiment.
    pub record_events: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weight: 0.2,
            capacity: Capacity::MaxEntities(5000),
            size_model: SizeModel::Cells,
            mode: SynopsisMode::EntityBased,
            use_attr_index: false,
            record_events: false,
        }
    }
}

impl Config {
    /// Validates the knobs (weight range, positive capacity).
    ///
    /// # Panics
    /// Panics on an out-of-range weight or a zero capacity; configs are
    /// build-time values, so failing fast beats threading errors.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.weight) && self.weight.is_finite(),
            "weight w must be in [0, 1], got {}",
            self.weight
        );
        let cap_ok = match self.capacity {
            Capacity::MaxEntities(b) => b >= 2,
            Capacity::MaxSize(b) => b >= 1,
        };
        assert!(cap_ok, "capacity must allow at least two entities per partition");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_by_entities() {
        let c = Capacity::MaxEntities(3);
        assert!(!c.would_overflow(2, 999, 999));
        assert!(c.would_overflow(3, 0, 0));
    }

    #[test]
    fn overflow_by_size() {
        let c = Capacity::MaxSize(100);
        assert!(!c.would_overflow(999, 90, 10));
        assert!(c.would_overflow(0, 90, 11));
    }

    #[test]
    fn default_is_valid() {
        Config::default().validate();
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn bad_weight_panics() {
        Config { weight: 1.5, ..Config::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_panics() {
        Config { capacity: Capacity::MaxEntities(1), ..Config::default() }.validate();
    }
}
