//! Parallel bulk loading — an extension beyond the paper.
//!
//! Cinderella is an online algorithm: one rating scan per insert,
//! sequentially. For the *initial* load of a large universal table that
//! serialises the whole dataset through one core. This module adds the
//! standard two-phase parallel recipe:
//!
//! 1. **Shard** the batch round-robin over `threads` workers; each worker
//!    runs an independent Cinderella on a scratch table (same
//!    configuration, same attribute catalog) — the expensive rating scans
//!    run in parallel.
//! 2. **Stitch**: adopt every shard partition wholesale into the target
//!    table (cheap bulk copies, no rating), then run a
//!    [`merge_pass`](crate::Cinderella::merge_pass) so near-duplicate
//!    partitions produced by different shards fold together under the
//!    regular §IV rating.
//!
//! The result is *a* valid Cinderella partitioning — not bit-identical to
//! the sequential one (the algorithm is order-dependent by design), but
//! satisfying the same invariants: capacity bounds, exact synopses, and
//! comparable efficiency (asserted in `tests/bulk_load.rs`).

use cind_model::Entity;
use cind_storage::UniversalTable;

use crate::partitioner::Cinderella;
use crate::{Config, CoreError};

/// What a [`bulk_load`] did.
#[derive(Clone, Debug, Default)]
pub struct BulkLoadReport {
    /// Worker threads used.
    pub threads: usize,
    /// Partitions each shard produced.
    pub shard_partitions: Vec<usize>,
    /// Partitions folded together by the stitch pass.
    pub stitch_merges: u64,
    /// Final partition count.
    pub partitions: usize,
}

/// Loads `entities` into `table` with `threads` parallel Cinderella
/// workers, returning the stitched partitioner and a report.
///
/// With `threads <= 1` this degenerates to the plain sequential load.
/// Entity ids must be unique across the batch (as for any load).
///
/// ```
/// use cind_model::{AttrId, Entity, EntityId, Value};
/// use cind_storage::UniversalTable;
/// use cinderella_core::{bulk_load, Config};
///
/// let mut table = UniversalTable::new(64);
/// let a = table.catalog_mut().intern("a");
/// let batch: Vec<Entity> = (0..100u64)
///     .map(|i| Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap())
///     .collect();
/// let (cindy, report) = bulk_load(&mut table, Config::default(), batch, 4)?;
/// assert_eq!(report.threads, 4);
/// assert_eq!(table.entity_count(), 100);
/// assert_eq!(cindy.catalog().len(), report.partitions);
/// # Ok::<(), cinderella_core::CoreError>(())
/// ```
///
/// # Errors
/// Storage errors from the load or the stitch phase.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn bulk_load(
    table: &mut UniversalTable,
    config: Config,
    entities: Vec<Entity>,
    threads: usize,
) -> Result<(Cinderella, BulkLoadReport), CoreError> {
    config.validate();
    if threads <= 1 {
        let mut cindy = Cinderella::new(config);
        let n = {
            let mut n = 0usize;
            for e in entities {
                cindy.insert(table, e)?;
                n += 1;
            }
            n
        };
        let _ = n;
        let partitions = cindy.catalog().len();
        return Ok((
            cindy,
            BulkLoadReport {
                threads: 1,
                shard_partitions: vec![partitions],
                stitch_merges: 0,
                partitions,
            },
        ));
    }

    // Phase 1: shard round-robin and partition each shard in parallel.
    // Workers see the same attribute catalog (cloned), so attribute ids —
    // and therefore synopses — are consistent across shards.
    let mut shards: Vec<Vec<Entity>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, e) in entities.into_iter().enumerate() {
        shards[i % threads].push(e);
    }
    let catalog = table.catalog().clone();
    let shard_results: Vec<Result<(Cinderella, UniversalTable), CoreError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|chunk| {
                    let config = config.clone();
                    let catalog = catalog.clone();
                    scope.spawn(move || {
                        let mut scratch = UniversalTable::new(0);
                        *scratch.catalog_mut() = catalog;
                        let mut cindy = Cinderella::new(config);
                        for e in chunk {
                            cindy.insert(&mut scratch, e)?;
                        }
                        Ok((cindy, scratch))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(_) => Err(CoreError::Invariant("bulk-load worker panicked")),
                })
                .collect()
        });

    // Phase 2: adopt shard partitions wholesale — the segments move at
    // page granularity (no re-encoding), and their catalog metadata
    // (synopses, sizes, starters) moves with them — then stitch.
    let mut merged = Cinderella::new(config);
    let mut report = BulkLoadReport { threads, ..BulkLoadReport::default() };
    for result in shard_results {
        let (shard_cindy, mut shard_table) = result?;
        report.shard_partitions.push(shard_cindy.catalog().len());
        let metas: Vec<_> = shard_cindy.catalog().iter().cloned().collect();
        for meta in metas {
            let segment = shard_table.detach_segment(meta.segment)?;
            let entities = meta.entities;
            let new_id = table.attach_segment(segment)?;
            merged.catalog_mut().adopt(meta, new_id);
            merged.bump_inserts_by(entities);
        }
    }
    let before = merged.stats().merges;
    merged.merge_pass(table, 1.0)?;
    report.stitch_merges = merged.stats().merges - before;
    report.partitions = merged.catalog().len();
    merged.debug_validate_catalog();
    Ok((merged, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Capacity;
    use cind_model::{AttrId, EntityId, Value};

    fn entities(n: u64) -> Vec<Entity> {
        (0..n)
            .map(|i| {
                let base = (i % 3) * 4;
                Entity::new(
                    EntityId(i),
                    (0..3).map(|k| (AttrId((base + k) as u32), Value::Int(1))),
                )
                .unwrap()
            })
            .collect()
    }

    fn table() -> UniversalTable {
        let mut t = UniversalTable::new(64);
        for i in 0..12 {
            t.catalog_mut().intern(&format!("a{i}"));
        }
        t
    }

    #[test]
    fn parallel_load_preserves_entities_and_capacity() {
        let mut t = table();
        let config = Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(50),
            ..Config::default()
        };
        let (cindy, report) = bulk_load(&mut t, config, entities(600), 4).unwrap();
        assert_eq!(report.threads, 4);
        assert_eq!(report.shard_partitions.len(), 4);
        assert_eq!(t.entity_count(), 600);
        let total: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
        assert_eq!(total, 600);
        for m in cindy.catalog().iter() {
            assert!(m.entities <= 50);
        }
        for i in 0..600u64 {
            assert!(t.location(EntityId(i)).is_some(), "entity {i} lost");
        }
    }

    #[test]
    fn stitch_folds_cross_shard_duplicates() {
        // Three shapes, B far above the per-shard volume: each shard makes
        // 3 partitions; the stitch should fold the 4×3 down toward 3.
        let mut t = table();
        let config = Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(10_000),
            ..Config::default()
        };
        let (cindy, report) = bulk_load(&mut t, config, entities(300), 4).unwrap();
        assert!(report.stitch_merges > 0, "{report:?}");
        assert_eq!(cindy.catalog().len(), 3, "{report:?}");
        // And they are pure: one shape per partition.
        for m in cindy.catalog().iter() {
            assert_eq!(m.attr_synopsis.cardinality(), 3);
            assert_eq!(m.sparseness(), 0.0);
        }
    }

    #[test]
    fn single_thread_is_the_sequential_load() {
        let mut t1 = table();
        let config = Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(50),
            ..Config::default()
        };
        let (bulk, report) = bulk_load(&mut t1, config.clone(), entities(200), 1).unwrap();
        assert_eq!(report.threads, 1);

        let mut t2 = table();
        let mut seq = Cinderella::new(config);
        for e in entities(200) {
            seq.insert(&mut t2, e).unwrap();
        }
        assert_eq!(bulk.catalog().len(), seq.catalog().len());
        let sizes = |c: &Cinderella| {
            let mut v: Vec<u64> = c.catalog().iter().map(|m| m.entities).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes(&bulk), sizes(&seq));
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut t = table();
        let (cindy, report) =
            bulk_load(&mut t, Config::default(), Vec::new(), 4).unwrap();
        assert_eq!(cindy.catalog().len(), 0);
        assert_eq!(report.partitions, 0);
    }
}
