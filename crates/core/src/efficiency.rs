//! Partitioning efficiency — Definition 1.

use cind_model::Synopsis;
use cind_storage::UniversalTable;

use crate::Cinderella;

/// `EFFICIENCY(P)` over explicit collections (Definition 1):
///
/// ```text
///              Σ_{q∈W, e∈T} sgn(|e ∧ q|) · SIZE(e)
/// EFFICIENCY = ────────────────────────────────────
///              Σ_{q∈W, p∈P} sgn(|p ∧ q|) · SIZE(p)
/// ```
///
/// `entities` and `partitions` are `(attribute synopsis, SIZE)` pairs. The
/// result is in `[0, 1]`: the fraction of data read that is actually
/// relevant to the workload. A workload that reads nothing (denominator 0)
/// is vacuously efficient: 1.0.
pub fn efficiency_of(
    entities: impl IntoIterator<Item = (Synopsis, u64)>,
    partitions: &[(Synopsis, u64)],
    queries: &[Synopsis],
) -> f64 {
    let (relevant, read) = efficiency_counters(entities, partitions, queries);
    if read == 0 {
        1.0
    } else {
        relevant as f64 / read as f64
    }
}

/// The raw `(relevant, read)` sums behind [`efficiency_of`] — Definition
/// 1's numerator and denominator before the division.
///
/// Exposed so a *sharded* engine can compute its global efficiency
/// correctly: summing each shard's counter pair and dividing once is the
/// workload-weighted combination Definition 1 demands, whereas averaging
/// per-shard efficiencies would weight an idle shard the same as a busy
/// one.
pub fn efficiency_counters(
    entities: impl IntoIterator<Item = (Synopsis, u64)>,
    partitions: &[(Synopsis, u64)],
    queries: &[Synopsis],
) -> (u64, u64) {
    let mut relevant: u64 = 0;
    for (syn, size) in entities {
        let hits = queries.iter().filter(|q| !q.is_disjoint(&syn)).count() as u64;
        relevant += hits * size;
    }
    let mut read: u64 = 0;
    for (syn, size) in partitions {
        let hits = queries.iter().filter(|q| !q.is_disjoint(syn)).count() as u64;
        read += hits * size;
    }
    (relevant, read)
}

/// `EFFICIENCY(P)` of a Cinderella-partitioned table for a workload of
/// query synopses. Scans the table once to size the entities (the scan
/// shows up in the I/O counters like any other).
pub fn efficiency(table: &UniversalTable, cindy: &Cinderella, queries: &[Synopsis]) -> f64 {
    let (relevant, read) = efficiency_counters_for(table, cindy, queries);
    if read == 0 {
        1.0
    } else {
        relevant as f64 / read as f64
    }
}

/// The raw `(relevant, read)` counters behind [`efficiency`] for one
/// table/policy pair — what one shard contributes to a sharded engine's
/// global `EFFICIENCY(P)` (sum the pairs across shards, then divide once).
pub fn efficiency_counters_for(
    table: &UniversalTable,
    cindy: &Cinderella,
    queries: &[Synopsis],
) -> (u64, u64) {
    let universe = table.universe();
    let size_model = cindy.config().size_model;
    let mut entities = Vec::with_capacity(table.entity_count());
    for seg in table.segment_ids() {
        table
            .scan(seg, |e| {
                entities.push((e.synopsis(universe), size_model.entity_size(e)));
            })
            .expect("segment ids are live");
    }
    let partitions: Vec<(Synopsis, u64)> = cindy
        .catalog()
        .pruning_view()
        .map(|(_, syn, size)| (syn.clone(), size))
        .collect();
    efficiency_counters(entities, &partitions, queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(16, bits.iter().copied())
    }

    #[test]
    fn perfect_partitioning_scores_one() {
        // Two disjoint groups, two partitions matching them exactly, one
        // query per group.
        let entities = vec![(syn(&[0, 1]), 2u64), (syn(&[0, 1]), 2), (syn(&[5]), 1)];
        let partitions = vec![(syn(&[0, 1]), 4u64), (syn(&[5]), 1)];
        let queries = vec![syn(&[0]), syn(&[5])];
        let eff = efficiency_of(entities, &partitions, &queries);
        assert!((eff - 1.0).abs() < 1e-12);
    }

    #[test]
    fn universal_table_reads_everything() {
        // One partition holding everything: the query reads 5 cells but only
        // 4 are relevant.
        let entities = vec![(syn(&[0, 1]), 2u64), (syn(&[0, 1]), 2), (syn(&[5]), 1)];
        let partitions = vec![(syn(&[0, 1, 5]), 5u64)];
        let queries = vec![syn(&[0])];
        let eff = efficiency_of(entities, &partitions, &queries);
        assert!((eff - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_workload_is_vacuously_efficient() {
        let entities = vec![(syn(&[0]), 1u64)];
        let partitions = vec![(syn(&[0]), 1u64)];
        let queries = vec![syn(&[9])];
        assert_eq!(efficiency_of(entities, &partitions, &queries), 1.0);
        assert_eq!(efficiency_of(Vec::new(), &[], &[]), 1.0);
    }

    #[test]
    fn end_to_end_partitioned_beats_universal() {
        use crate::{Capacity, Config};
        use cind_model::{AttrId, Entity, EntityId, Value};
        use cind_storage::UniversalTable;

        let mut t = UniversalTable::new(256);
        let mut c = Cinderella::new(Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(100),
            ..Config::default()
        });
        // Two shapes.
        for i in 0..20u64 {
            let names: &[&str] = if i % 2 == 0 { &["a", "b"] } else { &["x", "y"] };
            let attrs: Vec<(AttrId, Value)> = names
                .iter()
                .map(|n| (t.catalog_mut().intern(n), Value::Int(1)))
                .collect();
            c.insert(&mut t, Entity::new(EntityId(i), attrs).unwrap()).unwrap();
        }
        let q = Synopsis::from_attrs(t.universe(), [t.catalog().lookup("a").unwrap()]);
        let eff = efficiency(&t, &c, std::slice::from_ref(&q));
        assert!((eff - 1.0).abs() < 1e-12, "separated shapes give efficiency 1, got {eff}");
    }
}
