//! Packed synopsis arena and attribute-presence bitmaps — the storage the
//! rating and planning hot paths sweep.
//!
//! Algorithm 1 rates the incoming entity against *every* partition, and the
//! planner tests *every* partition for `|p ∧ q| = 0`. With per-partition
//! heap-allocated synopses both loops pointer-chase one allocation per
//! partition. This module packs all rating synopses into one contiguous
//! `u64` arena (a fixed-stride row per partition, plus parallel `SegmentId`
//! and `SIZE(p)` columns), so the scan is a linear walk over adjacent cache
//! lines, and maintains per-attribute *partition-presence* bitmaps (one bit
//! per arena slot) so the candidate set of an entity — and the survivor set
//! of a query — is the OR of `|attrs|` bitmaps: `O(|q| · P/64)` words
//! instead of `O(P · U/64)`.
//!
//! Both structures are maintained exactly on insert, delete, split, and
//! merge by [`PartitionCatalog`](crate::PartitionCatalog); rows and presence
//! columns clear when a partition is removed, so there are no stale entries
//! to validate at read time.

use cind_bitset::{BitSetOps, FixedBitSet};
use cind_storage::SegmentId;

use crate::validate::InvariantViolation;

/// Contiguous storage for partition rating synopses.
///
/// Each live partition owns one *slot*: a `stride`-word row in the packed
/// `words` buffer plus entries in the parallel `segs` / `sizes` columns.
/// Slots of removed partitions are zeroed and recycled through a free list,
/// so the arena stays dense under churn. The stride grows (rows re-laid out)
/// when the attribute universe outgrows the current row width.
#[derive(Clone, Debug, Default)]
pub struct SynopsisArena {
    words: Vec<u64>,
    stride: usize,
    segs: Vec<SegmentId>,
    sizes: Vec<u64>,
    live: Vec<bool>,
    free: Vec<usize>,
}

const WORD_BITS: usize = u64::BITS as usize;

impl SynopsisArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slot rows (live and recycled).
    pub fn slots(&self) -> usize {
        self.segs.len()
    }

    /// Words per slot row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether `slot` currently backs a partition.
    pub fn is_live(&self, slot: usize) -> bool {
        self.live[slot]
    }

    /// The segment bound to `slot`.
    pub fn seg(&self, slot: usize) -> SegmentId {
        self.segs[slot]
    }

    /// `SIZE(p)` of the partition at `slot`.
    pub fn size(&self, slot: usize) -> u64 {
        self.sizes[slot]
    }

    /// Updates `SIZE(p)` of the partition at `slot`.
    pub fn set_size(&mut self, slot: usize, size: u64) {
        self.sizes[slot] = size;
    }

    /// The packed synopsis row of `slot`.
    pub fn row(&self, slot: usize) -> &[u64] {
        &self.words[slot * self.stride..(slot + 1) * self.stride]
    }

    /// Allocates a zeroed slot for `seg`, recycling a freed row if one
    /// exists.
    pub fn alloc(&mut self, seg: SegmentId) -> usize {
        if let Some(slot) = self.free.pop() {
            debug_assert!(!self.live[slot]);
            debug_assert!(self.row(slot).iter().all(|w| *w == 0));
            self.segs[slot] = seg;
            self.sizes[slot] = 0;
            self.live[slot] = true;
            slot
        } else {
            let slot = self.segs.len();
            self.words.resize(self.words.len() + self.stride, 0);
            self.segs.push(seg);
            self.sizes.push(0);
            self.live.push(true);
            slot
        }
    }

    /// Releases `slot`: zeroes the row and recycles it.
    pub fn release(&mut self, slot: usize) {
        assert!(self.live[slot], "releasing a dead slot");
        let stride = self.stride;
        self.words[slot * stride..(slot + 1) * stride].fill(0);
        self.sizes[slot] = 0;
        self.live[slot] = false;
        self.free.push(slot);
    }

    /// Sets `bit` in the row of `slot`, widening the stride if the
    /// attribute universe outgrew the current row width.
    pub fn insert_bit(&mut self, slot: usize, bit: u32) {
        let word = bit as usize / WORD_BITS;
        if word >= self.stride {
            self.grow_stride((word + 1).next_power_of_two());
        }
        self.words[slot * self.stride + word] |= 1u64 << (bit as usize % WORD_BITS);
    }

    /// Clears `bit` in the row of `slot`.
    pub fn remove_bit(&mut self, slot: usize, bit: u32) {
        let word = bit as usize / WORD_BITS;
        if word < self.stride {
            self.words[slot * self.stride + word] &= !(1u64 << (bit as usize % WORD_BITS));
        }
    }

    fn grow_stride(&mut self, new_stride: usize) {
        debug_assert!(new_stride > self.stride);
        let mut words = vec![0u64; new_stride * self.segs.len()];
        for slot in 0..self.segs.len() {
            let src = &self.words[slot * self.stride..(slot + 1) * self.stride];
            words[slot * new_stride..slot * new_stride + self.stride].copy_from_slice(src);
        }
        self.words = words;
        self.stride = new_stride;
        #[cfg(debug_assertions)]
        {
            let violations = self.validate();
            assert!(
                violations.is_empty(),
                "arena invariants violated after stride relayout:\n{}",
                crate::validate::render(&violations)
            );
        }
    }

    /// Cross-checks the arena's structural invariants, returning every
    /// violation found: parallel-column lengths, packed-buffer sizing,
    /// free-list integrity (in-range, duplicate-free, dead, covering every
    /// dead slot), and the zeroed-row / zero-size guarantee for recycled
    /// slots that [`alloc`](Self::alloc) relies on.
    pub fn validate(&self) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let mut v = |detail: String| out.push(InvariantViolation::new("arena", detail));
        let slots = self.segs.len();
        if self.sizes.len() != slots || self.live.len() != slots {
            v(format!(
                "parallel columns disagree: {} segs, {} sizes, {} live flags",
                slots,
                self.sizes.len(),
                self.live.len()
            ));
            return out; // Slot walks below would index out of bounds.
        }
        if self.words.len() != self.stride * slots {
            v(format!(
                "packed buffer holds {} words, want stride {} × {} slots = {}",
                self.words.len(),
                self.stride,
                slots,
                self.stride * slots
            ));
            return out;
        }
        let mut on_free = vec![false; slots];
        for &slot in &self.free {
            if slot >= slots {
                v(format!("free list entry {slot} out of range ({slots} slots)"));
                continue;
            }
            if on_free[slot] {
                v(format!("slot {slot} appears twice on the free list"));
            }
            on_free[slot] = true;
            if self.live[slot] {
                v(format!("slot {slot} is on the free list but marked live"));
            }
        }
        for (slot, &freed) in on_free.iter().enumerate().take(slots) {
            if !self.live[slot] {
                if !freed {
                    v(format!("dead slot {slot} is missing from the free list"));
                }
                if self.row(slot).iter().any(|w| *w != 0) {
                    v(format!("dead slot {slot} has a non-zero synopsis row"));
                }
                if self.sizes[slot] != 0 {
                    v(format!(
                        "dead slot {slot} has non-zero size {}",
                        self.sizes[slot]
                    ));
                }
            }
        }
        out
    }

    /// Iterates the live slots, ascending by slot index (NOT by segment —
    /// callers that need the catalog's segment-order tie-break compare
    /// segment ids explicitly).
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(slot, &alive)| alive.then_some(slot))
    }
}

/// Per-attribute partition-presence bitmaps: `rows[attr]` has bit `slot`
/// set iff the partition in `slot` currently carries `attr` in the indexed
/// synopsis space. Maintained exactly (set on refcount 0→1, cleared on
/// 1→0 and on partition removal).
#[derive(Clone, Debug, Default)]
pub struct PresenceIndex {
    rows: Vec<FixedBitSet>,
}

impl PresenceIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot bitmap of `attr`, if any partition ever carried it.
    pub fn row(&self, attr: u32) -> Option<&FixedBitSet> {
        self.rows.get(attr as usize)
    }

    /// Marks `slot` as carrying `attr`.
    pub fn set(&mut self, attr: u32, slot: usize) {
        let idx = attr as usize;
        if self.rows.len() <= idx {
            self.rows.resize_with(idx + 1, FixedBitSet::default);
        }
        let row = &mut self.rows[idx];
        row.grow(slot + 1);
        row.insert(slot as u32);
    }

    /// Clears `slot` from the bitmap of `attr`.
    pub fn clear(&mut self, attr: u32, slot: usize) {
        if let Some(row) = self.rows.get_mut(attr as usize) {
            row.remove(slot as u32);
        }
    }

    /// ORs the bitmaps of `attrs` into `acc` — the candidate/survivor set
    /// computation. `acc` grows as needed.
    pub fn union_rows_into(&self, attrs: impl Iterator<Item = u32>, acc: &mut FixedBitSet) {
        for attr in attrs {
            if let Some(row) = self.rows.get(attr as usize) {
                acc.union_with(row);
            }
        }
    }

    /// Number of attribute rows ever materialised (rows of attributes no
    /// partition carries any more stay allocated, with all bits clear).
    pub fn attrs(&self) -> usize {
        self.rows.len()
    }

    /// Heap bytes resident in the bitmaps — the exact-index side of the
    /// tiered-index memory comparison.
    pub fn resident_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|row| row.blocks().len() * 8 + std::mem::size_of::<FixedBitSet>())
            .sum()
    }

    /// Cross-checks the index against the arena it mirrors: every set bit
    /// must reference an in-range, live slot — presence of a dead or
    /// out-of-range slot would let the candidate/survivor OR resurrect a
    /// removed partition. Returns every violation found.
    pub fn validate(&self, arena: &SynopsisArena) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        for (attr, row) in self.rows.iter().enumerate() {
            for slot in row.iter_ones() {
                let slot = slot as usize;
                if slot >= arena.slots() {
                    out.push(InvariantViolation::new(
                        "presence",
                        format!(
                            "attr {attr}: bit for slot {slot} out of range ({} slots)",
                            arena.slots()
                        ),
                    ));
                } else if !arena.is_live(slot) {
                    out.push(InvariantViolation::new(
                        "presence",
                        format!("attr {attr}: bit set for dead slot {slot}"),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_slots() {
        let mut a = SynopsisArena::new();
        let s0 = a.alloc(SegmentId(0));
        let s1 = a.alloc(SegmentId(1));
        assert_eq!((s0, s1), (0, 1));
        a.insert_bit(s0, 5);
        a.set_size(s0, 7);
        a.release(s0);
        // The recycled row comes back zeroed.
        let s2 = a.alloc(SegmentId(2));
        assert_eq!(s2, s0);
        assert!(a.row(s2).iter().all(|w| *w == 0));
        assert_eq!(a.size(s2), 0);
        assert_eq!(a.seg(s2), SegmentId(2));
        assert_eq!(a.live_slots().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn stride_grows_preserving_rows() {
        let mut a = SynopsisArena::new();
        let s0 = a.alloc(SegmentId(0));
        let s1 = a.alloc(SegmentId(1));
        a.insert_bit(s0, 3);
        a.insert_bit(s1, 63);
        assert_eq!(a.stride(), 1);
        a.insert_bit(s1, 200); // word 3 → stride rounds up to 4
        assert_eq!(a.stride(), 4);
        assert_eq!(a.row(s0)[0], 1 << 3);
        assert_eq!(a.row(s1)[0], 1 << 63);
        assert_eq!(a.row(s1)[3], 1 << (200 - 192));
        a.remove_bit(s1, 200);
        assert_eq!(a.row(s1)[3], 0);
        // Removing a bit beyond the stride is a no-op, not a panic.
        a.remove_bit(s0, 100_000);
    }

    /// A healthy arena under churn validates clean.
    #[test]
    fn validate_accepts_churned_arena() {
        let mut a = SynopsisArena::new();
        for i in 0..6u32 {
            let s = a.alloc(SegmentId(i));
            a.insert_bit(s, i * 13);
            a.set_size(s, u64::from(i));
        }
        a.release(1);
        a.release(3);
        let _ = a.alloc(SegmentId(9));
        assert!(a.validate().is_empty(), "{:?}", a.validate());
    }

    /// Each seeded corruption is reported precisely — by the right check,
    /// naming the right slot — and never panics the validator.
    #[test]
    fn validate_reports_each_seeded_corruption() {
        let corrupted = |f: fn(&mut SynopsisArena), needle: &str| {
            let mut a = SynopsisArena::new();
            let s0 = a.alloc(SegmentId(0));
            let _s1 = a.alloc(SegmentId(1));
            a.insert_bit(s0, 3);
            a.release(s0);
            f(&mut a);
            let report = crate::validate::render(&a.validate());
            assert!(report.contains(needle), "wanted {needle:?} in:\n{report}");
        };
        corrupted(|a| a.free.push(99), "free list entry 99 out of range");
        corrupted(|a| a.free.push(0), "slot 0 appears twice on the free list");
        corrupted(|a| a.free.push(1), "slot 1 is on the free list but marked live");
        corrupted(|a| a.free.clear(), "dead slot 0 is missing from the free list");
        corrupted(|a| a.words[0] = 0b100, "dead slot 0 has a non-zero synopsis row");
        corrupted(|a| a.sizes[0] = 7, "dead slot 0 has non-zero size 7");
        corrupted(|a| a.live.pop().map_or((), |_| ()), "parallel columns disagree");
        corrupted(|a| a.words.push(0), "packed buffer holds 3 words");
    }

    /// Presence bits pointing at dead or out-of-range slots are reported
    /// per attribute.
    #[test]
    fn presence_validate_reports_stale_bits() {
        let mut a = SynopsisArena::new();
        let s0 = a.alloc(SegmentId(0));
        let _s1 = a.alloc(SegmentId(1));
        let mut p = PresenceIndex::new();
        p.set(4, s0);
        assert!(p.validate(&a).is_empty());
        a.release(s0);
        let report = crate::validate::render(&p.validate(&a));
        assert!(report.contains("attr 4: bit set for dead slot 0"), "{report}");
        let mut p = PresenceIndex::new();
        p.set(2, 9);
        let report = crate::validate::render(&p.validate(&a));
        assert!(report.contains("attr 2: bit for slot 9 out of range"), "{report}");
    }

    #[test]
    fn presence_rows_or_together() {
        let mut p = PresenceIndex::new();
        p.set(2, 0);
        p.set(2, 5);
        p.set(7, 3);
        let mut acc = FixedBitSet::default();
        p.union_rows_into([2u32, 7, 9].into_iter(), &mut acc);
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![0, 3, 5]);
        p.clear(2, 5);
        let mut acc = FixedBitSet::default();
        p.union_rows_into([2u32].into_iter(), &mut acc);
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![0]);
        // Clearing an attribute no partition ever carried is fine.
        p.clear(100, 0);
    }
}
