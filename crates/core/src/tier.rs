//! Tiered approximate pruning metadata — the `IndexTier::Tiered` storage
//! behind the candidate/survivor index.
//!
//! The exact [`PresenceIndex`](crate::PresenceIndex) keeps one partition
//! bitmap per attribute: O(attrs × partitions) bits, the scaling ceiling a
//! million-partition catalog hits first. This module replaces those bitmaps
//! with three layers:
//!
//! * **Blocked Bloom filter rows per partition group.** Slots are grouped
//!   64 to a group (one `u64` mask word). Each group owns a power-of-two
//!   array of 64-bit blocks; an attribute hashes to two blocks, and its
//!   candidate mask for the group is the AND of the two. Setting
//!   `(attr, slot)` ORs the slot's bit into *both* probed blocks, so the
//!   AND always covers every slot genuinely carrying the attribute —
//!   **no false negatives, by construction**. Collisions only ever *add*
//!   candidate bits (false positives cost a rating/scan, never an answer).
//! * **A group-level union synopsis.** Each group keeps a 1024-bit Bloom
//!   summary (two probe bits per key) over the attributes any member
//!   carries; a query attribute with either summary bit clear skips the
//!   whole group without touching its blocks — the hierarchical miss path,
//!   and the layer that keeps the plan sweep out of the big flat block
//!   buffer on foreign groups.
//! * **A bounded exact hot tier.** Up to `hot_capacity` slots are promoted
//!   to exact per-attribute bitmaps (positions, not slots, so the tier's
//!   memory is bounded by the cap, not the catalog). Promotion/demotion is
//!   driven by per-slot op-count heat, decayed by halving every
//!   `epoch_ops` operations — never wall clock (CIND-A005), so a run is a
//!   pure function of its operation sequence.
//!
//! Deletes never clear shared filter blocks (a block bit may be backed by
//! several (attr, slot) pairs); they only bump a per-group staleness
//! counter. When staleness or load crosses its threshold the *catalog*
//! rebuilds the group from the exact refcount state it already owns — the
//! same path that doubles a saturated group's block array (`grow`), which
//! therefore preserves membership exactly (property-tested).

use std::collections::BTreeMap;

use cind_bitset::{BitSetOps, FixedBitSet};
use cind_model::Synopsis;
use cind_storage::SegmentId;

use crate::arena::PresenceIndex;
use crate::validate::InvariantViolation;

/// Slots per filter group — one `u64` mask word.
pub const SLOTS_PER_GROUP: usize = 64;

/// Summary words per group (4096-bit attribute Bloom filter, two probe
/// bits per key). The irregular long-tail attributes give a 64-slot
/// group on the order of a hundred distinct keys; at 4096 bits the
/// summary stays a few percent full, so the AND of a key's two planes
/// admits a foreign group with probability well under one percent — and
/// the block probes (three random loads into a multi-megabyte flat
/// buffer) are paid only for groups that survive it.
const SUMMARY_WORDS: usize = 64;

/// Distinct `(attr, slot)` insertions per block before a group's block
/// array doubles. The equilibrium filter density is what this buys:
/// growth stops when a block carries at most this many keys, i.e. at
/// ≥ 64/GROW_LOAD filter bits per key — 16 at the current setting, which
/// with three probes prices the per-slot false-positive rate well under
/// one percent (BENCH_PR10 measures it).
const GROW_LOAD: u32 = 4;

/// Clear events tolerated before a group is rebuilt from exact state.
const REBUILD_STALE: u32 = 64;

/// Tuning knobs of the tiered index. The defaults target the bench's
/// group-structured catalogs; the `tier` bench sweeps `blocks_per_group`
/// to chart false-positive rate against filter bits per key.
#[derive(Clone, Copy, Debug)]
pub struct TierParams {
    /// Initial blocks (64-bit words) per 64-slot group; rounded up to a
    /// power of two, minimum 2.
    pub blocks_per_group: usize,
    /// Ceiling for a group's block array; growth stops here.
    pub max_blocks_per_group: usize,
    /// Maximum slots in the exact hot tier.
    pub hot_capacity: usize,
    /// Operations per heat epoch: heat counters halve after this many ops.
    pub epoch_ops: u64,
    /// Heat at which a slot is promoted into the hot tier.
    pub promote_heat: u32,
}

impl Default for TierParams {
    fn default() -> Self {
        Self {
            blocks_per_group: 8,
            max_blocks_per_group: 128,
            hot_capacity: 256,
            epoch_ops: 1024,
            promote_heat: 4,
        }
    }
}

/// Which synopsis space a tier operation addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Space {
    /// Rating space (insert-scan candidates).
    Rating,
    /// Attribute space (query-survivor planning).
    Attr,
}

/// splitmix64 finalizer — the deterministic hash behind block probes and
/// summary bits.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The three block probes of key hash `h` in an `nblocks`-block group.
/// `nblocks` must be a power of two (≤ 128, so 7 bits per probe; the
/// shifts keep the three index draws disjoint).
#[inline]
fn probes(h: u64, nblocks: usize) -> (usize, usize, usize) {
    (
        h as usize & (nblocks - 1),
        (h >> 21) as usize & (nblocks - 1),
        (h >> 42) as usize & (nblocks - 1),
    )
}

/// The two summary bit indices of key hash `h` — 12-bit fields disjoint
/// from the block probes' so summary and filter verdicts stay
/// independent.
#[inline]
fn summary_indices(h: u64) -> (usize, usize) {
    (
        (h >> 28) as usize & (SUMMARY_WORDS * 64 - 1),
        (h >> 49) as usize & (SUMMARY_WORDS * 64 - 1),
    )
}

/// One synopsis space's filter rows: a [`GroupFilter`] per 64-slot group.
#[derive(Clone, Debug)]
pub struct FilterBank {
    /// Every group's block words, packed back to back; `offs[g]` locates a
    /// group's power-of-two block array. One flat allocation, so the plan
    /// path's group sweep is a linear walk, not a pointer chase per group.
    words: Vec<u64>,
    /// Per-group (offset into `words`, log₂ block count).
    offs: Vec<(u32, u8)>,
    /// [`SUMMARY_WORDS`] union-summary words per group, contiguous — the
    /// hierarchical layer: a clear summary bit skips the whole group.
    /// Group-major; the rebuild path reads a group's bits here to clear
    /// the matching plane bits.
    summaries: Vec<u64>,
    /// Plane-major transpose of `summaries`: for each of the 4096 summary
    /// bits, a bitmap over *groups* (`plane_stride` words per bit). The
    /// plan path ANDs a key's two planes to find its candidate groups in
    /// a few sequential words instead of sweeping every group's summary —
    /// the transposition the exact presence index applies to slots, one
    /// level up the hierarchy.
    planes: Vec<u64>,
    /// Words per plane: `ceil(groups / 64)`, grown geometrically.
    plane_stride: usize,
    /// `(attr, slot)` set calls per group since its last rebuild — the
    /// grow trigger.
    load: Vec<u32>,
    /// Clear events per group since its last rebuild — the rebuild
    /// trigger.
    stale: Vec<u32>,
    /// Words stranded by grow-relocations (a grown group moves to the end
    /// of `words`); compacted once past half the buffer.
    waste: usize,
    init_blocks: usize,
    max_blocks: usize,
}

impl FilterBank {
    fn new(params: &TierParams) -> Self {
        let init = params.blocks_per_group.next_power_of_two().max(2);
        Self {
            words: Vec::new(),
            offs: Vec::new(),
            summaries: Vec::new(),
            planes: Vec::new(),
            plane_stride: 0,
            load: Vec::new(),
            stale: Vec::new(),
            waste: 0,
            init_blocks: init,
            max_blocks: params.max_blocks_per_group.next_power_of_two().max(init),
        }
    }

    /// Number of materialised groups.
    pub fn groups(&self) -> usize {
        self.offs.len()
    }

    /// Block words of group `g` (tests chart growth through this).
    pub fn group_blocks(&self, g: usize) -> usize {
        1usize << self.offs[g].1
    }

    fn ensure_group(&mut self, slot: usize) {
        let g = slot / SLOTS_PER_GROUP;
        while self.offs.len() <= g {
            let lg = u8::try_from(self.init_blocks.trailing_zeros()).unwrap_or(0);
            self.offs.push((self.words.len() as u32, lg));
            self.words.resize(self.words.len() + self.init_blocks, 0);
            self.summaries.resize(self.summaries.len() + SUMMARY_WORDS, 0);
            self.load.push(0);
            self.stale.push(0);
        }
        let needed = self.offs.len().div_ceil(64);
        if needed > self.plane_stride {
            self.restride_planes(needed.max(self.plane_stride * 2));
        }
    }

    /// Re-lays the plane-major summary for a wider group universe.
    fn restride_planes(&mut self, stride: usize) {
        let mut planes = vec![0u64; SUMMARY_WORDS * 64 * stride];
        for s in 0..SUMMARY_WORDS * 64 {
            let (old, new) = (s * self.plane_stride, s * stride);
            planes[new..new + self.plane_stride]
                .copy_from_slice(&self.planes[old..old + self.plane_stride]);
        }
        self.planes = planes;
        self.plane_stride = stride;
    }

    /// The group bitmap of summary bit `s` (`plane_stride` words).
    #[inline]
    fn plane(&self, s: usize) -> &[u64] {
        &self.planes[s * self.plane_stride..(s + 1) * self.plane_stride]
    }

    /// Records `(attr, slot)`; returns `true` when the group's block array
    /// is saturated and wants a grow-rebuild.
    fn set(&mut self, attr: u32, slot: usize) -> bool {
        self.ensure_group(slot);
        let g = slot / SLOTS_PER_GROUP;
        let (off, lg) = self.offs[g];
        let (off, nblocks) = (off as usize, 1usize << lg);
        let h = mix(u64::from(attr));
        let (p1, p2, p3) = probes(h, nblocks);
        let (s1, s2) = summary_indices(h);
        let bit = 1u64 << (slot % SLOTS_PER_GROUP);
        self.words[off + p1] |= bit;
        self.words[off + p2] |= bit;
        self.words[off + p3] |= bit;
        self.summaries[g * SUMMARY_WORDS + s1 / 64] |= 1u64 << (s1 % 64);
        self.summaries[g * SUMMARY_WORDS + s2 / 64] |= 1u64 << (s2 % 64);
        let (gw, gb) = (g / 64, 1u64 << (g % 64));
        self.planes[s1 * self.plane_stride + gw] |= gb;
        self.planes[s2 * self.plane_stride + gw] |= gb;
        self.load[g] = self.load[g].saturating_add(1);
        self.load[g] > GROW_LOAD * nblocks as u32 && nblocks < self.max_blocks
    }

    /// Records a clear affecting `slot`'s group; returns `true` when the
    /// group's staleness crossed the rebuild threshold.
    fn note_stale(&mut self, slot: usize) -> bool {
        let g = slot / SLOTS_PER_GROUP;
        let Some(s) = self.stale.get_mut(g) else { return false };
        *s = s.saturating_add(1);
        *s == REBUILD_STALE
    }

    /// The candidate mask of `attr` over group `g` (64 slot bits).
    fn mask(&self, g: usize, attr: u32) -> u64 {
        if g >= self.offs.len() {
            return 0;
        }
        self.mask_h(g, mix(u64::from(attr)))
    }

    /// [`FilterBank::mask`] with the key hash precomputed — the plan path
    /// hashes each query attribute once, not once per group. The group
    /// summary is the fast path: a clear summary bit skips the block
    /// probes (and, for queries, the whole group).
    #[inline]
    fn mask_h(&self, g: usize, h: u64) -> u64 {
        let (s1, s2) = summary_indices(h);
        let base = g * SUMMARY_WORDS;
        if self.summaries[base + s1 / 64] & (1u64 << (s1 % 64)) == 0
            || self.summaries[base + s2 / 64] & (1u64 << (s2 % 64)) == 0
        {
            return 0;
        }
        self.block_word_h(g, h)
    }

    /// The AND-of-probes candidate word of key hash `h` over group `g`,
    /// with no summary consultation — the plan path's plane sweep has
    /// already certified the summary bits.
    #[inline]
    fn block_word_h(&self, g: usize, h: u64) -> u64 {
        let (off, lg) = self.offs[g];
        let (off, nblocks) = (off as usize, 1usize << lg);
        let (p1, p2, p3) = probes(h, nblocks);
        // Two loads, then bail: on a summary false hit the partial AND is
        // usually already zero, and the third block load is the one most
        // likely to miss cache.
        let w = self.words[off + p1] & self.words[off + p2];
        if w == 0 {
            return 0;
        }
        w & self.words[off + p3]
    }

    /// Whether the filter admits `(attr, slot)` as a candidate. True for
    /// every pair ever `set` since the group's last rebuild from exact
    /// state — the superset guarantee validate leans on.
    pub fn contains(&self, attr: u32, slot: usize) -> bool {
        self.mask(slot / SLOTS_PER_GROUP, attr) & (1u64 << (slot % SLOTS_PER_GROUP)) != 0
    }

    /// Rebuilds group `g` from exact per-slot bit lists, doubling the block
    /// array when `grow` is set. Resets load and staleness. A grown group
    /// relocates to the end of the flat buffer; the stranded words are
    /// compacted away once they exceed half the buffer.
    fn rebuild_group(&mut self, g: usize, grow: bool, members: &[(usize, Vec<u32>)]) {
        if g >= self.offs.len() {
            return;
        }
        let (off, lg) = self.offs[g];
        let (off, nblocks) = (off as usize, 1usize << lg);
        if grow && nblocks < self.max_blocks {
            self.waste += nblocks;
            let lg = lg + 1;
            self.offs[g] = (self.words.len() as u32, lg);
            self.words.resize(self.words.len() + (1usize << lg), 0);
        } else {
            self.words[off..off + nblocks].fill(0);
        }
        // Clear this group's plane bits before zeroing its group-major
        // summary — the summary's set bits are the only record of which
        // planes name the group.
        let (gw, gb) = (g / 64, 1u64 << (g % 64));
        for sw in 0..SUMMARY_WORDS {
            let mut word = self.summaries[g * SUMMARY_WORDS + sw];
            while word != 0 {
                let s = sw * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                self.planes[s * self.plane_stride + gw] &= !gb;
            }
        }
        self.summaries[g * SUMMARY_WORDS..(g + 1) * SUMMARY_WORDS].fill(0);
        self.load[g] = 0;
        for (slot, bits) in members {
            debug_assert_eq!(slot / SLOTS_PER_GROUP, g);
            for &bit in bits {
                // `set` re-counts load during the rebuild; that is the
                // correct post-rebuild load (distinct live pairs, roughly).
                self.set(bit, *slot);
            }
        }
        self.stale[g] = 0;
        if self.waste * 2 > self.words.len() {
            self.compact();
        }
    }

    /// Re-packs every group's block array in group order, reclaiming the
    /// words stranded by grow-relocations.
    fn compact(&mut self) {
        let mut packed = Vec::with_capacity(self.words.len() - self.waste);
        for (off, lg) in &mut self.offs {
            let (o, n) = (*off as usize, 1usize << *lg);
            *off = packed.len() as u32;
            packed.extend_from_slice(&self.words[o..o + n]);
        }
        self.words = packed;
        self.waste = 0;
    }

    /// Heap bytes resident in this bank (stranded grow words included —
    /// they are real residency until the next compaction).
    pub fn resident_bytes(&self) -> usize {
        (self.words.len() + self.summaries.len() + self.planes.len()) * 8
            + self.offs.len() * 16
    }
}

/// Deferred maintenance the catalog services with exact state in hand.
#[derive(Debug, Default)]
pub(crate) struct PendingWork {
    /// Groups to rebuild: `(space, group, grow)`.
    pub rebuilds: Vec<(Space, usize, bool)>,
    /// Slots whose heat crossed the promotion bar.
    pub promotes: Vec<usize>,
    /// Hot slots whose heat decayed to zero.
    pub demotes: Vec<usize>,
}

impl PendingWork {
    fn is_empty(&self) -> bool {
        self.rebuilds.is_empty() && self.promotes.is_empty() && self.demotes.is_empty()
    }
}

/// The tiered index: filter banks for both synopsis spaces, the live-slot
/// mask, the hot tier, and the op-count heat clock.
#[derive(Debug)]
pub struct TieredIndex {
    params: TierParams,
    rating: FilterBank,
    attr: FilterBank,
    /// Live-slot mask, one word per group — approximate candidates are
    /// ANDed with it so a stale filter bit can never resurrect a dead slot.
    live_words: Vec<u64>,
    /// Hot-slot mask, one word per group (parallel to `live_words`).
    hot_words: Vec<u64>,
    /// Hot position → slot.
    hot_slots: Vec<usize>,
    /// Slot → hot position.
    hot_pos: BTreeMap<usize, usize>,
    /// Exact attr → hot-position bitmaps, rating space.
    hot_rating: PresenceIndex,
    /// Exact attr → hot-position bitmaps, attribute space.
    hot_attr: PresenceIndex,
    /// Per-slot op-count heat, halved every epoch.
    heat: Vec<u32>,
    ops_in_epoch: u64,
    epochs: u64,
    pending: PendingWork,
}

impl Clone for TieredIndex {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            rating: self.rating.clone(),
            attr: self.attr.clone(),
            live_words: self.live_words.clone(),
            hot_words: self.hot_words.clone(),
            hot_slots: self.hot_slots.clone(),
            hot_pos: self.hot_pos.clone(),
            hot_rating: self.hot_rating.clone(),
            hot_attr: self.hot_attr.clone(),
            heat: self.heat.clone(),
            ops_in_epoch: self.ops_in_epoch,
            epochs: self.epochs,
            pending: PendingWork {
                rebuilds: self.pending.rebuilds.clone(),
                promotes: self.pending.promotes.clone(),
                demotes: self.pending.demotes.clone(),
            },
        }
    }
}

impl TieredIndex {
    /// An empty tiered index with the given knobs.
    pub fn new(params: TierParams) -> Self {
        Self {
            rating: FilterBank::new(&params),
            attr: FilterBank::new(&params),
            params,
            live_words: Vec::new(),
            hot_words: Vec::new(),
            hot_slots: Vec::new(),
            hot_pos: BTreeMap::new(),
            hot_rating: PresenceIndex::new(),
            hot_attr: PresenceIndex::new(),
            heat: Vec::new(),
            ops_in_epoch: 0,
            epochs: 0,
            pending: PendingWork::default(),
        }
    }

    /// The configured knobs.
    pub fn params(&self) -> &TierParams {
        &self.params
    }

    fn bank(&self, space: Space) -> &FilterBank {
        match space {
            Space::Rating => &self.rating,
            Space::Attr => &self.attr,
        }
    }

    fn bank_mut(&mut self, space: Space) -> &mut FilterBank {
        match space {
            Space::Rating => &mut self.rating,
            Space::Attr => &mut self.attr,
        }
    }

    fn hot_rows(&self, space: Space) -> &PresenceIndex {
        match space {
            Space::Rating => &self.hot_rating,
            Space::Attr => &self.hot_attr,
        }
    }

    /// Registers a freshly allocated arena slot.
    pub(crate) fn on_slot_alloc(&mut self, slot: usize) {
        let g = slot / SLOTS_PER_GROUP;
        if self.live_words.len() <= g {
            self.live_words.resize(g + 1, 0);
            self.hot_words.resize(g + 1, 0);
        }
        self.live_words[g] |= 1u64 << (slot % SLOTS_PER_GROUP);
        if self.heat.len() <= slot {
            self.heat.resize(slot + 1, 0);
        }
        self.heat[slot] = 0;
        self.rating.ensure_group(slot);
        self.attr.ensure_group(slot);
    }

    /// Unregisters a released slot: drops it from the live mask and the hot
    /// tier, and charges its residue to both groups' staleness.
    pub(crate) fn on_slot_release(&mut self, slot: usize) {
        if let Some(w) = self.live_words.get_mut(slot / SLOTS_PER_GROUP) {
            *w &= !(1u64 << (slot % SLOTS_PER_GROUP));
        }
        if self.hot_pos.contains_key(&slot) {
            self.demote_now(slot);
        }
        if let Some(h) = self.heat.get_mut(slot) {
            *h = 0;
        }
        for space in [Space::Rating, Space::Attr] {
            if self.bank_mut(space).note_stale(slot) {
                self.queue_rebuild(space, slot / SLOTS_PER_GROUP, false);
            }
        }
        self.pending.promotes.retain(|&s| s != slot);
        self.pending.demotes.retain(|&s| s != slot);
    }

    /// Records a refcount 0→1 transition for `(attr, slot)`.
    pub(crate) fn set(&mut self, space: Space, attr: u32, slot: usize) {
        if self.bank_mut(space).set(attr, slot) {
            self.queue_rebuild(space, slot / SLOTS_PER_GROUP, true);
        }
        if let Some(&pos) = self.hot_pos.get(&slot) {
            match space {
                Space::Rating => self.hot_rating.set(attr, pos),
                Space::Attr => self.hot_attr.set(attr, pos),
            }
        }
    }

    /// Records a refcount 1→0 transition for `(attr, slot)`. Filter blocks
    /// are shared, so only staleness is charged; the hot tier clears
    /// exactly.
    pub(crate) fn clear(&mut self, space: Space, attr: u32, slot: usize) {
        if self.bank_mut(space).note_stale(slot) {
            self.queue_rebuild(space, slot / SLOTS_PER_GROUP, false);
        }
        if let Some(&pos) = self.hot_pos.get(&slot) {
            match space {
                Space::Rating => self.hot_rating.clear(attr, pos),
                Space::Attr => self.hot_attr.clear(attr, pos),
            }
        }
    }

    fn queue_rebuild(&mut self, space: Space, group: usize, grow: bool) {
        if let Some(entry) = self
            .pending
            .rebuilds
            .iter_mut()
            .find(|(s, g, _)| *s == space && *g == group)
        {
            entry.2 |= grow;
        } else {
            self.pending.rebuilds.push((space, group, grow));
        }
    }

    /// Advances the op-count heat clock by one operation touching `slot`.
    /// Epoch close halves every heat counter and queues cold hot-tier
    /// slots for demotion — deterministic in the op sequence.
    pub(crate) fn note_op(&mut self, slot: usize) {
        self.note_heat(slot, 1);
        self.ops_in_epoch += 1;
        if self.ops_in_epoch >= self.params.epoch_ops {
            self.ops_in_epoch = 0;
            self.epochs += 1;
            for h in &mut self.heat {
                *h /= 2;
            }
            for &slot in &self.hot_slots {
                if self.heat.get(slot).copied().unwrap_or(0) == 0
                    && !self.pending.demotes.contains(&slot)
                {
                    self.pending.demotes.push(slot);
                }
            }
        }
    }

    /// Adds external heat (e.g. the reorganizer's scan counters) to `slot`
    /// and queues it for promotion when it crosses the bar.
    pub(crate) fn note_heat(&mut self, slot: usize, amount: u32) {
        if self.heat.len() <= slot {
            self.heat.resize(slot + 1, 0);
        }
        self.heat[slot] = self.heat[slot].saturating_add(amount);
        if self.heat[slot] >= self.params.promote_heat
            && !self.hot_pos.contains_key(&slot)
            && !self.pending.promotes.contains(&slot)
        {
            self.pending.promotes.push(slot);
        }
    }

    /// Completed heat epochs so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Whether `slot` is in the exact hot tier.
    pub fn is_hot(&self, slot: usize) -> bool {
        self.hot_pos.contains_key(&slot)
    }

    /// Hot-tier occupancy.
    pub fn hot_len(&self) -> usize {
        self.hot_slots.len()
    }

    /// Slots currently in the hot tier, in position order.
    pub fn hot_slot_ids(&self) -> &[usize] {
        &self.hot_slots
    }

    /// Whether maintenance is queued (tests poke this through the catalog).
    pub(crate) fn take_pending(&mut self) -> Option<PendingWork> {
        if self.pending.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut self.pending))
    }

    /// Rebuilds one group of one space from exact `(slot, bits)` state.
    pub(crate) fn rebuild_group(
        &mut self,
        space: Space,
        group: usize,
        grow: bool,
        members: &[(usize, Vec<u32>)],
    ) {
        self.bank_mut(space).rebuild_group(group, grow, members);
    }

    /// Promotes `slot` into the hot tier with its exact bits. Caller
    /// guarantees room and liveness.
    pub(crate) fn promote_now(
        &mut self,
        slot: usize,
        rating_bits: impl IntoIterator<Item = u32>,
        attr_bits: impl IntoIterator<Item = u32>,
    ) {
        debug_assert!(!self.hot_pos.contains_key(&slot));
        debug_assert!(self.hot_slots.len() < self.params.hot_capacity);
        let pos = self.hot_slots.len();
        self.hot_slots.push(slot);
        self.hot_pos.insert(slot, pos);
        self.hot_words[slot / SLOTS_PER_GROUP] |= 1u64 << (slot % SLOTS_PER_GROUP);
        for bit in rating_bits {
            self.hot_rating.set(bit, pos);
        }
        for bit in attr_bits {
            self.hot_attr.set(bit, pos);
        }
    }

    /// Demotes `slot` from the hot tier (swap-remove on positions; the
    /// moved slot's exact rows move with it).
    pub(crate) fn demote_now(&mut self, slot: usize) {
        let Some(pos) = self.hot_pos.remove(&slot) else { return };
        self.hot_words[slot / SLOTS_PER_GROUP] &= !(1u64 << (slot % SLOTS_PER_GROUP));
        let last = self.hot_slots.len() - 1;
        let moved = self.hot_slots[last];
        for rows in [&mut self.hot_rating, &mut self.hot_attr] {
            for attr in 0..rows.attrs() as u32 {
                let had_last = rows.row(attr).is_some_and(|r| r.contains(last as u32));
                if pos != last {
                    if had_last {
                        rows.set(attr, pos);
                    } else {
                        rows.clear(attr, pos);
                    }
                }
                rows.clear(attr, last);
            }
        }
        if pos != last {
            self.hot_slots[pos] = moved;
            self.hot_pos.insert(moved, pos);
        }
        self.hot_slots.pop();
    }

    /// The exact bits of a hot slot's row in `space`, ascending — `None`
    /// if the slot is not hot. Validate compares this against the
    /// refcount view (hot bitmaps ⇔ refcounts).
    pub fn hot_bits(&self, space: Space, slot: usize) -> Option<Vec<u32>> {
        let &pos = self.hot_pos.get(&slot)?;
        let rows = self.hot_rows(space);
        Some(
            (0..rows.attrs() as u32)
                .filter(|&a| rows.row(a).is_some_and(|r| r.contains(pos as u32)))
                .collect(),
        )
    }

    /// Whether the approximate tier admits `(attr, slot)` — exact for hot
    /// slots, filter membership for cold ones. Every exact-present pair
    /// must satisfy this (the no-false-negative invariant).
    pub fn approx_contains(&self, space: Space, attr: u32, slot: usize) -> bool {
        if let Some(&pos) = self.hot_pos.get(&slot) {
            return self
                .hot_rows(space)
                .row(attr)
                .is_some_and(|r| r.contains(pos as u32));
        }
        self.bank(space).contains(attr, slot)
    }

    /// ORs the candidate slots for `attrs` into `acc`: filter masks for
    /// cold groups (ANDed with live, minus hot), exact rows for the hot
    /// tier. The result is a superset of the exact candidate set.
    ///
    /// Cost shape: per attribute, the AND of its two summary planes (a
    /// few sequential words) names the candidate groups; only those few
    /// groups pay the random block-buffer probes, and each contributes
    /// one word-level OR into `acc`. Per-group or per-bit work over the
    /// whole catalog never happens here.
    pub(crate) fn candidates_into(&self, space: Space, attrs: &[u32], acc: &mut FixedBitSet) {
        let bank = self.bank(space);
        let groups = bank.groups().min(self.live_words.len());
        if groups > 0 {
            acc.grow(groups * SLOTS_PER_GROUP);
            let words = acc.blocks_mut();
            let gwords = groups.div_ceil(64);
            for &a in attrs {
                let h = mix(u64::from(a));
                let (s1, s2) = summary_indices(h);
                let (p1, p2) = (bank.plane(s1), bank.plane(s2));
                for gw in 0..gwords {
                    let mut gm = p1[gw] & p2[gw];
                    while gm != 0 {
                        let g = gw * 64 + gm.trailing_zeros() as usize;
                        gm &= gm - 1;
                        if g >= groups {
                            break;
                        }
                        let cold = self.live_words[g] & !self.hot_words[g];
                        if cold == 0 {
                            continue;
                        }
                        let word = bank.block_word_h(g, h) & cold;
                        if word != 0 {
                            words[g] |= word;
                        }
                    }
                }
            }
        }
        let rows = self.hot_rows(space);
        for &a in attrs {
            let Some(row) = rows.row(a) else { continue };
            for pos in row.iter_ones() {
                let slot = self.hot_slots[pos as usize];
                acc.grow(slot + 1);
                acc.insert(slot as u32);
            }
        }
    }

    /// Heap bytes resident in the tiered index (the number BENCH_PR10
    /// compares against the exact presence bitmaps).
    pub fn resident_bytes(&self) -> usize {
        let mut bytes = self.rating.resident_bytes() + self.attr.resident_bytes();
        bytes += (self.live_words.len() + self.hot_words.len()) * 8;
        bytes += self.hot_slots.len() * 8 + self.hot_pos.len() * 16;
        bytes += self.heat.len() * 4;
        for rows in [&self.hot_rating, &self.hot_attr] {
            bytes += rows.resident_bytes();
        }
        bytes
    }

    /// Tier-internal structural invariants: hot position maps, hot/live
    /// masks, capacity, and hot rows staying within position range.
    pub fn validate_internal(&self) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let mut v = |detail: String| out.push(InvariantViolation::new("tier", detail));
        if self.hot_slots.len() != self.hot_pos.len() {
            v(format!(
                "hot tier: {} positions but {} mapped slots",
                self.hot_slots.len(),
                self.hot_pos.len()
            ));
        }
        if self.hot_slots.len() > self.params.hot_capacity {
            v(format!(
                "hot tier holds {} slots, capacity {}",
                self.hot_slots.len(),
                self.params.hot_capacity
            ));
        }
        for (pos, &slot) in self.hot_slots.iter().enumerate() {
            if self.hot_pos.get(&slot) != Some(&pos) {
                v(format!("hot slot {slot} at position {pos} not mapped back"));
            }
            let g = slot / SLOTS_PER_GROUP;
            let bit = 1u64 << (slot % SLOTS_PER_GROUP);
            if self.hot_words.get(g).copied().unwrap_or(0) & bit == 0 {
                v(format!("hot slot {slot} missing from the hot mask"));
            }
            if self.live_words.get(g).copied().unwrap_or(0) & bit == 0 {
                v(format!("hot slot {slot} is not live"));
            }
        }
        let hot_bits: u32 = self.hot_words.iter().map(|w| w.count_ones()).sum();
        if hot_bits as usize != self.hot_slots.len() {
            v(format!(
                "hot mask has {hot_bits} bits but the tier holds {} slots",
                self.hot_slots.len()
            ));
        }
        for (space, rows) in
            [("rating", &self.hot_rating), ("attr", &self.hot_attr)]
        {
            for attr in 0..rows.attrs() as u32 {
                let Some(row) = rows.row(attr) else { continue };
                for pos in row.iter_ones() {
                    if pos as usize >= self.hot_slots.len() {
                        v(format!(
                            "hot {space} row of attr {attr} names position {pos}, \
                             only {} occupied",
                            self.hot_slots.len()
                        ));
                    }
                }
            }
        }
        out
    }

    /// A compact, immutable clone of the attribute-space tier for the
    /// server's epoch snapshots: enough to plan survivors without the
    /// catalog (or its lock).
    pub fn snapshot(&self, segs: Vec<SegmentId>, partitions: usize) -> TierSnapshot {
        TierSnapshot {
            bank: self.attr.clone(),
            live_words: self.live_words.clone(),
            hot_words: self.hot_words.clone(),
            hot_slots: self.hot_slots.clone(),
            hot_attr: self.hot_attr.clone(),
            segs,
            partitions,
        }
    }
}

/// A frozen copy of the attribute-space tier plus the slot→segment map —
/// the server's snapshot replaces its O(partitions × universe) synopsis
/// clone with this.
#[derive(Clone, Debug)]
pub struct TierSnapshot {
    bank: FilterBank,
    live_words: Vec<u64>,
    hot_words: Vec<u64>,
    hot_slots: Vec<usize>,
    hot_attr: PresenceIndex,
    segs: Vec<SegmentId>,
    partitions: usize,
}

impl TierSnapshot {
    /// Partition count at freeze time.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The surviving segments for query synopsis `q` (ascending) plus the
    /// pruned count. A superset of the exact survivor set; the executor's
    /// per-row `matches` keeps answers identical.
    pub fn survivors(&self, q: &Synopsis) -> (Vec<SegmentId>, usize) {
        let mut survivors = Vec::new();
        let groups = self.bank.groups().min(self.live_words.len());
        let gwords = groups.div_ceil(64);
        for a in q.iter().map(|a| a.index()) {
            let h = mix(u64::from(a));
            let (s1, s2) = summary_indices(h);
            let (p1, p2) = (self.bank.plane(s1), self.bank.plane(s2));
            for gw in 0..gwords {
                let mut gm = p1[gw] & p2[gw];
                while gm != 0 {
                    let g = gw * 64 + gm.trailing_zeros() as usize;
                    gm &= gm - 1;
                    if g >= groups {
                        break;
                    }
                    let mut word = self.bank.block_word_h(g, h)
                        & self.live_words[g]
                        & !self.hot_words[g];
                    while word != 0 {
                        let b = word.trailing_zeros() as usize;
                        let slot = g * SLOTS_PER_GROUP + b;
                        if let Some(&seg) = self.segs.get(slot) {
                            survivors.push(seg);
                        }
                        word &= word - 1;
                    }
                }
            }
            if let Some(row) = self.hot_attr.row(a) {
                for pos in row.iter_ones() {
                    if let Some(&slot) = self.hot_slots.get(pos as usize) {
                        if let Some(&seg) = self.segs.get(slot) {
                            survivors.push(seg);
                        }
                    }
                }
            }
        }
        survivors.sort_unstable();
        survivors.dedup();
        let pruned = self.partitions.saturating_sub(survivors.len());
        (survivors, pruned)
    }

    /// Heap bytes resident in the snapshot.
    pub fn resident_bytes(&self) -> usize {
        self.bank.resident_bytes()
            + (self.live_words.len() + self.hot_words.len()) * 8
            + self.hot_slots.len() * 8
            + self.hot_attr.resident_bytes()
            + self.segs.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_admits_every_set_pair() {
        let mut bank = FilterBank::new(&TierParams::default());
        let pairs: Vec<(u32, usize)> =
            (0..500u32).map(|i| (i * 7 % 97, (i as usize * 13) % 300)).collect();
        for &(attr, slot) in &pairs {
            bank.set(attr, slot);
        }
        for &(attr, slot) in &pairs {
            assert!(bank.contains(attr, slot), "({attr}, {slot}) lost");
        }
    }

    #[test]
    fn rebuild_and_grow_preserve_membership() {
        let mut bank = FilterBank::new(&TierParams {
            blocks_per_group: 2,
            ..TierParams::default()
        });
        // One group, many pairs — force saturation.
        let pairs: Vec<(u32, usize)> = (0..200u32).map(|i| (i, (i as usize) % 64)).collect();
        for &(attr, slot) in &pairs {
            bank.set(attr, slot);
        }
        // Group the exact state by slot, as the catalog would.
        let mut by_slot: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &(attr, slot) in &pairs {
            by_slot.entry(slot).or_default().push(attr);
        }
        let members: Vec<(usize, Vec<u32>)> = by_slot.into_iter().collect();
        for grow in [false, true] {
            bank.rebuild_group(0, grow, &members);
            for &(attr, slot) in &pairs {
                assert!(
                    bank.contains(attr, slot),
                    "({attr}, {slot}) lost after rebuild (grow={grow})"
                );
            }
        }
        assert!(bank.group_blocks(0) > 2, "grow must widen the block array");
    }

    #[test]
    fn group_summary_skips_unseen_attributes() {
        let mut bank = FilterBank::new(&TierParams::default());
        bank.set(3, 0);
        // An unseen attribute usually misses the summary; when it collides
        // it still only produces false positives, never false negatives.
        assert!(bank.contains(3, 0));
        assert_eq!(bank.mask(5, 3), 0, "untouched group has no candidates");
    }

    #[test]
    fn hot_tier_promote_demote_keeps_rows_consistent() {
        let mut t = TieredIndex::new(TierParams { hot_capacity: 4, ..TierParams::default() });
        for slot in 0..3 {
            t.on_slot_alloc(slot);
        }
        t.promote_now(0, [1, 2], [1, 2]);
        t.promote_now(1, [2, 3], [2, 3]);
        t.promote_now(2, [9], [9]);
        assert!(t.validate_internal().is_empty(), "{:?}", t.validate_internal());
        assert!(t.approx_contains(Space::Rating, 2, 0));
        assert!(t.approx_contains(Space::Rating, 2, 1));
        assert!(!t.approx_contains(Space::Rating, 9, 1), "hot rows are exact");
        // Demote the middle: slot 2 swaps into its position with its rows.
        t.demote_now(1);
        assert!(t.validate_internal().is_empty(), "{:?}", t.validate_internal());
        assert!(t.is_hot(0) && t.is_hot(2) && !t.is_hot(1));
        assert!(t.approx_contains(Space::Rating, 9, 2));
        assert!(!t.approx_contains(Space::Rating, 2, 2));
    }

    #[test]
    fn candidates_cover_filters_and_hot_rows() {
        let mut t = TieredIndex::new(TierParams::default());
        for slot in 0..130 {
            t.on_slot_alloc(slot);
        }
        t.set(Space::Attr, 7, 3);
        t.set(Space::Attr, 7, 80);
        t.set(Space::Attr, 8, 129);
        t.promote_now(80, [], [7]);
        let mut acc = FixedBitSet::default();
        t.candidates_into(Space::Attr, &[7], &mut acc);
        assert!(acc.contains(3));
        assert!(acc.contains(80), "hot overlay must contribute");
        assert!(!acc.contains(129), "attr 8 only");
        // A released slot can never be a candidate, even with stale bits.
        t.on_slot_release(3);
        let mut acc = FixedBitSet::default();
        t.candidates_into(Space::Attr, &[7], &mut acc);
        assert!(!acc.contains(3), "dead slots are masked out");
    }

    #[test]
    fn heat_promotes_and_epoch_decay_demotes() {
        let mut t = TieredIndex::new(TierParams {
            epoch_ops: 8,
            promote_heat: 3,
            ..TierParams::default()
        });
        t.on_slot_alloc(0);
        t.note_op(0);
        t.note_op(0);
        assert!(t.take_pending().is_none(), "below the bar");
        t.note_op(0);
        let work = t.take_pending().expect("promotion queued");
        assert_eq!(work.promotes, vec![0]);
        t.promote_now(0, [1], [1]);
        // Run epochs with no further traffic: heat 3 → 1 → 0 → demote.
        for _ in 0..24 {
            t.note_op(0_usize.wrapping_add(0));
        }
        // Slot 0 keeps getting ops above, so instead cool a second slot.
        t.on_slot_alloc(1);
        for _ in 0..3 {
            t.note_heat(1, 1);
        }
        let work = t.take_pending().expect("second promotion");
        assert!(work.promotes.contains(&1));
    }

    #[test]
    fn snapshot_survivors_match_live_candidates() {
        let mut t = TieredIndex::new(TierParams::default());
        let segs: Vec<SegmentId> = (0..100).map(SegmentId).collect();
        for slot in 0..100 {
            t.on_slot_alloc(slot);
        }
        t.set(Space::Attr, 4, 10);
        t.set(Space::Attr, 4, 65);
        t.promote_now(65, [], [4]);
        t.on_slot_release(20);
        let snap = t.snapshot(segs, 99);
        let q = Synopsis::from_bits(32, [4u32]);
        let (survivors, pruned) = snap.survivors(&q);
        assert!(survivors.contains(&SegmentId(10)));
        assert!(survivors.contains(&SegmentId(65)));
        assert_eq!(pruned, 99 - survivors.len());
        let mut acc = FixedBitSet::default();
        t.candidates_into(Space::Attr, &[4], &mut acc);
        let from_live: Vec<SegmentId> =
            acc.iter_ones().map(SegmentId).collect();
        assert_eq!(survivors, from_live);
    }

    mod properties {
        use std::collections::BTreeMap;

        use proptest::prelude::*;

        use crate::tier::{FilterBank, TierParams, SLOTS_PER_GROUP};

        proptest! {
            /// Membership survives any sequence of sets followed by a
            /// rebuild, with or without a grow — the no-false-negative
            /// half of the filter contract, under random pair sets.
            #[test]
            fn rebuild_preserves_random_membership(
                pairs in prop::collection::vec(
                    (0u32..512, 0usize..SLOTS_PER_GROUP),
                    1..300,
                ),
                grow in any::<bool>(),
            ) {
                let mut bank = FilterBank::new(&TierParams {
                    blocks_per_group: 2,
                    ..TierParams::default()
                });
                for &(attr, slot) in &pairs {
                    bank.set(attr, slot);
                }
                for &(attr, slot) in &pairs {
                    prop_assert!(bank.contains(attr, slot));
                }
                let mut by_slot: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
                for &(attr, slot) in &pairs {
                    by_slot.entry(slot).or_default().push(attr);
                }
                let members: Vec<(usize, Vec<u32>)> = by_slot.into_iter().collect();
                bank.rebuild_group(0, grow, &members);
                for &(attr, slot) in &pairs {
                    prop_assert!(
                        bank.contains(attr, slot),
                        "({}, {}) lost after rebuild (grow={})", attr, slot, grow
                    );
                }
            }

            /// The grow path keeps growing until `max_blocks_per_group` and
            /// never drops a pair at any width.
            #[test]
            fn grow_to_max_width_preserves_membership(
                attrs in prop::collection::btree_set(0u32..2048, 32..256),
            ) {
                let mut bank = FilterBank::new(&TierParams {
                    blocks_per_group: 2,
                    max_blocks_per_group: 16,
                    ..TierParams::default()
                });
                let members: Vec<(usize, Vec<u32>)> =
                    vec![(0, attrs.iter().copied().collect())];
                for &attr in &attrs {
                    if bank.set(attr, 0) {
                        bank.rebuild_group(0, true, &members[..1]);
                    }
                }
                prop_assert!(bank.group_blocks(0) <= 16);
                for &attr in &attrs {
                    prop_assert!(bank.contains(attr, 0), "({}, 0) lost", attr);
                }
            }
        }
    }
}
