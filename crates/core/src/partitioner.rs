//! Algorithm 1 and the modification routines (§III).

use std::time::Instant;

use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, StorageError, UniversalTable};

use crate::catalog::PartitionCatalog;
use crate::config::Config;
use crate::events::{InsertEvent, InsertOutcome, Stats};
use crate::validate::InvariantViolation;
use crate::CoreError;

/// The Cinderella online partitioner.
///
/// Owns the partition catalog and the configuration; operates on a
/// [`UniversalTable`] passed to each call (policy and mechanism stay
/// separate, so baselines can drive the same table type).
///
/// The three modification routines:
///
/// * [`insert`](Cinderella::insert) — Algorithm 1 verbatim, including the
///   starter update before the capacity check and the split procedure.
/// * [`delete`](Cinderella::delete) — removes the entity; empty partitions
///   are dropped; the partitioning is otherwise untouched.
/// * [`update`](Cinderella::update) — re-runs the rating scan "without
///   actually inserting"; moves the entity only if a different partition
///   wins (or the rating went negative), else updates in place.
///
/// One clarification over the paper's pseudocode: in Algorithm 1 the
/// triggering entity `e` is never explicitly added to either new partition
/// unless it became a split starter. We read the intent as "`e` takes part
/// in the split like a member": seeds move first, then the remaining members
/// *and `e`* are re-inserted restricted to the two new partitions.
pub struct Cinderella {
    config: Config,
    catalog: PartitionCatalog,
    stats: Stats,
    events: Vec<InsertEvent>,
}

impl Cinderella {
    /// Creates a partitioner with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`Config::validate`]).
    pub fn new(config: Config) -> Self {
        config.validate();
        let catalog = PartitionCatalog::with_tier(config.index, config.tier);
        Self { config, catalog, stats: Stats::default(), events: Vec::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The partition catalog (read-only).
    pub fn catalog(&self) -> &PartitionCatalog {
        &self.catalog
    }

    /// Switches the index tier at runtime (exact ↔ tiered, or arming the
    /// `auto` ratchet). Partitioning decisions and query answers are
    /// unaffected — only the index representation changes.
    pub fn set_index_tier(&mut self, tier: crate::config::IndexTier) {
        self.config.tier = tier;
        self.catalog.set_tier(tier);
    }

    /// Feeds the reorganizer's per-partition heat into the tier's
    /// promotion machinery. A no-op while the exact tier is active.
    pub fn note_partition_heat(&mut self, seg: SegmentId, heat: u32) {
        self.catalog.note_heat(seg, heat);
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Recorded insert events (empty unless `record_events` is on).
    pub fn events(&self) -> &[InsertEvent] {
        &self.events
    }

    /// Drains the recorded insert events.
    pub fn take_events(&mut self) -> Vec<InsertEvent> {
        std::mem::take(&mut self.events)
    }

    /// Rebuilds a partitioner for an already-partitioned table — e.g. one
    /// restored from a snapshot (`cind-storage::persist`). Partition
    /// synopses, sizes, and split starters are derived by scanning each
    /// segment once; the starter pair is re-grown with the same incremental
    /// heuristic the online path uses, so behaviour after a rebuild matches
    /// a fresh process that saw the same entities.
    ///
    /// # Errors
    /// Storage errors from the scans.
    pub fn rebuild(table: &UniversalTable, config: Config) -> Result<Self, CoreError> {
        config.validate();
        let mut cindy = Cinderella::new(config);
        for seg in table.segment_ids() {
            cindy.catalog.create_partition(seg);
            let members = table.scan_collect(seg)?;
            assert!(
                !members.is_empty(),
                "restored table contains empty segment {seg}"
            );
            for e in members {
                let (rating_syn, attr_syn, size) = cindy.synopses(table, &e);
                cindy
                    .catalog
                    .add_entity(seg, e.id(), &rating_syn, &attr_syn, size, true);
            }
        }
        cindy.debug_validate_catalog();
        Ok(cindy)
    }

    /// Mutable catalog access for the in-crate bulk/merge machinery.
    pub(crate) fn catalog_mut(&mut self) -> &mut PartitionCatalog {
        &mut self.catalog
    }

    /// Deep structural validation: the catalog's internal cross-checks
    /// ([`PartitionCatalog::validate`]) plus the entity-level laws that
    /// need storage — the catalog and the table agree on the segment set,
    /// every partition's synopses/size/entity-count equal what its stored
    /// members imply (the OR-of-members law via full refcount
    /// recomputation), and the split starters are members with fresh cached
    /// synopses. Scans every segment once; run it at rest (end of test,
    /// `cind check`), not on the hot path.
    ///
    /// # Errors
    /// Storage errors from the segment scans.
    pub fn validate(
        &self,
        table: &UniversalTable,
    ) -> Result<Vec<InvariantViolation>, CoreError> {
        let mut out = self.catalog.validate();
        let table_segs: std::collections::BTreeSet<SegmentId> =
            table.segment_ids().collect();
        let catalog_segs: std::collections::BTreeSet<SegmentId> =
            self.catalog.iter().map(|m| m.segment).collect();
        for seg in catalog_segs.difference(&table_segs) {
            out.push(InvariantViolation::new(
                "table",
                format!("partition {seg} has no backing segment in the table"),
            ));
        }
        for seg in table_segs.difference(&catalog_segs) {
            out.push(InvariantViolation::new(
                "table",
                format!("segment {seg} is stored but not cataloged"),
            ));
        }
        let mut stored = 0usize;
        for &seg in catalog_segs.intersection(&table_segs) {
            let members: Vec<_> = table
                .scan_collect(seg)?
                .into_iter()
                .map(|e| {
                    let (rating_syn, attr_syn, size) = self.synopses(table, &e);
                    (e.id(), rating_syn, attr_syn, size)
                })
                .collect();
            for (id, ..) in &members {
                if table.location(*id) != Some(seg) {
                    out.push(InvariantViolation::new(
                        "table",
                        format!("entity {id:?} stored in {seg} but located elsewhere"),
                    ));
                }
            }
            stored += members.len();
            out.extend(self.catalog.validate_members(seg, &members));
        }
        if stored != table.entity_count() {
            out.push(InvariantViolation::new(
                "table",
                format!(
                    "segments store {stored} entities, table counts {}",
                    table.entity_count()
                ),
            ));
        }
        Ok(out)
    }

    /// Debug-build assertion of the catalog-internal invariants — the hook
    /// the structural boundaries (split, merge, bulk stitch, rebuild) call.
    /// Compiled to nothing in release builds.
    pub(crate) fn debug_validate_catalog(&self) {
        #[cfg(debug_assertions)]
        {
            let violations = self.catalog.validate();
            assert!(
                violations.is_empty(),
                "catalog invariants violated:\n{}",
                crate::validate::render(&violations)
            );
        }
    }

    /// Counts `n` inserts at once (segment adoption by the bulk loader).
    pub(crate) fn bump_inserts_by(&mut self, n: u64) {
        self.stats.inserts += n;
    }

    /// Builds `(rating synopsis, attribute synopsis, SIZE(e))` for an
    /// entity against the table's current attribute universe.
    fn synopses(&self, table: &UniversalTable, entity: &Entity) -> (Synopsis, Synopsis, u64) {
        let universe = table.universe();
        let attr_syn = entity.synopsis(universe);
        let rating_syn = match &self.config.mode {
            crate::SynopsisMode::EntityBased => attr_syn.clone(),
            mode => mode.entity_synopsis(entity, universe),
        };
        let size = self.config.size_model.entity_size(entity);
        (rating_syn, attr_syn, size)
    }

    /// Closes the WAL transaction group opened around a partitioner
    /// operation. A commit failure outranks a clean result (the in-memory
    /// op applied but never reached the log); an op that already failed
    /// keeps its own error — the group it opened is dropped with it.
    fn finish_txn<T>(
        table: &mut UniversalTable,
        result: Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        match table.wal_txn_commit() {
            Ok(()) => result,
            Err(e) => result.and(Err(e.into())),
        }
    }

    /// Algorithm 1: inserts `entity`, adjusting the partitioning.
    ///
    /// The whole operation — including any split it triggers — is logged
    /// as one WAL transaction group, so recovery sees it entirely or not
    /// at all.
    ///
    /// # Errors
    /// [`StorageError::DuplicateEntity`] if the id is already stored; other
    /// storage errors from the layers below.
    pub fn insert(
        &mut self,
        table: &mut UniversalTable,
        entity: Entity,
    ) -> Result<InsertOutcome, CoreError> {
        table.wal_txn_begin();
        let result = self.insert_impl(table, entity);
        Self::finish_txn(table, result)
    }

    fn insert_impl(
        &mut self,
        table: &mut UniversalTable,
        entity: Entity,
    ) -> Result<InsertOutcome, CoreError> {
        if table.location(entity.id()).is_some() {
            return Err(StorageError::DuplicateEntity(entity.id()).into());
        }
        let t0 = Instant::now();
        let (rating_syn, attr_syn, size_e) = self.synopses(table, &entity);

        // Lines 3–7: scan the partition catalog for the best rating.
        let (best, ratings) =
            self.catalog
                .best_partition(&rating_syn, size_e, self.config.weight);
        self.stats.ratings_computed += u64::from(ratings);

        let outcome = match best {
            // Lines 14–36: a partition rated non-negatively.
            Some((seg, r)) if r >= 0.0 => {
                // Lines 15–24: update the split starters *before* the
                // capacity check — the new entity may become a seed.
                self.catalog
                    .get_mut(seg)
                    .ok_or(CoreError::Invariant("best partition cataloged"))?
                    .starters
                    .offer(entity.id(), &rating_syn);

                let meta = self
                    .catalog
                    .get(seg)
                    .ok_or(CoreError::Invariant("best partition cataloged"))?;
                if self
                    .config
                    .capacity
                    .would_overflow(meta.entities, meta.size, size_e)
                {
                    // Lines 26–33.
                    self.split_insert(table, seg, entity)?
                } else {
                    // Line 36.
                    table.insert(seg, &entity)?;
                    self.catalog
                        .add_entity(seg, entity.id(), &rating_syn, &attr_syn, size_e, false);
                    InsertOutcome::Inserted(seg)
                }
            }
            // Lines 9–13: negative best rating (or empty catalog).
            _ => {
                let seg = table.create_segment();
                self.catalog.create_partition(seg);
                table.insert(seg, &entity)?;
                self.catalog
                    .add_entity(seg, entity.id(), &rating_syn, &attr_syn, size_e, true);
                self.stats.partitions_created += 1;
                InsertOutcome::NewPartition(seg)
            }
        };

        self.stats.inserts += 1;
        if self.config.record_events {
            self.events
                .push(InsertEvent { duration: t0.elapsed(), outcome, ratings });
        }
        Ok(outcome)
    }

    /// Lines 26–33: splits partition `seg`, distributing its members plus
    /// the incoming `entity` over two new partitions seeded by the split
    /// starters.
    fn split_insert(
        &mut self,
        table: &mut UniversalTable,
        seg: SegmentId,
        entity: Entity,
    ) -> Result<InsertOutcome, CoreError> {
        let (seg_a, seg_b) = self.split_partition(table, seg, Some(entity))?;
        self.stats.splits += 1;
        Ok(InsertOutcome::Split { from: seg, into: (seg_a, seg_b) })
    }

    /// The split mechanics shared by the overflow split (lines 26–33, with
    /// an `incoming` entity that triggered it) and the reorganizer's
    /// [`Cinderella::resplit`] (no incoming entity): distribute the members
    /// of `seg` over two new partitions seeded by the split starters.
    fn split_partition(
        &mut self,
        table: &mut UniversalTable,
        seg: SegmentId,
        incoming: Option<Entity>,
    ) -> Result<(SegmentId, SegmentId), CoreError> {
        let new_id = incoming.as_ref().map(Entity::id);
        // Resolve the starter pair *before* detaching the partition, so a
        // failed precondition leaves the catalog untouched. On the overflow
        // path the pair is complete by construction: the partition is
        // non-empty and the incoming entity was just offered, so at least
        // two distinct entities have passed through `offer`.
        let (seed_a, seed_b) = {
            let meta = self
                .catalog
                .get(seg)
                .ok_or(CoreError::Invariant("split candidate cataloged"))?;
            match (meta.starters.a(), meta.starters.b()) {
                (Some((a, _)), Some((b, _))) => (a, b),
                _ => return Err(CoreError::Invariant("starter pair present at split")),
            }
        };
        self.catalog.remove_partition(seg);

        // Reading the whole partition is the split's dominant cost, as the
        // paper notes; it shows up in the I/O counters like any scan.
        let mut members = table.scan_collect(seg)?;
        members.extend(incoming);

        let seg_a = table.create_segment();
        let seg_b = table.create_segment();
        self.catalog.create_partition(seg_a);
        self.catalog.create_partition(seg_b);

        // Lines 29–30: seeds move first; lines 31–33: the rest re-insert
        // restricted to the two new partitions.
        let mut deferred = Vec::with_capacity(members.len());
        for e in members {
            if e.id() == seed_a {
                self.place(table, seg_a, e, new_id)?;
            } else if e.id() == seed_b {
                self.place(table, seg_b, e, new_id)?;
            } else {
                deferred.push(e);
            }
        }
        for e in deferred {
            let (rating_syn, _, size_e) = self.synopses(table, &e);
            let (best, ratings) = self.catalog.best_among(
                &[seg_a, seg_b],
                &rating_syn,
                size_e,
                self.config.weight,
            );
            self.stats.ratings_computed += u64::from(ratings);
            let (mut target, _) =
                best.ok_or(CoreError::Invariant("two live targets at split"))?;
            // A target the catalog no longer knows counts as overflowing:
            // the redirect below then routes the entity to its sibling.
            let overflows = |cat: &PartitionCatalog, s: SegmentId| {
                cat.get(s).is_none_or(|m| {
                    self.config.capacity.would_overflow(m.entities, m.size, size_e)
                })
            };
            // Under entity-count capacity a target can never fill during a
            // split (at most B+1 entities are redistributed over two
            // partitions); under byte capacity with skewed sizes it can —
            // redirect to the sibling, or force-overflow as a last resort
            // rather than cascade (see DESIGN.md §5).
            if overflows(&self.catalog, target) {
                let other = if target == seg_a { seg_b } else { seg_a };
                if overflows(&self.catalog, other) {
                    self.stats.forced_overflows += 1;
                } else {
                    target = other;
                }
            }
            self.place(table, target, e, new_id)?;
        }

        table.drop_segment(seg)?;
        self.debug_validate_catalog();
        Ok((seg_a, seg_b))
    }

    /// Physically places `e` into `target` (move for existing members,
    /// insert for the triggering entity) and accounts it in the catalog.
    fn place(
        &mut self,
        table: &mut UniversalTable,
        target: SegmentId,
        e: Entity,
        new_id: Option<EntityId>,
    ) -> Result<(), CoreError> {
        let (rating_syn, attr_syn, size_e) = self.synopses(table, &e);
        if new_id == Some(e.id()) {
            table.insert(target, &e)?;
        } else {
            table.move_entity(e.id(), target)?;
            self.stats.split_moves += 1;
        }
        self.catalog
            .add_entity(target, e.id(), &rating_syn, &attr_syn, size_e, true);
        Ok(())
    }

    /// Moves every member of `from` into `into` and drops `from` — the
    /// mechanics of a merge (see the [`merge`](crate::merge) module).
    pub(crate) fn absorb(
        &mut self,
        table: &mut UniversalTable,
        from: SegmentId,
        into: SegmentId,
        members: Vec<Entity>,
    ) -> Result<(), CoreError> {
        table.wal_txn_begin();
        let result = self.absorb_impl(table, from, into, members);
        Self::finish_txn(table, result)
    }

    fn absorb_impl(
        &mut self,
        table: &mut UniversalTable,
        from: SegmentId,
        into: SegmentId,
        members: Vec<Entity>,
    ) -> Result<(), CoreError> {
        self.catalog.remove_partition(from);
        for e in members {
            let (rating_syn, attr_syn, size) = self.synopses(table, &e);
            table.move_entity(e.id(), into)?;
            self.catalog
                .add_entity(into, e.id(), &rating_syn, &attr_syn, size, true);
            self.stats.merge_moves += 1;
        }
        table.drop_segment(from)?;
        self.stats.merges += 1;
        self.debug_validate_catalog();
        Ok(())
    }

    /// Deletes an entity. The partitioning stays as is; a partition that
    /// becomes empty is dropped (§III). Logged as one WAL transaction
    /// group.
    pub fn delete(
        &mut self,
        table: &mut UniversalTable,
        id: EntityId,
    ) -> Result<Entity, CoreError> {
        table.wal_txn_begin();
        let result = self.delete_impl(table, id);
        Self::finish_txn(table, result)
    }

    fn delete_impl(
        &mut self,
        table: &mut UniversalTable,
        id: EntityId,
    ) -> Result<Entity, CoreError> {
        let seg = table
            .location(id)
            .ok_or(StorageError::NoSuchEntity(id))?;
        let entity = table.delete(id)?;
        let (rating_syn, attr_syn, size) = self.synopses(table, &entity);
        let remaining = self
            .catalog
            .remove_entity(seg, id, &rating_syn, &attr_syn, size);
        if remaining == 0 {
            self.catalog.remove_partition(seg);
            table.drop_segment(seg)?;
            self.stats.partitions_dropped += 1;
        }
        self.stats.deletes += 1;
        Ok(entity)
    }

    /// Updates an entity (replaces its stored version with `entity`, same
    /// id). Runs the insert rating "without actually inserting": if the
    /// entity's current partition still wins, the record is replaced in
    /// place; otherwise the entity is moved through the full insert routine
    /// (which may create a partition or split one). Logged as one WAL
    /// transaction group (the inner delete + insert groups nest into it).
    pub fn update(
        &mut self,
        table: &mut UniversalTable,
        entity: Entity,
    ) -> Result<InsertOutcome, CoreError> {
        table.wal_txn_begin();
        let result = self.update_impl(table, entity);
        Self::finish_txn(table, result)
    }

    fn update_impl(
        &mut self,
        table: &mut UniversalTable,
        entity: Entity,
    ) -> Result<InsertOutcome, CoreError> {
        let id = entity.id();
        let current = table
            .location(id)
            .ok_or(StorageError::NoSuchEntity(id))?;
        let (new_rating, new_attr, new_size) = self.synopses(table, &entity);
        let (best, ratings) =
            self.catalog
                .best_partition(&new_rating, new_size, self.config.weight);
        self.stats.ratings_computed += u64::from(ratings);
        self.stats.updates += 1;

        match best {
            Some((seg, r)) if r >= 0.0 && seg == current => {
                // In place: swap the stored record, fix the accounting.
                let old = table.delete(id)?;
                let (old_rating, old_attr, old_size) = self.synopses(table, &old);
                self.catalog
                    .remove_entity(current, id, &old_rating, &old_attr, old_size);
                table.insert(current, &entity)?;
                self.catalog
                    .add_entity(current, id, &new_rating, &new_attr, new_size, true);
                Ok(InsertOutcome::Inserted(current))
            }
            _ => {
                // Move: delete then re-insert through Algorithm 1. The two
                // inner calls bump their own counters; fold them back so
                // `updates` alone accounts for this operation.
                self.delete(table, id)?;
                let outcome = self.insert(table, entity)?;
                self.stats.deletes -= 1;
                self.stats.inserts -= 1;
                self.stats.update_moves += 1;
                Ok(outcome)
            }
        }
    }

    // ------------------------------------------------------------------
    // Reorganizer seams (the `cind-reorg` driver's three actions). Each is
    // WAL-framed as one transaction group, so a crash mid-action recovers
    // to the pre- or post-action state — never in between.
    // ------------------------------------------------------------------

    /// Re-splits partition `seg` through the overflow-split machinery: its
    /// members are redistributed over two new partitions seeded by the
    /// split starters. The reorganizer uses this on *hot mixed* partitions
    /// — ones the workload scans often but whose members answer different
    /// queries — where separating the starter clusters shrinks the scan
    /// cost of every query that touches only one side.
    ///
    /// Returns the two new segments, or `None` when the partition cannot
    /// be re-split (vanished, fewer than two entities, or an incomplete
    /// starter pair). Logged as one WAL transaction group.
    ///
    /// # Errors
    /// Storage errors from the member moves; WAL commit failures.
    pub fn resplit(
        &mut self,
        table: &mut UniversalTable,
        seg: SegmentId,
    ) -> Result<Option<(SegmentId, SegmentId)>, CoreError> {
        let Some(meta) = self.catalog.get(seg) else {
            return Ok(None);
        };
        if meta.entities < 2
            || meta.starters.a().is_none()
            || meta.starters.b().is_none()
        {
            return Ok(None);
        }
        table.wal_txn_begin();
        let result = self.split_partition(table, seg, None).map(|(a, b)| {
            self.stats.reorg_resplits += 1;
            Some((a, b))
        });
        Self::finish_txn(table, result)
    }

    /// Merges partition `from` into `into` — the pair was already
    /// cost-modeled by the caller, so unlike [`Cinderella::merge_pass`]
    /// there is no rating gate here, only the hard capacity check: the
    /// target must absorb the whole partition without overflowing.
    ///
    /// Returns the number of entities moved, or `None` when the merge is
    /// not possible (either side vanished, same segment, or no room).
    /// Logged as one WAL transaction group (via the absorb).
    ///
    /// # Errors
    /// Storage errors from the member moves; WAL commit failures.
    pub fn merge_partitions(
        &mut self,
        table: &mut UniversalTable,
        from: SegmentId,
        into: SegmentId,
    ) -> Result<Option<u64>, CoreError> {
        if from == into {
            return Ok(None);
        }
        let (Some(src), Some(dst)) = (self.catalog.get(from), self.catalog.get(into))
        else {
            return Ok(None);
        };
        let fits = match self.config.capacity {
            crate::Capacity::MaxEntities(b) => dst.entities + src.entities <= b,
            crate::Capacity::MaxSize(b) => dst.size + src.size <= b,
        };
        if !fits {
            return Ok(None);
        }
        let members = table.scan_collect(from)?;
        let moved = members.len() as u64;
        self.absorb(table, from, into, members)?;
        Ok(Some(moved))
    }

    /// Migrates up to `max_moves` members of `seg` whose rating now
    /// favours a different partition: each candidate is deleted and
    /// re-inserted through Algorithm 1 — exactly the paper's update-move
    /// semantics, just triggered by workload drift instead of an attribute
    /// change. Each migration is its own WAL transaction group, so a crash
    /// between moves loses nothing and a crash inside one rolls that one
    /// entity back atomically.
    ///
    /// Returns the number of entities migrated.
    ///
    /// # Errors
    /// Storage errors from the moves; WAL commit failures.
    pub fn rebalance_entities(
        &mut self,
        table: &mut UniversalTable,
        seg: SegmentId,
        max_moves: u64,
    ) -> Result<u64, CoreError> {
        if max_moves == 0 || self.catalog.get(seg).is_none() {
            return Ok(0);
        }
        let members = table.scan_collect(seg)?;
        let mut moved = 0u64;
        for e in members {
            if moved >= max_moves {
                break;
            }
            // Pre-screen: only pay the move when Algorithm 1 would place
            // the entity elsewhere today *and* the winner has room (the
            // reorganizer must never trigger a split as a side effect of
            // tidying up).
            let (rating_syn, _, size_e) = self.synopses(table, &e);
            let (best, ratings) =
                self.catalog
                    .best_partition(&rating_syn, size_e, self.config.weight);
            self.stats.ratings_computed += u64::from(ratings);
            let Some((target, r)) = best else { continue };
            if target == seg || r < 0.0 {
                continue;
            }
            let Some(meta) = self.catalog.get(target) else { continue };
            if self.config.capacity.would_overflow(meta.entities, meta.size, size_e) {
                continue;
            }
            self.migrate_entity(table, e.id())?;
            moved += 1;
        }
        self.debug_validate_catalog();
        Ok(moved)
    }

    /// Migrates one entity: deletes it and re-inserts it through Algorithm
    /// 1, atomically in one WAL transaction group — a crash recovers to
    /// the entity fully in its old place or fully in its new one, never
    /// absent. Returns the segment the entity landed in (which may be its
    /// old one if the rating flipped back between the caller's screen and
    /// the re-insert).
    ///
    /// # Errors
    /// [`StorageError::NoSuchEntity`] for unknown ids; storage errors from
    /// the moves; WAL commit failures.
    pub fn migrate_entity(
        &mut self,
        table: &mut UniversalTable,
        id: EntityId,
    ) -> Result<SegmentId, CoreError> {
        table.wal_txn_begin();
        let result = (|| {
            let entity = self.delete_impl(table, id)?;
            self.insert_impl(table, entity)?;
            table
                .location(id)
                .ok_or(CoreError::Invariant("migrated entity located"))
        })();
        let seg = Self::finish_txn(table, result)?;
        // The inner ops bump their own counters; fold them back so the
        // migration accounts as one reorganizer move.
        self.stats.deletes -= 1;
        self.stats.inserts -= 1;
        self.stats.reorg_migrations += 1;
        Ok(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Capacity;
    use cind_model::{AttrId, Value};

    fn make(
        table: &mut UniversalTable,
        id: u64,
        attrs: &[&str],
    ) -> Entity {
        let attrs: Vec<(AttrId, Value)> = attrs
            .iter()
            .map(|a| (table.catalog_mut().intern(a), Value::Int(1)))
            .collect();
        Entity::new(EntityId(id), attrs).unwrap()
    }

    fn cindy(capacity: u64, weight: f64) -> Cinderella {
        Cinderella::new(Config {
            weight,
            capacity: Capacity::MaxEntities(capacity),
            ..Config::default()
        })
    }

    #[test]
    fn first_insert_creates_a_partition() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["name", "weight"]);
        let out = c.insert(&mut t, e).unwrap();
        assert!(matches!(out, InsertOutcome::NewPartition(_)));
        assert_eq!(c.catalog().len(), 1);
        assert_eq!(c.stats().partitions_created, 1);
    }

    #[test]
    fn similar_entities_share_a_partition() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["name", "res", "zoom"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, &["name", "res", "zoom"]);
        let out = c.insert(&mut t, e).unwrap();
        assert!(matches!(out, InsertOutcome::Inserted(_)));
        assert_eq!(c.catalog().len(), 1);
    }

    #[test]
    fn dissimilar_entities_get_their_own_partition() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["name", "res", "zoom"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, &["rpm", "capacity", "cache"]);
        let out = c.insert(&mut t, e).unwrap();
        assert!(matches!(out, InsertOutcome::NewPartition(_)));
        assert_eq!(c.catalog().len(), 2);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["a"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 1, &["a"]);
        assert!(matches!(
            c.insert(&mut t, e),
            Err(CoreError::Storage(StorageError::DuplicateEntity(_)))
        ));
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn overflow_triggers_a_split_that_separates_groups() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(4, 0.9); // high weight: everything piles together
        // Two latent groups that a forced merge then split should separate.
        let camera = &["name", "res", "zoom"][..];
        let drive = &["name", "rpm", "cache"][..];
        let e = make(&mut t, 0, camera);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 1, drive);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, camera);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 3, drive);
        c.insert(&mut t, e).unwrap();
        assert_eq!(c.catalog().len(), 1, "w=0.9 keeps everything together");
        // Fifth insert overflows B=4 → split.
        let e = make(&mut t, 4, camera);
        let out = c.insert(&mut t, e).unwrap();
        assert!(out.is_split());
        assert_eq!(c.catalog().len(), 2);
        assert_eq!(c.stats().splits, 1);
        // All five entities survive, and the groups are separated.
        assert_eq!(t.entity_count(), 5);
        let homes: Vec<SegmentId> = [0u64, 2, 4]
            .iter()
            .map(|i| t.location(EntityId(*i)).unwrap())
            .collect();
        assert!(homes.windows(2).all(|w| w[0] == w[1]), "cameras together");
        let drives: Vec<SegmentId> = [1u64, 3]
            .iter()
            .map(|i| t.location(EntityId(*i)).unwrap())
            .collect();
        assert!(drives.windows(2).all(|w| w[0] == w[1]), "drives together");
        assert_ne!(homes[0], drives[0], "groups separated");
    }

    #[test]
    fn split_preserves_entity_multiset() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(8, 1.0); // w=1: never creates second partition
        for i in 0..30 {
            let attrs = [format!("a{}", i % 5), "common".to_owned()];
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let e = make(&mut t, i, &refs);
            c.insert(&mut t, e).unwrap();
        }
        assert_eq!(t.entity_count(), 30);
        assert!(c.stats().splits >= 1);
        // Catalog entity totals match the table.
        let total: u64 = c.catalog().iter().map(|m| m.entities).sum();
        assert_eq!(total, 30);
        // Every entity is where the locator says, in a cataloged partition.
        for i in 0..30 {
            let seg = t.location(EntityId(i)).unwrap();
            assert!(c.catalog().get(seg).is_some());
        }
    }

    #[test]
    fn delete_drops_empty_partition() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["a", "b"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, &["x", "y"]);
        c.insert(&mut t, e).unwrap();
        assert_eq!(c.catalog().len(), 2);
        let e = c.delete(&mut t, EntityId(1)).unwrap();
        assert_eq!(e.id(), EntityId(1));
        assert_eq!(c.catalog().len(), 1);
        assert_eq!(c.stats().partitions_dropped, 1);
        assert!(matches!(
            c.delete(&mut t, EntityId(1)),
            Err(CoreError::Storage(StorageError::NoSuchEntity(_)))
        ));
    }

    #[test]
    fn delete_shrinks_synopsis_exactly() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.9);
        let e = make(&mut t, 1, &["a", "b"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, &["a", "c"]);
        c.insert(&mut t, e).unwrap();
        assert_eq!(c.catalog().len(), 1);
        let seg = t.location(EntityId(1)).unwrap();
        let b_attr = t.catalog().lookup("b").unwrap();
        assert!(c.catalog().get(seg).unwrap().attr_synopsis.contains(b_attr));
        c.delete(&mut t, EntityId(1)).unwrap();
        let m = c.catalog().get(seg).unwrap();
        assert!(!m.attr_synopsis.contains(b_attr), "bit b must clear");
        assert!(m.attr_synopsis.contains(t.catalog().lookup("a").unwrap()));
    }

    #[test]
    fn update_in_place_when_partition_still_wins() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["a", "b", "c"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, &["a", "b", "c"]);
        c.insert(&mut t, e).unwrap();
        let seg = t.location(EntityId(1)).unwrap();
        // Same shape, new value: stays put.
        let mut e = make(&mut t, 1, &["a", "b", "c"]);
        e.set(t.catalog().lookup("a").unwrap(), Value::Int(99));
        let out = c.update(&mut t, e).unwrap();
        assert_eq!(out, InsertOutcome::Inserted(seg));
        assert_eq!(c.stats().update_moves, 0);
        assert_eq!(
            t.get(EntityId(1)).unwrap().get(t.catalog().lookup("a").unwrap()),
            Some(&Value::Int(99))
        );
    }

    #[test]
    fn update_moves_when_shape_changes() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["cam1", "cam2", "cam3"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 2, &["cam1", "cam2", "cam3"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 3, &["hdd1", "hdd2", "hdd3"]);
        c.insert(&mut t, e).unwrap();
        let e = make(&mut t, 4, &["hdd1", "hdd2", "hdd3"]);
        c.insert(&mut t, e).unwrap();
        let hdd_seg = t.location(EntityId(3)).unwrap();
        // Entity 1 mutates into a drive: must move to the drive partition.
        let e = make(&mut t, 1, &["hdd1", "hdd2", "hdd3"]);
        let out = c.update(&mut t, e).unwrap();
        assert_eq!(out, InsertOutcome::Inserted(hdd_seg));
        assert_eq!(t.location(EntityId(1)), Some(hdd_seg));
        assert_eq!(c.stats().update_moves, 1);
        assert_eq!(c.stats().updates, 1);
        // insert/delete counters were not inflated by the internal move.
        assert_eq!(c.stats().inserts, 4);
        assert_eq!(c.stats().deletes, 0);
    }

    #[test]
    fn update_of_missing_entity_fails() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 9, &["a"]);
        assert!(matches!(
            c.update(&mut t, e),
            Err(CoreError::Storage(StorageError::NoSuchEntity(_)))
        ));
    }

    #[test]
    fn weight_zero_builds_only_homogeneous_partitions() {
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.0);
        // Three shapes, interleaved.
        let shapes: [&[&str]; 3] =
            [&["a", "b"], &["a", "b", "c"], &["x"]];
        for i in 0..30u64 {
            let shape = shapes[(i % 3) as usize];
            let e = make(&mut t, i, shape);
            c.insert(&mut t, e).unwrap();
        }
        assert_eq!(c.catalog().len(), 3);
        for m in c.catalog().iter() {
            assert_eq!(m.sparseness(), 0.0, "w=0 ⇒ perfectly dense partitions");
        }
    }

    #[test]
    fn events_record_latency_and_splits() {
        let mut t = UniversalTable::new(256);
        let mut c = Cinderella::new(Config {
            capacity: Capacity::MaxEntities(2),
            weight: 1.0,
            record_events: true,
            ..Config::default()
        });
        for i in 0..3 {
            let e = make(&mut t, i, &["a"]);
            c.insert(&mut t, e).unwrap();
        }
        let events = c.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0].outcome, InsertOutcome::NewPartition(_)));
        assert!(matches!(events[1].outcome, InsertOutcome::Inserted(_)));
        assert!(events[2].outcome.is_split());
    }

    #[test]
    fn split_forces_overflow_when_neither_seed_fits() {
        use cind_model::SizeModel;
        // Capacity in cells: 11. e1 = {a0..a3}, e2 = {a4..a7} (4 cells
        // each), e3 = {a0..a7} (8 cells). The third insert overflows and
        // splits; e3 then fits neither seed partition (4 + 8 = 12 > 11),
        // so it must be force-placed rather than cascade.
        let mut t = UniversalTable::new(256);
        for i in 0..8 {
            t.catalog_mut().intern(&format!("a{i}"));
        }
        let mut c = Cinderella::new(Config {
            capacity: Capacity::MaxSize(11),
            size_model: SizeModel::Cells,
            weight: 1.0,
            ..Config::default()
        });
        let ent = |id: u64, range: std::ops::Range<u32>| {
            Entity::new(
                EntityId(id),
                range.map(|a| (cind_model::AttrId(a), Value::Int(1))),
            )
            .unwrap()
        };
        c.insert(&mut t, ent(1, 0..4)).unwrap();
        c.insert(&mut t, ent(2, 4..8)).unwrap();
        let out = c.insert(&mut t, ent(3, 0..8)).unwrap();
        assert!(out.is_split());
        assert_eq!(c.stats().forced_overflows, 1);
        assert_eq!(t.entity_count(), 3);
        // One partition exceeds the limit (the forced one) — data is never
        // lost to enforce the bound.
        let oversize = c.catalog().iter().filter(|m| m.size > 11).count();
        assert_eq!(oversize, 1);
    }

    #[test]
    fn split_starter_survives_starter_deletion() {
        // Delete both split starters, then overflow the partition: the
        // starter pair must have been backfilled so the split still works.
        let mut t = UniversalTable::new(256);
        for i in 0..8 {
            t.catalog_mut().intern(&format!("a{i}"));
        }
        let mut c = cindy(4, 1.0);
        let ent = |id: u64, attrs: &[u32]| {
            Entity::new(
                EntityId(id),
                attrs.iter().map(|&a| (cind_model::AttrId(a), Value::Int(1))),
            )
            .unwrap()
        };
        c.insert(&mut t, ent(0, &[0, 1])).unwrap(); // starter A
        c.insert(&mut t, ent(1, &[2, 3])).unwrap(); // starter B
        c.insert(&mut t, ent(2, &[0, 1])).unwrap();
        c.insert(&mut t, ent(3, &[2, 3])).unwrap();
        assert_eq!(c.catalog().len(), 1);
        // Remove the original starters.
        c.delete(&mut t, EntityId(0)).unwrap();
        c.delete(&mut t, EntityId(1)).unwrap();
        // Refill and overflow: offers backfill the pair, split succeeds.
        c.insert(&mut t, ent(4, &[0, 1])).unwrap();
        c.insert(&mut t, ent(5, &[2, 3])).unwrap();
        let out = c.insert(&mut t, ent(6, &[0, 1])).unwrap();
        assert!(out.is_split());
        assert_eq!(t.entity_count(), 5);
        let total: u64 = c.catalog().iter().map(|m| m.entities).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_entity_joins_first_partition() {
        // An entity with no attributes rates 0 against everything —
        // Algorithm 1's `r_best < 0` is false, so it joins the best-rated
        // (here: first) partition rather than opening a new one.
        let mut t = UniversalTable::new(256);
        let mut c = cindy(100, 0.5);
        let e = make(&mut t, 1, &["a", "b"]);
        c.insert(&mut t, e).unwrap();
        let out = c
            .insert(&mut t, Entity::empty(EntityId(2)))
            .unwrap();
        assert!(matches!(out, InsertOutcome::Inserted(_)));
        assert_eq!(c.catalog().len(), 1);
        assert_eq!(t.entity_count(), 2);
    }

    #[test]
    fn byte_capacity_splits_too() {
        use cind_model::SizeModel;
        let mut t = UniversalTable::new(256);
        let mut c = Cinderella::new(Config {
            capacity: Capacity::MaxSize(64),
            size_model: SizeModel::Bytes,
            weight: 1.0,
            ..Config::default()
        });
        // Each entity is 16 bytes (two ints): five of them exceed 64 bytes.
        for i in 0..5 {
            let e = make(&mut t, i, &["a", "b"]);
            c.insert(&mut t, e).unwrap();
        }
        assert!(c.stats().splits >= 1);
        assert_eq!(t.entity_count(), 5);
        let total: u64 = c.catalog().iter().map(|m| m.entities).sum();
        assert_eq!(total, 5);
    }
}
