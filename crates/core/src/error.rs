//! Core-layer errors.

use cind_model::ModelError;
use cind_storage::StorageError;

/// Errors surfaced by the partitioner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// The storage layer failed.
    Storage(StorageError),
    /// The model layer failed.
    Model(ModelError),
    /// A structural invariant the partitioner relies on did not hold —
    /// e.g. the catalog lost a partition the rating scan just returned.
    /// Always a bug; surfaced as a typed error so a server turns it into
    /// an error frame instead of tearing the whole process down.
    Invariant(&'static str),
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Model(e) => write!(f, "model: {e}"),
            CoreError::Invariant(what) => write!(f, "invariant violated: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Invariant(_) => None,
        }
    }
}
