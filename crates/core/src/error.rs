//! Core-layer errors.

use cind_model::ModelError;
use cind_storage::StorageError;

/// Errors surfaced by the partitioner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// The storage layer failed.
    Storage(StorageError),
    /// The model layer failed.
    Model(ModelError),
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Model(e) => write!(f, "model: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Model(e) => Some(e),
        }
    }
}
