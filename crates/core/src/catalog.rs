//! The partition catalog: synopses, sizes, starters, candidate index.

use std::collections::{BTreeMap, BTreeSet};

use cind_bitset::BitSetOps;

use cind_model::{EntityId, Synopsis};
use cind_storage::SegmentId;

use crate::rating::{global_rating, RatingInputs};
use crate::starters::SplitStarters;

/// Catalog entry of one partition.
#[derive(Clone, Debug)]
pub struct PartitionMeta {
    /// The backing storage segment.
    pub segment: SegmentId,
    /// Synopsis in *rating* space (attributes in entity-based mode, queries
    /// in workload-based mode). Exact: maintained by reference counts, so
    /// bits clear when the last member carrying them leaves.
    pub synopsis: Synopsis,
    /// Synopsis in *attribute* space, used for query-time pruning. Equals
    /// `synopsis` in entity-based mode.
    pub attr_synopsis: Synopsis,
    /// `SIZE(p)` — sum of member `SIZE(e)` under the configured size model.
    pub size: u64,
    /// Number of member entities.
    pub entities: u64,
    /// The split-starter pair.
    pub starters: SplitStarters,
    rating_counts: Vec<u32>,
    attr_counts: Vec<u32>,
}

impl PartitionMeta {
    fn new(segment: SegmentId) -> Self {
        Self {
            segment,
            synopsis: Synopsis::default(),
            attr_synopsis: Synopsis::default(),
            size: 0,
            entities: 0,
            starters: SplitStarters::new(),
            rating_counts: Vec::new(),
            attr_counts: Vec::new(),
        }
    }

    /// Sparseness of the partition: the fraction of empty cells in the
    /// `entities × attributes(p)` rectangle (Fig. 7(d)). Zero for an empty
    /// or perfectly dense partition.
    ///
    /// Meaningful under the `Cells` size model, where `size` counts filled
    /// cells.
    pub fn sparseness(&self) -> f64 {
        let total = self.entities * u64::from(self.attr_synopsis.cardinality());
        if total == 0 {
            return 0.0;
        }
        1.0 - self.size as f64 / total as f64
    }
}

fn bump(counts: &mut Vec<u32>, synopsis: &mut Synopsis, bits: &Synopsis) {
    for attr in bits.iter() {
        let idx = attr.index() as usize;
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += 1;
        if counts[idx] == 1 {
            synopsis.bits_mut().grow(idx + 1);
            synopsis.bits_mut().insert(attr.index());
        }
    }
}

fn drop_counts(counts: &mut [u32], synopsis: &mut Synopsis, bits: &Synopsis) {
    for attr in bits.iter() {
        let idx = attr.index() as usize;
        assert!(counts.get(idx).copied().unwrap_or(0) > 0, "count underflow at {idx}");
        counts[idx] -= 1;
        if counts[idx] == 0 {
            synopsis.bits_mut().remove(attr.index());
        }
    }
}

/// The partition catalog Cinderella scans on every insert (Algorithm 1,
/// lines 3–7).
///
/// Invariant (property-tested): each partition's synopses equal the OR of
/// its members' synopses, maintained exactly via per-attribute reference
/// counts.
///
/// With `use_index`, an inverted rating-bit → partitions index restricts the
/// scan to *candidate* partitions. Candidates are partitions that could rate
/// `≥ 0`: those sharing a rating bit with the entity, those with `SIZE(p) =
/// 0`, or all of them when `SIZE(e) = 0` (disjoint pairs with both sizes
/// positive always rate strictly negative, so skipping them cannot change
/// the argmax, and both paths visit candidates in ascending segment order so
/// ties resolve identically).
pub struct PartitionCatalog {
    parts: BTreeMap<SegmentId, PartitionMeta>,
    use_index: bool,
    /// rating-bit → segments whose synopsis has (or once had) the bit.
    /// Entries are validated against the live synopsis at query time and
    /// pruned when a partition is removed.
    postings: Vec<Vec<SegmentId>>,
    /// Partitions with `SIZE(p) = 0` (rate neutrally against anything).
    zero_size: BTreeSet<SegmentId>,
}

impl PartitionCatalog {
    /// Creates an empty catalog; `use_index` enables the candidate index.
    pub fn new(use_index: bool) -> Self {
        Self {
            parts: BTreeMap::new(),
            use_index,
            postings: Vec::new(),
            zero_size: BTreeSet::new(),
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterates partitions in ascending segment order.
    pub fn iter(&self) -> impl Iterator<Item = &PartitionMeta> {
        self.parts.values()
    }

    /// Looks up one partition.
    pub fn get(&self, seg: SegmentId) -> Option<&PartitionMeta> {
        self.parts.get(&seg)
    }

    /// Mutable lookup (starters maintenance).
    pub fn get_mut(&mut self, seg: SegmentId) -> Option<&mut PartitionMeta> {
        self.parts.get_mut(&seg)
    }

    /// Registers a fresh, empty partition backed by `seg`.
    ///
    /// # Panics
    /// Panics if `seg` is already cataloged.
    pub fn create_partition(&mut self, seg: SegmentId) {
        let prev = self.parts.insert(seg, PartitionMeta::new(seg));
        assert!(prev.is_none(), "partition {seg} already cataloged");
        self.zero_size.insert(seg);
    }

    /// Adopts a ready-made partition under a (new) segment id — the bulk
    /// loader's stitch path. The metadata keeps its counts, synopses, and
    /// starters; only the segment id is rebound.
    ///
    /// # Panics
    /// Panics if `seg` is already cataloged.
    pub(crate) fn adopt(&mut self, mut meta: PartitionMeta, seg: SegmentId) {
        assert!(
            !self.parts.contains_key(&seg),
            "partition {seg} already cataloged"
        );
        meta.segment = seg;
        if self.use_index {
            for bit in meta.synopsis.iter() {
                let idx = bit.index() as usize;
                if self.postings.len() <= idx {
                    self.postings.resize_with(idx + 1, Vec::new);
                }
                self.postings[idx].push(seg);
            }
        }
        if meta.size == 0 {
            self.zero_size.insert(seg);
        }
        self.parts.insert(seg, meta);
    }

    /// Removes a partition from the catalog, returning its metadata.
    ///
    /// # Panics
    /// Panics if `seg` is not cataloged.
    pub fn remove_partition(&mut self, seg: SegmentId) -> PartitionMeta {
        let meta = self.parts.remove(&seg).expect("partition cataloged");
        self.zero_size.remove(&seg);
        if self.use_index {
            for bit in meta.synopsis.iter() {
                if let Some(list) = self.postings.get_mut(bit.index() as usize) {
                    list.retain(|s| *s != seg);
                }
            }
        }
        meta
    }

    /// Accounts a new member entity of partition `seg`.
    ///
    /// `offer_starters` runs the Algorithm 1 starter update; pass `false`
    /// when the caller already offered the entity (the insert path offers
    /// *before* the capacity check, per the paper).
    pub fn add_entity(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rating_syn: &Synopsis,
        attr_syn: &Synopsis,
        size: u64,
        offer_starters: bool,
    ) {
        let use_index = self.use_index;
        let meta = self.parts.get_mut(&seg).expect("partition cataloged");
        let new_bits: Vec<u32> = rating_syn
            .iter()
            .filter(|a| !meta.synopsis.contains(*a))
            .map(|a| a.index())
            .collect();
        bump(&mut meta.rating_counts, &mut meta.synopsis, rating_syn);
        bump(&mut meta.attr_counts, &mut meta.attr_synopsis, attr_syn);
        meta.entities += 1;
        meta.size += size;
        if offer_starters {
            meta.starters.offer(id, rating_syn);
        }
        let now_positive = meta.size > 0;
        if use_index {
            for bit in new_bits {
                let idx = bit as usize;
                if self.postings.len() <= idx {
                    self.postings.resize_with(idx + 1, Vec::new);
                }
                self.postings[idx].push(seg);
            }
        }
        if now_positive {
            self.zero_size.remove(&seg);
        }
    }

    /// Accounts the removal of a member entity. Returns the remaining
    /// member count (callers drop the partition at zero).
    pub fn remove_entity(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rating_syn: &Synopsis,
        attr_syn: &Synopsis,
        size: u64,
    ) -> u64 {
        let meta = self.parts.get_mut(&seg).expect("partition cataloged");
        drop_counts(&mut meta.rating_counts, &mut meta.synopsis, rating_syn);
        drop_counts(&mut meta.attr_counts, &mut meta.attr_synopsis, attr_syn);
        meta.entities -= 1;
        meta.size -= size;
        meta.starters.vacate(id);
        // Stale postings for cleared bits are tolerated (validated on read).
        if meta.size == 0 {
            self.zero_size.insert(seg);
        }
        meta.entities
    }

    /// Algorithm 1 lines 3–7: scans the catalog and returns the best-rated
    /// partition for the entity, with its rating, plus the number of
    /// ratings computed. Ties go to the lowest segment id (first in scan
    /// order). Returns `None` when the catalog is empty.
    pub fn best_partition(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        if self.use_index {
            self.best_indexed(rating_syn, size_e, weight)
        } else {
            self.best_over(self.parts.values(), rating_syn, size_e, weight)
        }
    }

    /// Best-rated partition among an explicit target list (restricted
    /// insert during a split). Targets are rated in the given order; ties
    /// keep the earlier target.
    pub fn best_among(
        &self,
        targets: &[SegmentId],
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        self.best_over(
            targets.iter().filter_map(|s| self.parts.get(s)),
            rating_syn,
            size_e,
            weight,
        )
    }

    fn best_over<'a>(
        &self,
        parts: impl Iterator<Item = &'a PartitionMeta>,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for meta in parts {
            let inputs = RatingInputs::compute(rating_syn, size_e, &meta.synopsis, meta.size);
            let r = global_rating(weight, &inputs);
            ratings += 1;
            if best.is_none_or(|(_, rb)| rb < r) {
                best = Some((meta.segment, r));
            }
        }
        (best, ratings)
    }

    fn best_indexed(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        if size_e == 0 {
            // Every partition rates neutrally; scan all to match the
            // unindexed argmax exactly.
            return self.best_over(self.parts.values(), rating_syn, size_e, weight);
        }
        // Cost gate: merging the posting lists costs their total length
        // (entries overlap — e.g. all 16 lineitem columns point at the same
        // partitions — so the candidate set is usually much smaller); the
        // plain scan costs one rating per partition. Entities carrying a
        // near-universal attribute produce posting work proportional to
        // attrs × partitions, so the index can only lose there — fall
        // back. It wins when the entity has only group-specific attributes
        // (e.g. every TPC-H row: its columns map to partitions of its own
        // relation only).
        let mut work = self.zero_size.len();
        for bit in rating_syn.iter() {
            work += self
                .postings
                .get(bit.index() as usize)
                .map_or(0, Vec::len);
            if work >= self.parts.len() {
                return self.best_over(self.parts.values(), rating_syn, size_e, weight);
            }
        }
        let mut candidates: Vec<SegmentId> = self.zero_size.iter().copied().collect();
        for bit in rating_syn.iter() {
            if let Some(list) = self.postings.get(bit.index() as usize) {
                // Entries are not validated against the live synopsis: a
                // stale entry is a live partition that lost this bit, and
                // rating a live partition is always sound — if it shares no
                // bit with the entity it rates strictly negative and cannot
                // displace a true candidate.
                candidates.extend_from_slice(list);
            }
        }
        // Ascending segment order, deduped — the plain scan's tie-break.
        candidates.sort_unstable();
        candidates.dedup();
        let (best, ratings) = self.best_over(
            candidates.iter().filter_map(|s| self.parts.get(s)),
            rating_syn,
            size_e,
            weight,
        );
        // Non-candidates rate strictly negative; if no candidate exists the
        // best over all partitions is negative too, which the caller maps to
        // "create a new partition" — but Algorithm 1's scan would still
        // *pick* one. Report the lowest-id partition with rating < 0 so both
        // paths return identical results even when the caller ignores it.
        if best.is_none() && !self.parts.is_empty() {
            return self.best_over(
                self.parts.values().take(1),
                rating_syn,
                size_e,
                weight,
            );
        }
        (best, ratings)
    }

    /// View for the query planner: `(segment, attribute synopsis, SIZE(p))`
    /// per partition, ascending by segment.
    pub fn pruning_view(&self) -> impl Iterator<Item = (SegmentId, &Synopsis, u64)> {
        self.parts
            .values()
            .map(|m| (m.segment, &m.attr_synopsis, m.size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(32, bits.iter().copied())
    }

    fn add(
        cat: &mut PartitionCatalog,
        seg: SegmentId,
        id: u64,
        bits: &[u32],
        size: u64,
    ) {
        let s = syn(bits);
        cat.add_entity(seg, EntityId(id), &s, &s, size, true);
    }

    #[test]
    fn synopsis_is_or_of_members_with_refcounts() {
        let mut cat = PartitionCatalog::new(false);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let m = cat.get(SegmentId(0)).unwrap();
        assert_eq!(m.synopsis, syn(&[0, 1, 2]));
        assert_eq!(m.entities, 2);
        assert_eq!(m.size, 4);
        // Removing entity 1 clears bit 0 but keeps shared bit 1.
        let s1 = syn(&[0, 1]);
        let left = cat.remove_entity(SegmentId(0), EntityId(1), &s1, &s1, 2);
        assert_eq!(left, 1);
        let m = cat.get(SegmentId(0)).unwrap();
        assert_eq!(m.synopsis, syn(&[1, 2]));
        assert_eq!(m.size, 2);
    }

    #[test]
    fn best_partition_prefers_overlap() {
        let mut cat = PartitionCatalog::new(false);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0, 1, 2], 3);
        add(&mut cat, SegmentId(1), 2, &[8, 9], 2);
        let (best, ratings) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        let (seg, r) = best.unwrap();
        assert_eq!(seg, SegmentId(0));
        assert!(r > 0.0);
        assert_eq!(ratings, 2);
    }

    #[test]
    fn empty_catalog_returns_none() {
        let cat = PartitionCatalog::new(false);
        let (best, ratings) = cat.best_partition(&syn(&[0]), 1, 0.5);
        assert!(best.is_none());
        assert_eq!(ratings, 0);
    }

    #[test]
    fn ties_go_to_lowest_segment() {
        let mut cat = PartitionCatalog::new(false);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(1), 2, &[0, 1], 2);
        let (best, _) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(0));
    }

    #[test]
    fn indexed_matches_unindexed() {
        // Mirror a mutation sequence across both catalogs and compare the
        // argmax for several probe entities.
        let probes: Vec<Vec<u32>> =
            vec![vec![0, 1], vec![5], vec![2, 9], vec![], vec![0, 9, 11]];
        let mut plain = PartitionCatalog::new(false);
        let mut indexed = PartitionCatalog::new(true);
        for cat in [&mut plain, &mut indexed] {
            for s in 0..4u32 {
                cat.create_partition(SegmentId(s));
            }
            add(cat, SegmentId(0), 1, &[0, 1, 2], 3);
            add(cat, SegmentId(1), 2, &[5, 6], 2);
            add(cat, SegmentId(2), 3, &[9, 10, 11], 3);
            add(cat, SegmentId(3), 4, &[0, 9], 2);
            // Shrink partition 0 so bit 2 clears (stale posting for idx 2).
            let s = syn(&[0, 1, 2]);
            cat.remove_entity(SegmentId(0), EntityId(1), &s, &s, 3);
            add(cat, SegmentId(0), 5, &[0, 1], 2);
        }
        for probe in &probes {
            let s = syn(probe);
            let size = probe.len() as u64;
            for w in [0.0, 0.2, 0.5, 1.0] {
                let (a, _) = plain.best_partition(&s, size, w);
                let (b, _) = indexed.best_partition(&s, size, w);
                let (sa, ra) = a.unwrap();
                let (sb, rb) = b.unwrap();
                if ra >= 0.0 {
                    // Non-negative best: the algorithm inserts into it, so
                    // the argmax must match exactly.
                    assert_eq!((sa, ra), (sb, rb), "probe {probe:?} w={w}");
                } else {
                    // Negative best: a new partition is created either way;
                    // only the sign must agree.
                    assert!(rb < 0.0, "probe {probe:?} w={w}: {ra} vs {rb}");
                }
            }
        }
    }

    #[test]
    fn indexed_scans_fewer_partitions() {
        let mut cat = PartitionCatalog::new(true);
        for s in 0..10u32 {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), &[s, s + 10], 2);
        }
        let (_, ratings) = cat.best_partition(&syn(&[3]), 1, 0.5);
        assert!(ratings < 10, "index should prune the scan, rated {ratings}");
    }

    #[test]
    fn remove_partition_cleans_postings() {
        let mut cat = PartitionCatalog::new(true);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0], 1);
        add(&mut cat, SegmentId(1), 2, &[0, 1], 2);
        let meta = cat.remove_partition(SegmentId(0));
        assert_eq!(meta.entities, 1);
        let (best, _) = cat.best_partition(&syn(&[0]), 1, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(1));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn sparseness_of_partition() {
        let mut cat = PartitionCatalog::new(false);
        cat.create_partition(SegmentId(0));
        // 2 entities, 3 partition attrs, 4 filled cells → 1 - 4/6.
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let m = cat.get(SegmentId(0)).unwrap();
        assert!((m.sparseness() - (1.0 - 4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_size_partitions_stay_candidates() {
        let mut cat = PartitionCatalog::new(true);
        cat.create_partition(SegmentId(0));
        // Partition 0 holds one zero-size entity with an empty synopsis.
        cat.add_entity(SegmentId(0), EntityId(1), &syn(&[]), &syn(&[]), 0, true);
        // A disjoint probe should still see partition 0 (rating 0 ≥ 0
        // beats creating a new partition in Algorithm 1's comparison).
        let (best, _) = cat.best_partition(&syn(&[5]), 1, 0.5);
        let (seg, r) = best.unwrap();
        assert_eq!(seg, SegmentId(0));
        assert_eq!(r, 0.0);
    }
}
