//! The partition catalog: synopses, sizes, starters, candidate index.

use std::collections::BTreeMap;

use cind_bitset::{words, BitSetOps, FixedBitSet};

use cind_model::{EntityId, Synopsis};
use cind_storage::SegmentId;

use crate::arena::{PresenceIndex, SynopsisArena};
use crate::config::{IndexMode, IndexTier};
use crate::rating::{global_rating, RatingInputs};
use crate::starters::SplitStarters;
use crate::tier::{Space, TierParams, TierSnapshot, TieredIndex, SLOTS_PER_GROUP};
use crate::validate::InvariantViolation;

/// Catalog entry of one partition.
#[derive(Clone, Debug)]
pub struct PartitionMeta {
    /// The backing storage segment.
    pub segment: SegmentId,
    /// Synopsis in *attribute* space, used for query-time pruning (and
    /// equal to the rating synopsis in entity-based mode). Exact:
    /// maintained by reference counts, so bits clear when the last member
    /// carrying them leaves.
    pub attr_synopsis: Synopsis,
    /// `SIZE(p)` — sum of member `SIZE(e)` under the configured size model.
    pub size: u64,
    /// Number of member entities.
    pub entities: u64,
    /// The split-starter pair.
    pub starters: SplitStarters,
    /// Per-attribute member counts in rating space. The set `{i :
    /// rating_counts[i] > 0}` IS the partition's rating synopsis; the
    /// packed copy the hot loops scan lives in the catalog's
    /// [`SynopsisArena`] row of this partition.
    rating_counts: Vec<u32>,
    attr_counts: Vec<u32>,
    /// The partition's arena slot (meaningless while the meta is detached
    /// from a catalog, e.g. between `remove_partition` and `adopt`).
    slot: usize,
}

impl PartitionMeta {
    fn new(segment: SegmentId, slot: usize) -> Self {
        Self {
            segment,
            attr_synopsis: Synopsis::default(),
            size: 0,
            entities: 0,
            starters: SplitStarters::new(),
            rating_counts: Vec::new(),
            attr_counts: Vec::new(),
            slot,
        }
    }

    /// Materialises the partition's synopsis in *rating* space (attributes
    /// in entity-based mode, queries in workload-based mode) from the
    /// reference counts. The hot paths never call this — they sweep the
    /// packed arena rows instead; it serves cold passes (merge rating) and
    /// tests.
    pub fn rating_synopsis(&self) -> Synopsis {
        Synopsis::from_bits(
            self.rating_counts.len(),
            self.rating_counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, _)| i as u32),
        )
    }

    /// The rating-space bits, ascending — the refcount view without
    /// materialising a bitset.
    fn rating_bits(&self) -> impl Iterator<Item = u32> + '_ {
        self.rating_counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| i as u32)
    }

    /// Sparseness of the partition: the fraction of empty cells in the
    /// `entities × attributes(p)` rectangle (Fig. 7(d)). Zero for an empty
    /// or perfectly dense partition.
    ///
    /// Meaningful under the `Cells` size model, where `size` counts filled
    /// cells.
    pub fn sparseness(&self) -> f64 {
        let total = self.entities * u64::from(self.attr_synopsis.cardinality());
        if total == 0 {
            return 0.0;
        }
        1.0 - self.size as f64 / total as f64
    }
}

/// Bumps the per-attribute refcounts for `bits`, reporting each count that
/// went 0→1 (a newly present attribute) to `on_new`.
fn bump(counts: &mut Vec<u32>, bits: &Synopsis, mut on_new: impl FnMut(u32)) {
    for attr in bits.iter() {
        let idx = attr.index() as usize;
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += 1;
        if counts[idx] == 1 {
            on_new(attr.index());
        }
    }
}

/// Drops the refcounts for `bits`, reporting each count that went 1→0 (an
/// attribute no member carries any more) to `on_clear`.
fn drop_counts(counts: &mut [u32], bits: &Synopsis, mut on_clear: impl FnMut(u32)) {
    for attr in bits.iter() {
        let idx = attr.index() as usize;
        assert!(counts.get(idx).copied().unwrap_or(0) > 0, "count underflow at {idx}");
        counts[idx] -= 1;
        if counts[idx] == 0 {
            on_clear(attr.index());
        }
    }
}

/// The partition catalog Cinderella scans on every insert (Algorithm 1,
/// lines 3–7).
///
/// Invariant (property-tested): each partition's synopses equal the OR of
/// its members' synopses, maintained exactly via per-attribute reference
/// counts; the packed arena row and the presence bitmaps mirror the
/// refcount view exactly.
///
/// The two hot loops never walk the `BTreeMap`:
///
/// * the rating scan sweeps the [`SynopsisArena`] — one contiguous
///   fixed-stride row per partition, rated with a single fused word pass —
///   and, with the index on, first ORs per-attribute *presence bitmaps*
///   into the candidate set (partitions that could rate `≥ 0`: those
///   sharing a rating bit with the entity, plus those with `SIZE(p) = 0`);
/// * the planner's survivor set is the OR of `|q|` presence bitmaps in
///   attribute space ([`PartitionCatalog::plan_survivors`]).
///
/// Candidate soundness: with `w < 1` a disjoint pair with both sizes
/// positive rates strictly negative, so skipping non-candidates cannot
/// change a non-negative argmax. At `w = 1` negative evidence has weight
/// zero and disjoint pairs rate `0`, so the indexed path falls back to the
/// full sweep (as it does for `SIZE(e) = 0`, where every partition rates
/// neutrally).
#[derive(Clone, Debug)]
pub struct PartitionCatalog {
    parts: BTreeMap<SegmentId, PartitionMeta>,
    mode: IndexMode,
    /// Packed rating synopses + `SIZE(p)` + segment, one slot per
    /// partition.
    arena: SynopsisArena,
    /// rating-bit → slot bitmap (candidate index for the insert scan).
    rating_presence: PresenceIndex,
    /// attribute-bit → slot bitmap (survivor index for the planner).
    attr_presence: PresenceIndex,
    /// Slots of partitions with `SIZE(p) = 0` (rate neutrally against
    /// anything, so they are always candidates).
    zero_size: FixedBitSet,
    /// The configured index-tier knob (`exact`, `tiered`, or the
    /// partition-count-gated `auto` ratchet).
    tier: IndexTier,
    /// Knobs for the tiered index, applied on (re)activation.
    tier_params: TierParams,
    /// The approximate tier. While active, the exact presence bitmaps
    /// above are dropped (that memory is what the tier exists to save) and
    /// every refcount transition routes here instead.
    tiered: Option<TieredIndex>,
}

impl PartitionCatalog {
    /// Creates an empty catalog with the given candidate-index mode and
    /// the exact presence tier.
    pub fn new(mode: IndexMode) -> Self {
        Self::with_tier(mode, IndexTier::Exact)
    }

    /// Creates an empty catalog with the given candidate-index mode and
    /// index tier.
    pub fn with_tier(mode: IndexMode, tier: IndexTier) -> Self {
        Self::with_tier_params(mode, tier, TierParams::default())
    }

    /// [`PartitionCatalog::with_tier`] with explicit tier knobs (tests and
    /// benches tune group filter sizes and hot-tier capacity).
    pub fn with_tier_params(mode: IndexMode, tier: IndexTier, params: TierParams) -> Self {
        let mut cat = Self {
            parts: BTreeMap::new(),
            mode,
            arena: SynopsisArena::new(),
            rating_presence: PresenceIndex::new(),
            attr_presence: PresenceIndex::new(),
            zero_size: FixedBitSet::default(),
            tier,
            tier_params: params,
            tiered: None,
        };
        if tier == IndexTier::Tiered {
            cat.tiered = Some(TieredIndex::new(params));
        }
        cat
    }

    /// The configured index-tier knob.
    pub fn tier(&self) -> IndexTier {
        self.tier
    }

    /// Whether the approximate tier is currently the live index (always
    /// under `tiered`; under `auto` once the partition count crossed
    /// [`IndexTier::AUTO_MIN_PARTITIONS`] — a one-way ratchet).
    pub fn tier_active(&self) -> bool {
        self.tiered.is_some()
    }

    /// Switches the index tier at runtime. `exact` rebuilds the exact
    /// presence bitmaps from the refcount state and drops the filters;
    /// `tiered` builds the filters from the refcount state and drops the
    /// bitmaps; `auto` arms the partition-count ratchet (an already-active
    /// tier stays active).
    pub fn set_tier(&mut self, tier: IndexTier) {
        self.tier = tier;
        match tier {
            IndexTier::Exact => self.deactivate_tiered(),
            IndexTier::Tiered => self.activate_tiered(),
            IndexTier::Auto => {
                if self.parts.len() >= IndexTier::AUTO_MIN_PARTITIONS {
                    self.activate_tiered();
                }
            }
        }
    }

    /// Builds the approximate tier from the exact refcount state and drops
    /// the exact presence bitmaps. Idempotent.
    fn activate_tiered(&mut self) {
        if self.tiered.is_some() {
            return;
        }
        let mut t = TieredIndex::new(self.tier_params);
        for slot in self.arena.live_slots() {
            t.on_slot_alloc(slot);
        }
        for meta in self.parts.values() {
            for bit in meta.rating_bits() {
                t.set(Space::Rating, bit, meta.slot);
            }
            for bit in meta.attr_synopsis.iter() {
                t.set(Space::Attr, bit.index(), meta.slot);
            }
        }
        self.rating_presence = PresenceIndex::new();
        self.attr_presence = PresenceIndex::new();
        self.tiered = Some(t);
        self.service_tier();
    }

    /// Rebuilds the exact presence bitmaps from the refcount state and
    /// drops the approximate tier. Idempotent.
    fn deactivate_tiered(&mut self) {
        if self.tiered.take().is_none() {
            return;
        }
        let Self { parts, rating_presence, attr_presence, .. } = self;
        for meta in parts.values() {
            for bit in meta.rating_bits() {
                rating_presence.set(bit, meta.slot);
            }
            for bit in meta.attr_synopsis.iter() {
                attr_presence.set(bit.index(), meta.slot);
            }
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterates partitions in ascending segment order.
    pub fn iter(&self) -> impl Iterator<Item = &PartitionMeta> {
        self.parts.values()
    }

    /// Looks up one partition.
    pub fn get(&self, seg: SegmentId) -> Option<&PartitionMeta> {
        self.parts.get(&seg)
    }

    /// Mutable lookup (starters maintenance).
    pub fn get_mut(&mut self, seg: SegmentId) -> Option<&mut PartitionMeta> {
        self.parts.get_mut(&seg)
    }

    /// Registers a fresh, empty partition backed by `seg`.
    ///
    /// # Panics
    /// Panics if `seg` is already cataloged.
    pub fn create_partition(&mut self, seg: SegmentId) {
        let slot = self.arena.alloc(seg);
        let prev = self.parts.insert(seg, PartitionMeta::new(seg, slot));
        assert!(prev.is_none(), "partition {seg} already cataloged");
        self.zero_size.grow(slot + 1);
        self.zero_size.insert(slot as u32);
        if let Some(t) = self.tiered.as_mut() {
            t.on_slot_alloc(slot);
        } else if self.tier == IndexTier::Auto
            && self.parts.len() >= IndexTier::AUTO_MIN_PARTITIONS
        {
            self.activate_tiered();
        }
    }

    /// Adopts a ready-made partition under a (new) segment id — the bulk
    /// loader's stitch path. The metadata keeps its counts, synopses, and
    /// starters; only the segment id (and arena slot) is rebound.
    ///
    /// # Panics
    /// Panics if `seg` is already cataloged.
    pub(crate) fn adopt(&mut self, mut meta: PartitionMeta, seg: SegmentId) {
        assert!(
            !self.parts.contains_key(&seg),
            "partition {seg} already cataloged"
        );
        meta.segment = seg;
        let slot = self.arena.alloc(seg);
        meta.slot = slot;
        if let Some(t) = self.tiered.as_mut() {
            t.on_slot_alloc(slot);
        }
        for bit in meta.rating_bits() {
            self.arena.insert_bit(slot, bit);
            match self.tiered.as_mut() {
                Some(t) => t.set(Space::Rating, bit, slot),
                None => self.rating_presence.set(bit, slot),
            }
        }
        for bit in meta.attr_synopsis.iter() {
            match self.tiered.as_mut() {
                Some(t) => t.set(Space::Attr, bit.index(), slot),
                None => self.attr_presence.set(bit.index(), slot),
            }
        }
        self.arena.set_size(slot, meta.size);
        self.zero_size.grow(slot + 1);
        if meta.size == 0 {
            self.zero_size.insert(slot as u32);
        }
        self.parts.insert(seg, meta);
        self.service_tier();
    }

    /// Removes a partition from the catalog, returning its metadata.
    ///
    /// # Panics
    /// Panics if `seg` is not cataloged.
    pub fn remove_partition(&mut self, seg: SegmentId) -> PartitionMeta {
        let meta = self.parts.remove(&seg).expect("partition cataloged");
        let slot = meta.slot;
        match self.tiered.as_mut() {
            // The tier drops the whole slot at once (live mask + hot tier);
            // per-bit clears would only add staleness.
            Some(t) => t.on_slot_release(slot),
            None => {
                for bit in meta.rating_bits() {
                    self.rating_presence.clear(bit, slot);
                }
                for bit in meta.attr_synopsis.iter() {
                    self.attr_presence.clear(bit.index(), slot);
                }
            }
        }
        self.zero_size.remove(slot as u32);
        self.arena.release(slot);
        self.service_tier();
        meta
    }

    /// Accounts a new member entity of partition `seg`.
    ///
    /// `offer_starters` runs the Algorithm 1 starter update; pass `false`
    /// when the caller already offered the entity (the insert path offers
    /// *before* the capacity check, per the paper).
    pub fn add_entity(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rating_syn: &Synopsis,
        attr_syn: &Synopsis,
        size: u64,
        offer_starters: bool,
    ) {
        let Self { parts, arena, rating_presence, attr_presence, zero_size, tiered, .. } =
            self;
        let meta = parts.get_mut(&seg).expect("partition cataloged");
        let slot = meta.slot;
        bump(&mut meta.rating_counts, rating_syn, |bit| {
            arena.insert_bit(slot, bit);
            match tiered.as_mut() {
                Some(t) => t.set(Space::Rating, bit, slot),
                None => rating_presence.set(bit, slot),
            }
        });
        let attr_synopsis = &mut meta.attr_synopsis;
        bump(&mut meta.attr_counts, attr_syn, |bit| {
            attr_synopsis.bits_mut().grow(bit as usize + 1);
            attr_synopsis.bits_mut().insert(bit);
            match tiered.as_mut() {
                Some(t) => t.set(Space::Attr, bit, slot),
                None => attr_presence.set(bit, slot),
            }
        });
        meta.entities += 1;
        meta.size += size;
        arena.set_size(slot, meta.size);
        if offer_starters {
            meta.starters.offer(id, rating_syn);
        }
        if meta.size > 0 {
            zero_size.remove(slot as u32);
        }
        if let Some(t) = tiered.as_mut() {
            t.note_op(slot);
        }
        self.service_tier();
    }

    /// Accounts the removal of a member entity. Returns the remaining
    /// member count (callers drop the partition at zero).
    pub fn remove_entity(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rating_syn: &Synopsis,
        attr_syn: &Synopsis,
        size: u64,
    ) -> u64 {
        let Self { parts, arena, rating_presence, attr_presence, zero_size, tiered, .. } =
            self;
        let meta = parts.get_mut(&seg).expect("partition cataloged");
        let slot = meta.slot;
        drop_counts(&mut meta.rating_counts, rating_syn, |bit| {
            arena.remove_bit(slot, bit);
            match tiered.as_mut() {
                Some(t) => t.clear(Space::Rating, bit, slot),
                None => rating_presence.clear(bit, slot),
            }
        });
        let attr_synopsis = &mut meta.attr_synopsis;
        drop_counts(&mut meta.attr_counts, attr_syn, |bit| {
            attr_synopsis.bits_mut().remove(bit);
            match tiered.as_mut() {
                Some(t) => t.clear(Space::Attr, bit, slot),
                None => attr_presence.clear(bit, slot),
            }
        });
        meta.entities -= 1;
        meta.size -= size;
        arena.set_size(slot, meta.size);
        meta.starters.vacate(id);
        if meta.size == 0 {
            zero_size.grow(slot + 1);
            zero_size.insert(slot as u32);
        }
        let left = meta.entities;
        if let Some(t) = tiered.as_mut() {
            t.note_op(slot);
        }
        self.service_tier();
        left
    }

    /// Whether the rating scan goes through the candidate index.
    fn rate_indexed(&self) -> bool {
        match self.mode {
            IndexMode::On => true,
            IndexMode::Off => false,
            IndexMode::Auto => self.parts.len() >= IndexMode::AUTO_MIN_PARTITIONS,
        }
    }

    /// Algorithm 1 lines 3–7: scans the catalog and returns the best-rated
    /// partition for the entity, with its rating, plus the number of
    /// ratings computed. Ties go to the lowest segment id. Returns `None`
    /// when the catalog is empty.
    pub fn best_partition(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        // Strict negativity of non-candidates needs `SIZE(e) > 0`, `w < 1`,
        // and a non-empty entity synopsis: a zero-size entity rates
        // neutrally everywhere, at `w = 1` negative evidence has weight
        // zero, and an empty entity synopsis rates 0 against any partition
        // whose synopsis is also empty (`|e ∨ p| = 0` — neutral by
        // definition) even when that partition is not in any presence row.
        // In those cases non-candidates can tie the argmax, so only the
        // full sweep is exact.
        if self.rate_indexed() && size_e > 0 && weight < 1.0 && !rating_syn.is_empty() {
            self.best_indexed(rating_syn, size_e, weight)
        } else {
            self.best_sweep(rating_syn, size_e, weight)
        }
    }

    /// Best-rated partition among an explicit target list (restricted
    /// insert during a split). Targets are rated in the given order; ties
    /// keep the earlier target.
    pub fn best_among(
        &self,
        targets: &[SegmentId],
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let e_words = rating_syn.bits().blocks();
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for &seg in targets {
            let Some(meta) = self.parts.get(&seg) else { continue };
            let r = self.rate_slot(meta.slot, e_words, size_e, weight);
            ratings += 1;
            if best.is_none_or(|(_, rb)| rb < r) {
                best = Some((seg, r));
            }
        }
        (best, ratings)
    }

    /// Rates the partition in `slot` against an entity given as raw
    /// synopsis words — one fused kernel pass over the packed row.
    fn rate_slot(&self, slot: usize, e_words: &[u64], size_e: u64, weight: f64) -> f64 {
        let counts = words::fused_counts(e_words, self.arena.row(slot));
        let inputs = RatingInputs::from_fused(counts, size_e, self.arena.size(slot));
        global_rating(weight, &inputs)
    }

    /// The full linear sweep over the packed arena: every live slot is
    /// rated. Slot order is allocation order, not segment order, so the
    /// scan tie-break (lowest segment id among maximal ratings) is applied
    /// explicitly — the winner is order-independent.
    fn best_sweep(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let e_words = rating_syn.bits().blocks();
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for slot in self.arena.live_slots() {
            let r = self.rate_slot(slot, e_words, size_e, weight);
            ratings += 1;
            let seg = self.arena.seg(slot);
            if best.is_none_or(|(bs, br)| br < r || (br == r && seg < bs)) {
                best = Some((seg, r));
            }
        }
        (best, ratings)
    }

    /// The indexed scan: OR the presence bitmaps of the entity's rating
    /// bits (plus the zero-size slots) into the candidate set, then rate
    /// only the candidates. Each candidate is rated exactly once — the
    /// bitmap OR deduplicates partitions that share several attributes
    /// with the entity by construction.
    fn best_indexed(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let mut candidates = self.zero_size.clone();
        match &self.tiered {
            Some(t) => {
                let attrs: Vec<u32> = rating_syn.iter().map(|a| a.index()).collect();
                t.candidates_into(Space::Rating, &attrs, &mut candidates);
            }
            None => self
                .rating_presence
                .union_rows_into(rating_syn.iter().map(|a| a.index()), &mut candidates),
        }

        let e_words = rating_syn.bits().blocks();
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for slot in candidates.iter_ones() {
            let slot = slot as usize;
            let r = self.rate_slot(slot, e_words, size_e, weight);
            ratings += 1;
            let seg = self.arena.seg(slot);
            if best.is_none_or(|(bs, br)| br < r || (br == r && seg < bs)) {
                best = Some((seg, r));
            }
        }
        // Non-candidates rate strictly negative; if no candidate exists the
        // best over all partitions is negative too, which the caller maps to
        // "create a new partition" — but Algorithm 1's scan would still
        // *pick* one. Report the lowest-id partition with rating < 0 so both
        // paths return identical results even when the caller ignores it.
        if best.is_none() {
            if let Some(meta) = self.parts.values().next() {
                let r = self.rate_slot(meta.slot, e_words, size_e, weight);
                return (Some((meta.segment, r)), ratings);
            }
        }
        (best, ratings)
    }

    /// The planner's survivor set for query synopsis `q` via the
    /// attribute-presence bitmaps: segments whose partition shares at least
    /// one attribute with `q` (ascending — the catalog's plan order), plus
    /// the pruned count. Returns `None` when the index mode is `Off`, in
    /// which case callers fall back to the per-partition `is_disjoint`
    /// test over [`PartitionCatalog::pruning_view`].
    ///
    /// Exactness (property-tested): a partition survives the `|p ∧ q| = 0`
    /// test iff it carries one of `q`'s attributes, iff its slot is set in
    /// one of the ORed presence rows.
    pub fn plan_survivors(&self, q: &Synopsis) -> Option<(Vec<SegmentId>, usize)> {
        if self.mode == IndexMode::Off {
            return None;
        }
        let mut acc = FixedBitSet::default();
        match &self.tiered {
            // Tiered: a *superset* of the exact survivor set — filter false
            // positives add scanned partitions, and the executor's per-row
            // `matches` keeps answers identical. Exact-present pairs are
            // never missed (validate checks the implication).
            Some(t) => {
                let attrs: Vec<u32> = q.iter().map(|a| a.index()).collect();
                t.candidates_into(Space::Attr, &attrs, &mut acc);
            }
            None => self
                .attr_presence
                .union_rows_into(q.iter().map(|a| a.index()), &mut acc),
        }
        let mut survivors: Vec<SegmentId> =
            acc.iter_ones().map(|slot| self.arena.seg(slot as usize)).collect();
        survivors.sort_unstable();
        let pruned = self.parts.len() - survivors.len();
        Some((survivors, pruned))
    }

    /// Services the tiered index's deferred maintenance — filter grows and
    /// rebuilds, hot-tier promotions and demotions — using the exact
    /// refcount state the catalog owns. Runs after every mutation; a no-op
    /// when the queue is empty or the tier inactive.
    fn service_tier(&mut self) {
        while let Some(work) = self.tiered.as_mut().and_then(|t| t.take_pending()) {
            for (space, group, grow) in work.rebuilds {
                let members = self.group_members(space, group);
                if let Some(t) = self.tiered.as_mut() {
                    t.rebuild_group(space, group, grow, &members);
                }
            }
            for slot in work.promotes {
                self.promote_slot(slot);
            }
            for slot in work.demotes {
                if let Some(t) = self.tiered.as_mut() {
                    t.demote_now(slot);
                }
            }
        }
    }

    /// Exact per-slot bit lists of one filter group, recomputed from the
    /// refcount state — the group-rebuild source.
    fn group_members(&self, space: Space, group: usize) -> Vec<(usize, Vec<u32>)> {
        let lo = group * SLOTS_PER_GROUP;
        let hi = (lo + SLOTS_PER_GROUP).min(self.arena.slots());
        let mut members = Vec::new();
        for slot in lo..hi {
            if !self.arena.is_live(slot) {
                continue;
            }
            let bits: Vec<u32> = match space {
                Space::Rating => words::iter_ones(self.arena.row(slot)).collect(),
                Space::Attr => {
                    let Some(meta) = self.parts.get(&self.arena.seg(slot)) else {
                        continue;
                    };
                    meta.attr_synopsis.iter().map(|a| a.index()).collect()
                }
            };
            members.push((slot, bits));
        }
        members
    }

    /// Promotes `slot` into the hot tier with its exact bits, if it is
    /// live and the tier has room.
    fn promote_slot(&mut self, slot: usize) {
        let Some(t) = self.tiered.as_ref() else { return };
        if t.is_hot(slot) || t.hot_len() >= t.params().hot_capacity {
            return;
        }
        if slot >= self.arena.slots() || !self.arena.is_live(slot) {
            return;
        }
        let Some(meta) = self.parts.get(&self.arena.seg(slot)) else { return };
        let rating_bits: Vec<u32> = words::iter_ones(self.arena.row(slot)).collect();
        let attr_bits: Vec<u32> = meta.attr_synopsis.iter().map(|a| a.index()).collect();
        if let Some(t) = self.tiered.as_mut() {
            t.promote_now(slot, rating_bits, attr_bits);
        }
    }

    /// Adds external heat (e.g. the reorganizer's scan counters) to a
    /// partition — the tier's promotion signal. A no-op when the tier is
    /// inactive or the partition unknown.
    pub fn note_heat(&mut self, seg: SegmentId, amount: u32) {
        if let Some(meta) = self.parts.get(&seg) {
            let slot = meta.slot;
            if let Some(t) = self.tiered.as_mut() {
                t.note_heat(slot, amount);
            }
        }
        self.service_tier();
    }

    /// Forces a partition in or out of the hot tier — the property tests'
    /// random promotion/demotion lever. A no-op when the tier is inactive.
    pub fn tier_set_hot(&mut self, seg: SegmentId, hot: bool) {
        let Some(meta) = self.parts.get(&seg) else { return };
        let slot = meta.slot;
        if hot {
            self.promote_slot(slot);
        } else if let Some(t) = self.tiered.as_mut() {
            t.demote_now(slot);
        }
    }

    /// The live tiered index, while active.
    pub fn tiered(&self) -> Option<&TieredIndex> {
        self.tiered.as_ref()
    }

    /// A frozen copy of the attribute-space tier plus the slot→segment
    /// map, for lock-free survivor planning (the server's epoch
    /// snapshots). `None` while the exact tier is active.
    pub fn tier_snapshot(&self) -> Option<TierSnapshot> {
        let t = self.tiered.as_ref()?;
        let mut segs = vec![SegmentId(0); self.arena.slots()];
        for slot in self.arena.live_slots() {
            segs[slot] = self.arena.seg(slot);
        }
        Some(t.snapshot(segs, self.parts.len()))
    }

    /// Heap bytes resident in the plan-path index structures — the number
    /// the tier bench compares across `IndexTier` settings.
    pub fn index_resident_bytes(&self) -> usize {
        match &self.tiered {
            Some(t) => t.resident_bytes(),
            None => {
                self.rating_presence.resident_bytes() + self.attr_presence.resident_bytes()
            }
        }
    }

    /// View for the query planner: `(segment, attribute synopsis, SIZE(p))`
    /// per partition, ascending by segment — the per-partition pruning
    /// oracle (and the fallback when the index is off).
    pub fn pruning_view(&self) -> impl Iterator<Item = (SegmentId, &Synopsis, u64)> {
        self.parts
            .values()
            .map(|m| (m.segment, &m.attr_synopsis, m.size))
    }

    /// Cross-checks every catalog-internal invariant — the consistency of
    /// the refcount view (source of truth) with the packed arena rows, the
    /// presence bitmaps, the zero-size candidate set, and the starter pairs
    /// — returning every violation found. Metadata-only: no storage access;
    /// the entity-level cross-check against stored segments is
    /// [`Cinderella::validate`](crate::Cinderella::validate).
    pub fn validate(&self) -> Vec<InvariantViolation> {
        let mut out = self.arena.validate();
        out.extend(self.rating_presence.validate(&self.arena));
        out.extend(self.attr_presence.validate(&self.arena));
        let live = self.arena.live_slots().count();
        if live != self.parts.len() {
            push_cat(&mut out, format!(
                "{} live arena slots but {} cataloged partitions",
                live,
                self.parts.len()
            ));
        }

        // Expected presence-bit sets, rebuilt from the refcounts as the
        // per-partition checks walk the metas.
        let mut want_rating: std::collections::BTreeSet<(u32, usize)> =
            std::collections::BTreeSet::new();
        let mut want_attr: std::collections::BTreeSet<(u32, usize)> =
            std::collections::BTreeSet::new();
        let mut slot_owner: BTreeMap<usize, SegmentId> = BTreeMap::new();

        for (seg, meta) in &self.parts {
            let seg = *seg;
            if meta.segment != seg {
                push_cat(&mut out, format!(
                    "keyed under {seg} but meta names segment {}",
                    meta.segment
                ));
            }
            let slot = meta.slot;
            if slot >= self.arena.slots() {
                push_cat(&mut out, format!(
                    "{seg}: slot {slot} out of range ({} slots)",
                    self.arena.slots()
                ));
                continue;
            }
            if let Some(prev) = slot_owner.insert(slot, seg) {
                push_cat(&mut out, format!("{seg}: slot {slot} already owned by {prev}"));
            }
            if !self.arena.is_live(slot) {
                push_cat(&mut out, format!("{seg}: slot {slot} is not live in the arena"));
                continue;
            }
            if self.arena.seg(slot) != seg {
                push_cat(&mut out, format!(
                    "{seg}: arena slot {slot} bound to segment {}",
                    self.arena.seg(slot)
                ));
            }
            if self.arena.size(slot) != meta.size {
                push_cat(&mut out, format!(
                    "{seg}: arena SIZE(p) {} but meta size {}",
                    self.arena.size(slot),
                    meta.size
                ));
            }
            let row_bits: Vec<u32> = words::iter_ones(self.arena.row(slot)).collect();
            let count_bits: Vec<u32> = meta.rating_bits().collect();
            if row_bits != count_bits {
                push_cat(&mut out, format!(
                    "{seg}: packed row bits {row_bits:?} but rating refcounts say {count_bits:?}"
                ));
            }
            let attr_bits: Vec<u32> = meta.attr_synopsis.iter().map(|a| a.index()).collect();
            let attr_count_bits: Vec<u32> = meta
                .attr_counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, _)| i as u32)
                .collect();
            if attr_bits != attr_count_bits {
                push_cat(&mut out, format!(
                    "{seg}: attr synopsis bits {attr_bits:?} but attr refcounts say \
                     {attr_count_bits:?}"
                ));
            }
            let zero_bit = self.zero_size.contains(slot as u32);
            if zero_bit != (meta.size == 0) {
                push_cat(&mut out, format!(
                    "{seg}: size {} but zero-size bit for slot {slot} is {zero_bit}",
                    meta.size
                ));
            }
            if meta.entities == 0 && (meta.size != 0 || !count_bits.is_empty()) {
                push_cat(&mut out, format!(
                    "{seg}: no entities but size {} and {} rating bits",
                    meta.size,
                    count_bits.len()
                ));
            }
            for (space, counts) in
                [("rating", &meta.rating_counts), ("attr", &meta.attr_counts)]
            {
                for (bit, &c) in counts.iter().enumerate() {
                    if u64::from(c) > meta.entities {
                        push_cat(&mut out, format!(
                            "{seg}: {space} refcount {c} for bit {bit} exceeds {} entities",
                            meta.entities
                        ));
                    }
                }
            }
            if let Err(why) = meta.starters.check() {
                out.push(InvariantViolation::new("starters", format!("{seg}: {why}")));
            }
            want_rating.extend(count_bits.iter().map(|&b| (b, slot)));
            want_attr.extend(attr_bits.iter().map(|&b| (b, slot)));
        }

        if let Some(t) = &self.tiered {
            out.extend(t.validate_internal());
            // The exact bitmaps must be gone — retaining them would void
            // the tier's memory claim (and mean double maintenance).
            for (space, index) in [
                ("rating", &self.rating_presence),
                ("attr", &self.attr_presence),
            ] {
                if index.attrs() != 0 {
                    out.push(InvariantViolation::new(
                        "tier",
                        format!("exact {space} presence rows retained while tiered"),
                    ));
                }
            }
            // The no-false-negative implication: every exact-present
            // (attr, slot) pair must be admitted by the approximate tier.
            for (space, label, want) in [
                (Space::Rating, "rating", &want_rating),
                (Space::Attr, "attr", &want_attr),
            ] {
                for &(bit, slot) in want.iter() {
                    if !t.approx_contains(space, bit, slot) {
                        out.push(InvariantViolation::new(
                            "tier",
                            format!(
                                "{label} bit {bit} of slot {slot} ({}) absent from the \
                                 approximate tier — a false negative",
                                self.arena.seg(slot)
                            ),
                        ));
                    }
                }
            }
            // Hot-tier bitmaps ⇔ refcounts, both directions, per hot slot.
            // (BTreeSet order is (bit, slot), so per-slot pushes ascend.)
            let by_slot = |want: &std::collections::BTreeSet<(u32, usize)>| {
                let mut m: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
                for &(bit, slot) in want {
                    m.entry(slot).or_default().push(bit);
                }
                m
            };
            let exact_rating = by_slot(&want_rating);
            let exact_attr = by_slot(&want_attr);
            for &slot in t.hot_slot_ids() {
                if slot >= self.arena.slots() || !self.arena.is_live(slot) {
                    continue; // flagged by validate_internal
                }
                let seg = self.arena.seg(slot);
                for (space, label, exact) in [
                    (Space::Rating, "rating", &exact_rating),
                    (Space::Attr, "attr", &exact_attr),
                ] {
                    let exact = exact.get(&slot).cloned().unwrap_or_default();
                    let hot = t.hot_bits(space, slot).unwrap_or_default();
                    if exact != hot {
                        out.push(InvariantViolation::new(
                            "tier",
                            format!(
                                "{seg}: hot {label} row {hot:?} but refcounts say {exact:?}"
                            ),
                        ));
                    }
                }
            }
        } else {
            for (space, index, want) in [
                ("rating", &self.rating_presence, &want_rating),
                ("attr", &self.attr_presence, &want_attr),
            ] {
                let mut have: std::collections::BTreeSet<(u32, usize)> =
                    std::collections::BTreeSet::new();
                for attr in 0..index.attrs() as u32 {
                    if let Some(row) = index.row(attr) {
                        have.extend(row.iter_ones().map(|slot| (attr, slot as usize)));
                    }
                }
                for (bit, slot) in want.difference(&have) {
                    out.push(InvariantViolation::new(
                        "presence",
                        format!(
                            "{space} bit {bit} of slot {slot} ({}) missing from the index",
                            self.arena.seg(*slot)
                        ),
                    ));
                }
                for (bit, slot) in have.difference(want) {
                    out.push(InvariantViolation::new(
                        "presence",
                        format!(
                            "{space} index claims bit {bit} for slot {slot}, refcounts disagree"
                        ),
                    ));
                }
            }
        }

        for slot in self.zero_size.iter_ones() {
            let slot = slot as usize;
            if slot >= self.arena.slots() || !self.arena.is_live(slot) {
                out.push(InvariantViolation::new(
                    "catalog",
                    format!("zero-size bit set for dead slot {slot}"),
                ));
            }
        }
        out
    }

    /// Cross-checks partition `seg` against its actual stored members —
    /// `(id, rating synopsis, attribute synopsis, SIZE(e))` per entity, as
    /// recomputed from storage by the caller. Verifies the OR-of-members
    /// synopsis law (via the full refcount recomputation), the entity and
    /// size accounting, and starter membership. Returns every violation.
    pub(crate) fn validate_members(
        &self,
        seg: SegmentId,
        members: &[(EntityId, Synopsis, Synopsis, u64)],
    ) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let Some(meta) = self.parts.get(&seg) else {
            push_cat(&mut out, format!("{seg}: not cataloged but has stored members"));
            return out;
        };
        if meta.entities != members.len() as u64 {
            push_cat(&mut out, format!(
                "{seg}: meta counts {} entities, segment stores {}",
                meta.entities,
                members.len()
            ));
        }
        let stored_size: u64 = members.iter().map(|(_, _, _, s)| s).sum();
        if meta.size != stored_size {
            push_cat(&mut out, format!(
                "{seg}: meta size {} but members sum to {stored_size}",
                meta.size
            ));
        }
        // Recompute both refcount columns from the members and compare —
        // this subsumes "partition synopsis == OR of member synopses" and
        // catches count drift that the OR alone would mask.
        for (space, counts, proj) in [
            ("rating", &meta.rating_counts, 1usize),
            ("attr", &meta.attr_counts, 2),
        ] {
            let mut want: Vec<u32> = Vec::new();
            for m in members {
                let syn = if proj == 1 { &m.1 } else { &m.2 };
                for attr in syn.iter() {
                    let idx = attr.index() as usize;
                    if want.len() <= idx {
                        want.resize(idx + 1, 0);
                    }
                    want[idx] += 1;
                }
            }
            let width = want.len().max(counts.len());
            for bit in 0..width {
                let w = want.get(bit).copied().unwrap_or(0);
                let h = counts.get(bit).copied().unwrap_or(0);
                if w != h {
                    push_cat(&mut out, format!(
                        "{seg}: {space} refcount for bit {bit} is {h}, members say {w}"
                    ));
                }
            }
        }
        for (name, starter) in [("A", meta.starters.a()), ("B", meta.starters.b())] {
            let Some((id, cached)) = starter else { continue };
            match members.iter().find(|(mid, ..)| *mid == id) {
                None => out.push(InvariantViolation::new(
                    "starters",
                    format!("{seg}: starter {name} ({id:?}) is not a member"),
                )),
                Some((_, rating, _, _)) if rating != cached => {
                    out.push(InvariantViolation::new(
                        "starters",
                        format!(
                            "{seg}: cached synopsis of starter {name} ({id:?}) is stale"
                        ),
                    ));
                }
                _ => {}
            }
        }
        out
    }
}

/// Appends a catalog-structure violation (shared by the validators).
fn push_cat(out: &mut Vec<InvariantViolation>, detail: String) {
    out.push(InvariantViolation::new("catalog", detail));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(32, bits.iter().copied())
    }

    fn add(
        cat: &mut PartitionCatalog,
        seg: SegmentId,
        id: u64,
        bits: &[u32],
        size: u64,
    ) {
        let s = syn(bits);
        cat.add_entity(seg, EntityId(id), &s, &s, size, true);
    }

    #[test]
    fn synopsis_is_or_of_members_with_refcounts() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let m = cat.get(SegmentId(0)).unwrap();
        assert_eq!(m.rating_synopsis(), syn(&[0, 1, 2]));
        assert_eq!(m.entities, 2);
        assert_eq!(m.size, 4);
        // Removing entity 1 clears bit 0 but keeps shared bit 1.
        let s1 = syn(&[0, 1]);
        let left = cat.remove_entity(SegmentId(0), EntityId(1), &s1, &s1, 2);
        assert_eq!(left, 1);
        let m = cat.get(SegmentId(0)).unwrap();
        assert_eq!(m.rating_synopsis(), syn(&[1, 2]));
        assert_eq!(m.size, 2);
    }

    #[test]
    fn arena_row_mirrors_refcount_synopsis() {
        // The packed row the hot path scans must equal the refcount view
        // through adds, removes, and partition removal/adoption.
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 5, 31], 3);
        add(&mut cat, SegmentId(0), 2, &[5, 7], 2);
        let s = syn(&[0, 5, 31]);
        cat.remove_entity(SegmentId(0), EntityId(1), &s, &s, 3);
        let m = cat.get(SegmentId(0)).unwrap();
        let row_bits: Vec<u32> = words::iter_ones(cat.arena.row(m.slot)).collect();
        let syn_bits: Vec<u32> = m.rating_synopsis().iter().map(|a| a.index()).collect();
        assert_eq!(row_bits, syn_bits);
        assert_eq!(row_bits, vec![5, 7]);
    }

    /// A healthy two-partition catalog validates clean in every index mode.
    #[test]
    fn validate_accepts_healthy_catalog() {
        for mode in [IndexMode::Off, IndexMode::On, IndexMode::Auto] {
            let mut cat = PartitionCatalog::new(mode);
            cat.create_partition(SegmentId(0));
            cat.create_partition(SegmentId(1));
            add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
            add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
            add(&mut cat, SegmentId(1), 3, &[8], 1);
            let s = syn(&[1, 2]);
            cat.remove_entity(SegmentId(0), EntityId(2), &s, &s, 2);
            let report = crate::validate::render(&cat.validate());
            assert!(report.is_empty(), "{report}");
        }
    }

    /// Every seeded corruption of the catalog/arena/index triad is
    /// reported by the specific cross-check that owns the invariant.
    #[test]
    fn validate_reports_each_seeded_catalog_corruption() {
        let corrupted = |f: fn(&mut PartitionCatalog), needle: &str| {
            let mut cat = PartitionCatalog::new(IndexMode::On);
            cat.create_partition(SegmentId(0));
            cat.create_partition(SegmentId(7));
            add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
            add(&mut cat, SegmentId(7), 2, &[4], 1);
            f(&mut cat);
            let report = crate::validate::render(&cat.validate());
            assert!(report.contains(needle), "wanted {needle:?} in:\n{report}");
        };
        // Meta size drifts from the packed arena column.
        corrupted(
            |c| c.parts.get_mut(&SegmentId(0)).unwrap().size += 1,
            "arena SIZE(p) 2 but meta size 3",
        );
        // A rating refcount appears without its packed-row bit.
        corrupted(
            |c| {
                let m = c.parts.get_mut(&SegmentId(0)).unwrap();
                m.rating_counts.resize(10, 0);
                m.rating_counts[9] = 1;
            },
            "rating refcounts say [0, 1, 9]",
        );
        // The attr synopsis gains a bit its refcounts do not back.
        corrupted(
            |c| {
                let m = c.parts.get_mut(&SegmentId(7)).unwrap();
                m.attr_synopsis.bits_mut().grow(32);
                m.attr_synopsis.bits_mut().insert(9);
            },
            "attr synopsis bits [4, 9] but attr refcounts say [4]",
        );
        // Zero-size bit set for a partition with data.
        corrupted(
            |c| {
                let slot = c.parts[&SegmentId(0)].slot;
                c.zero_size.grow(slot + 1);
                c.zero_size.insert(slot as u32);
            },
            "size 2 but zero-size bit",
        );
        // Presence index loses a bit the refcounts demand …
        corrupted(
            |c| {
                let slot = c.parts[&SegmentId(0)].slot;
                c.rating_presence.clear(0, slot);
            },
            "rating bit 0 of slot 0 (seg0) missing from the index",
        );
        // … or claims one they do not.
        corrupted(
            |c| {
                let slot = c.parts[&SegmentId(7)].slot;
                c.attr_presence.set(30, slot);
            },
            "attr index claims bit 30 for slot 1, refcounts disagree",
        );
        // Two metas fighting over one arena slot.
        corrupted(
            |c| {
                let slot0 = c.parts[&SegmentId(0)].slot;
                c.parts.get_mut(&SegmentId(7)).unwrap().slot = slot0;
            },
            "slot 0 already owned by seg0",
        );
        // Refcount exceeding the member count.
        corrupted(
            |c| c.parts.get_mut(&SegmentId(7)).unwrap().entities = 0,
            "rating refcount 1 for bit 4 exceeds 0 entities",
        );
        // Meta keyed under the wrong segment.
        corrupted(
            |c| {
                let meta = c.parts.remove(&SegmentId(7)).unwrap();
                c.parts.insert(SegmentId(9), meta);
            },
            "keyed under seg9 but meta names segment seg7",
        );
    }

    /// `validate_members` cross-checks the catalog against what a segment
    /// actually stores: member counts, size sums, per-bit refcounts, and
    /// split-starter membership.
    #[test]
    fn validate_members_reports_stored_vs_cataloged_drift() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let member = |id: u64, bits: &[u32], size: u64| {
            (EntityId(id), syn(bits), syn(bits), size)
        };
        // The true membership: clean.
        let good = vec![member(1, &[0, 1], 2), member(2, &[1, 2], 2)];
        assert!(cat.validate_members(SegmentId(0), &good).is_empty());
        // A member the catalog never accounted.
        let extra = vec![good[0].clone(), good[1].clone(), member(3, &[5], 1)];
        let report = crate::validate::render(&cat.validate_members(SegmentId(0), &extra));
        assert!(report.contains("meta counts 2 entities, segment stores 3"), "{report}");
        assert!(report.contains("members say 1"), "refcount drift surfaces: {report}");
        // A size that disagrees.
        let resized = vec![good[0].clone(), member(2, &[1, 2], 9)];
        let report =
            crate::validate::render(&cat.validate_members(SegmentId(0), &resized));
        assert!(report.contains("meta size 4 but members sum to 11"), "{report}");
        // A starter that is not stored.
        let vanished = vec![good[1].clone(), member(9, &[0, 1], 2)];
        let report =
            crate::validate::render(&cat.validate_members(SegmentId(0), &vanished));
        assert!(report.contains("is not a member"), "{report}");
        // An uncataloged segment with stored members.
        let report =
            crate::validate::render(&cat.validate_members(SegmentId(42), &good));
        assert!(report.contains("not cataloged but has stored members"), "{report}");
    }

    #[test]
    fn best_partition_prefers_overlap() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0, 1, 2], 3);
        add(&mut cat, SegmentId(1), 2, &[8, 9], 2);
        let (best, ratings) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        let (seg, r) = best.unwrap();
        assert_eq!(seg, SegmentId(0));
        assert!(r > 0.0);
        assert_eq!(ratings, 2);
    }

    #[test]
    fn empty_catalog_returns_none() {
        for mode in [IndexMode::Off, IndexMode::On, IndexMode::Auto] {
            let cat = PartitionCatalog::new(mode);
            let (best, ratings) = cat.best_partition(&syn(&[0]), 1, 0.5);
            assert!(best.is_none());
            assert_eq!(ratings, 0);
        }
    }

    #[test]
    fn ties_go_to_lowest_segment() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(1), 2, &[0, 1], 2);
        let (best, _) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(0));
    }

    #[test]
    fn ties_go_to_lowest_segment_against_slot_order() {
        // Recycle slots so that slot order disagrees with segment order:
        // the sweep's explicit tie-break must still pick the lowest segment.
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(7));
        add(&mut cat, SegmentId(7), 1, &[0, 1], 2); // slot 0
        cat.create_partition(SegmentId(9));
        add(&mut cat, SegmentId(9), 2, &[0, 1], 2); // slot 1
        cat.remove_partition(SegmentId(7)); // frees slot 0
        cat.create_partition(SegmentId(3)); // recycles slot 0… wait, 3 < 9
        add(&mut cat, SegmentId(3), 3, &[0, 1], 2);
        let (best, _) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(3));
        // And for the indexed path.
        let mut cat2 = PartitionCatalog::new(IndexMode::On);
        cat2.create_partition(SegmentId(7));
        add(&mut cat2, SegmentId(7), 1, &[0, 1], 2);
        cat2.create_partition(SegmentId(9));
        add(&mut cat2, SegmentId(9), 2, &[0, 1], 2);
        cat2.remove_partition(SegmentId(7));
        cat2.create_partition(SegmentId(3));
        add(&mut cat2, SegmentId(3), 3, &[0, 1], 2);
        let (best, _) = cat2.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(3));
    }

    #[test]
    fn indexed_matches_unindexed() {
        // Mirror a mutation sequence across both catalogs and compare the
        // argmax for several probe entities.
        let probes: Vec<Vec<u32>> =
            vec![vec![0, 1], vec![5], vec![2, 9], vec![], vec![0, 9, 11]];
        let mut plain = PartitionCatalog::new(IndexMode::Off);
        let mut indexed = PartitionCatalog::new(IndexMode::On);
        for cat in [&mut plain, &mut indexed] {
            for s in 0..4u32 {
                cat.create_partition(SegmentId(s));
            }
            add(cat, SegmentId(0), 1, &[0, 1, 2], 3);
            add(cat, SegmentId(1), 2, &[5, 6], 2);
            add(cat, SegmentId(2), 3, &[9, 10, 11], 3);
            add(cat, SegmentId(3), 4, &[0, 9], 2);
            // Shrink partition 0 so bit 2 clears from row and presence.
            let s = syn(&[0, 1, 2]);
            cat.remove_entity(SegmentId(0), EntityId(1), &s, &s, 3);
            add(cat, SegmentId(0), 5, &[0, 1], 2);
        }
        for probe in &probes {
            let s = syn(probe);
            let size = probe.len() as u64;
            for w in [0.0, 0.2, 0.5, 1.0] {
                let (a, _) = plain.best_partition(&s, size, w);
                let (b, _) = indexed.best_partition(&s, size, w);
                let (sa, ra) = a.unwrap();
                let (sb, rb) = b.unwrap();
                if ra >= 0.0 {
                    // Non-negative best: the algorithm inserts into it, so
                    // the argmax must match exactly.
                    assert_eq!((sa, ra), (sb, rb), "probe {probe:?} w={w}");
                } else {
                    // Negative best: a new partition is created either way;
                    // only the sign must agree.
                    assert!(rb < 0.0, "probe {probe:?} w={w}: {ra} vs {rb}");
                }
            }
        }
    }

    #[test]
    fn indexed_scans_fewer_partitions() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        for s in 0..10u32 {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), &[s, s + 10], 2);
        }
        let (_, ratings) = cat.best_partition(&syn(&[3]), 1, 0.5);
        assert!(ratings < 10, "index should prune the scan, rated {ratings}");
    }

    #[test]
    fn candidates_are_deduplicated() {
        // A partition sharing many attributes with the entity must be
        // rated once, not once per shared attribute.
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 1, 2, 3, 4, 5], 6);
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(1), 2, &[20], 1);
        let (best, ratings) = cat.best_partition(&syn(&[0, 1, 2, 3, 4, 5]), 6, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(0));
        assert_eq!(ratings, 1, "one rating despite six shared attributes");
    }

    #[test]
    fn auto_mode_gates_on_partition_count() {
        let mut cat = PartitionCatalog::new(IndexMode::Auto);
        for s in 0..IndexMode::AUTO_MIN_PARTITIONS as u32 {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), &[s % 32], 2);
        }
        // At the gate: candidates only.
        let (_, ratings) = cat.best_partition(&syn(&[0]), 1, 0.5);
        assert!(ratings < IndexMode::AUTO_MIN_PARTITIONS as u32);
        // Below the gate: full sweep.
        cat.remove_partition(SegmentId(0));
        let (_, ratings) = cat.best_partition(&syn(&[1]), 1, 0.5);
        assert_eq!(ratings, IndexMode::AUTO_MIN_PARTITIONS as u32 - 1);
    }

    #[test]
    fn remove_partition_cleans_presence() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0], 1);
        add(&mut cat, SegmentId(1), 2, &[0, 1], 2);
        let meta = cat.remove_partition(SegmentId(0));
        assert_eq!(meta.entities, 1);
        let (best, _) = cat.best_partition(&syn(&[0]), 1, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(1));
        assert_eq!(cat.len(), 1);
        let (survivors, pruned) = cat.plan_survivors(&syn(&[0])).unwrap();
        assert_eq!(survivors, vec![SegmentId(1)]);
        assert_eq!(pruned, 0);
    }

    #[test]
    fn plan_survivors_matches_disjoint_oracle() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        for (s, bits) in [(0u32, &[0u32, 1][..]), (1, &[5][..]), (2, &[1, 9][..])] {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), bits, 2);
        }
        for q in [&[1u32][..], &[0, 5][..], &[7][..], &[][..]] {
            let q = syn(q);
            let oracle: Vec<SegmentId> = cat
                .pruning_view()
                .filter(|(_, p, _)| !q.is_disjoint(p))
                .map(|(s, _, _)| s)
                .collect();
            let (survivors, pruned) = cat.plan_survivors(&q).unwrap();
            assert_eq!(survivors, oracle);
            assert_eq!(pruned, cat.len() - survivors.len());
        }
        assert!(PartitionCatalog::new(IndexMode::Off)
            .plan_survivors(&syn(&[0]))
            .is_none());
    }

    #[test]
    fn sparseness_of_partition() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        // 2 entities, 3 partition attrs, 4 filled cells → 1 - 4/6.
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let m = cat.get(SegmentId(0)).unwrap();
        assert!((m.sparseness() - (1.0 - 4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_size_partitions_stay_candidates() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        // Partition 0 holds one zero-size entity with an empty synopsis.
        cat.add_entity(SegmentId(0), EntityId(1), &syn(&[]), &syn(&[]), 0, true);
        // A disjoint probe should still see partition 0 (rating 0 ≥ 0
        // beats creating a new partition in Algorithm 1's comparison).
        let (best, _) = cat.best_partition(&syn(&[5]), 1, 0.5);
        let (seg, r) = best.unwrap();
        assert_eq!(seg, SegmentId(0));
        assert_eq!(r, 0.0);
    }
}
