//! The partition catalog: synopses, sizes, starters, candidate index.

use std::collections::BTreeMap;

use cind_bitset::{words, BitSetOps, FixedBitSet};

use cind_model::{EntityId, Synopsis};
use cind_storage::SegmentId;

use crate::arena::{PresenceIndex, SynopsisArena};
use crate::config::IndexMode;
use crate::rating::{global_rating, RatingInputs};
use crate::starters::SplitStarters;

/// Catalog entry of one partition.
#[derive(Clone, Debug)]
pub struct PartitionMeta {
    /// The backing storage segment.
    pub segment: SegmentId,
    /// Synopsis in *attribute* space, used for query-time pruning (and
    /// equal to the rating synopsis in entity-based mode). Exact:
    /// maintained by reference counts, so bits clear when the last member
    /// carrying them leaves.
    pub attr_synopsis: Synopsis,
    /// `SIZE(p)` — sum of member `SIZE(e)` under the configured size model.
    pub size: u64,
    /// Number of member entities.
    pub entities: u64,
    /// The split-starter pair.
    pub starters: SplitStarters,
    /// Per-attribute member counts in rating space. The set `{i :
    /// rating_counts[i] > 0}` IS the partition's rating synopsis; the
    /// packed copy the hot loops scan lives in the catalog's
    /// [`SynopsisArena`] row of this partition.
    rating_counts: Vec<u32>,
    attr_counts: Vec<u32>,
    /// The partition's arena slot (meaningless while the meta is detached
    /// from a catalog, e.g. between `remove_partition` and `adopt`).
    slot: usize,
}

impl PartitionMeta {
    fn new(segment: SegmentId, slot: usize) -> Self {
        Self {
            segment,
            attr_synopsis: Synopsis::default(),
            size: 0,
            entities: 0,
            starters: SplitStarters::new(),
            rating_counts: Vec::new(),
            attr_counts: Vec::new(),
            slot,
        }
    }

    /// Materialises the partition's synopsis in *rating* space (attributes
    /// in entity-based mode, queries in workload-based mode) from the
    /// reference counts. The hot paths never call this — they sweep the
    /// packed arena rows instead; it serves cold passes (merge rating) and
    /// tests.
    pub fn rating_synopsis(&self) -> Synopsis {
        Synopsis::from_bits(
            self.rating_counts.len(),
            self.rating_counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, _)| i as u32),
        )
    }

    /// The rating-space bits, ascending — the refcount view without
    /// materialising a bitset.
    fn rating_bits(&self) -> impl Iterator<Item = u32> + '_ {
        self.rating_counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| i as u32)
    }

    /// Sparseness of the partition: the fraction of empty cells in the
    /// `entities × attributes(p)` rectangle (Fig. 7(d)). Zero for an empty
    /// or perfectly dense partition.
    ///
    /// Meaningful under the `Cells` size model, where `size` counts filled
    /// cells.
    pub fn sparseness(&self) -> f64 {
        let total = self.entities * u64::from(self.attr_synopsis.cardinality());
        if total == 0 {
            return 0.0;
        }
        1.0 - self.size as f64 / total as f64
    }
}

/// Bumps the per-attribute refcounts for `bits`, reporting each count that
/// went 0→1 (a newly present attribute) to `on_new`.
fn bump(counts: &mut Vec<u32>, bits: &Synopsis, mut on_new: impl FnMut(u32)) {
    for attr in bits.iter() {
        let idx = attr.index() as usize;
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += 1;
        if counts[idx] == 1 {
            on_new(attr.index());
        }
    }
}

/// Drops the refcounts for `bits`, reporting each count that went 1→0 (an
/// attribute no member carries any more) to `on_clear`.
fn drop_counts(counts: &mut [u32], bits: &Synopsis, mut on_clear: impl FnMut(u32)) {
    for attr in bits.iter() {
        let idx = attr.index() as usize;
        assert!(counts.get(idx).copied().unwrap_or(0) > 0, "count underflow at {idx}");
        counts[idx] -= 1;
        if counts[idx] == 0 {
            on_clear(attr.index());
        }
    }
}

/// The partition catalog Cinderella scans on every insert (Algorithm 1,
/// lines 3–7).
///
/// Invariant (property-tested): each partition's synopses equal the OR of
/// its members' synopses, maintained exactly via per-attribute reference
/// counts; the packed arena row and the presence bitmaps mirror the
/// refcount view exactly.
///
/// The two hot loops never walk the `BTreeMap`:
///
/// * the rating scan sweeps the [`SynopsisArena`] — one contiguous
///   fixed-stride row per partition, rated with a single fused word pass —
///   and, with the index on, first ORs per-attribute *presence bitmaps*
///   into the candidate set (partitions that could rate `≥ 0`: those
///   sharing a rating bit with the entity, plus those with `SIZE(p) = 0`);
/// * the planner's survivor set is the OR of `|q|` presence bitmaps in
///   attribute space ([`PartitionCatalog::plan_survivors`]).
///
/// Candidate soundness: with `w < 1` a disjoint pair with both sizes
/// positive rates strictly negative, so skipping non-candidates cannot
/// change a non-negative argmax. At `w = 1` negative evidence has weight
/// zero and disjoint pairs rate `0`, so the indexed path falls back to the
/// full sweep (as it does for `SIZE(e) = 0`, where every partition rates
/// neutrally).
#[derive(Clone, Debug)]
pub struct PartitionCatalog {
    parts: BTreeMap<SegmentId, PartitionMeta>,
    mode: IndexMode,
    /// Packed rating synopses + `SIZE(p)` + segment, one slot per
    /// partition.
    arena: SynopsisArena,
    /// rating-bit → slot bitmap (candidate index for the insert scan).
    rating_presence: PresenceIndex,
    /// attribute-bit → slot bitmap (survivor index for the planner).
    attr_presence: PresenceIndex,
    /// Slots of partitions with `SIZE(p) = 0` (rate neutrally against
    /// anything, so they are always candidates).
    zero_size: FixedBitSet,
}

impl PartitionCatalog {
    /// Creates an empty catalog with the given candidate-index mode.
    pub fn new(mode: IndexMode) -> Self {
        Self {
            parts: BTreeMap::new(),
            mode,
            arena: SynopsisArena::new(),
            rating_presence: PresenceIndex::new(),
            attr_presence: PresenceIndex::new(),
            zero_size: FixedBitSet::default(),
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterates partitions in ascending segment order.
    pub fn iter(&self) -> impl Iterator<Item = &PartitionMeta> {
        self.parts.values()
    }

    /// Looks up one partition.
    pub fn get(&self, seg: SegmentId) -> Option<&PartitionMeta> {
        self.parts.get(&seg)
    }

    /// Mutable lookup (starters maintenance).
    pub fn get_mut(&mut self, seg: SegmentId) -> Option<&mut PartitionMeta> {
        self.parts.get_mut(&seg)
    }

    /// Registers a fresh, empty partition backed by `seg`.
    ///
    /// # Panics
    /// Panics if `seg` is already cataloged.
    pub fn create_partition(&mut self, seg: SegmentId) {
        let slot = self.arena.alloc(seg);
        let prev = self.parts.insert(seg, PartitionMeta::new(seg, slot));
        assert!(prev.is_none(), "partition {seg} already cataloged");
        self.zero_size.grow(slot + 1);
        self.zero_size.insert(slot as u32);
    }

    /// Adopts a ready-made partition under a (new) segment id — the bulk
    /// loader's stitch path. The metadata keeps its counts, synopses, and
    /// starters; only the segment id (and arena slot) is rebound.
    ///
    /// # Panics
    /// Panics if `seg` is already cataloged.
    pub(crate) fn adopt(&mut self, mut meta: PartitionMeta, seg: SegmentId) {
        assert!(
            !self.parts.contains_key(&seg),
            "partition {seg} already cataloged"
        );
        meta.segment = seg;
        let slot = self.arena.alloc(seg);
        meta.slot = slot;
        for bit in meta.rating_bits() {
            self.arena.insert_bit(slot, bit);
            self.rating_presence.set(bit, slot);
        }
        for bit in meta.attr_synopsis.iter() {
            self.attr_presence.set(bit.index(), slot);
        }
        self.arena.set_size(slot, meta.size);
        self.zero_size.grow(slot + 1);
        if meta.size == 0 {
            self.zero_size.insert(slot as u32);
        }
        self.parts.insert(seg, meta);
    }

    /// Removes a partition from the catalog, returning its metadata.
    ///
    /// # Panics
    /// Panics if `seg` is not cataloged.
    pub fn remove_partition(&mut self, seg: SegmentId) -> PartitionMeta {
        let meta = self.parts.remove(&seg).expect("partition cataloged");
        let slot = meta.slot;
        for bit in meta.rating_bits() {
            self.rating_presence.clear(bit, slot);
        }
        for bit in meta.attr_synopsis.iter() {
            self.attr_presence.clear(bit.index(), slot);
        }
        self.zero_size.remove(slot as u32);
        self.arena.release(slot);
        meta
    }

    /// Accounts a new member entity of partition `seg`.
    ///
    /// `offer_starters` runs the Algorithm 1 starter update; pass `false`
    /// when the caller already offered the entity (the insert path offers
    /// *before* the capacity check, per the paper).
    pub fn add_entity(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rating_syn: &Synopsis,
        attr_syn: &Synopsis,
        size: u64,
        offer_starters: bool,
    ) {
        let Self { parts, arena, rating_presence, attr_presence, zero_size, .. } = self;
        let meta = parts.get_mut(&seg).expect("partition cataloged");
        let slot = meta.slot;
        bump(&mut meta.rating_counts, rating_syn, |bit| {
            arena.insert_bit(slot, bit);
            rating_presence.set(bit, slot);
        });
        let attr_synopsis = &mut meta.attr_synopsis;
        bump(&mut meta.attr_counts, attr_syn, |bit| {
            attr_synopsis.bits_mut().grow(bit as usize + 1);
            attr_synopsis.bits_mut().insert(bit);
            attr_presence.set(bit, slot);
        });
        meta.entities += 1;
        meta.size += size;
        arena.set_size(slot, meta.size);
        if offer_starters {
            meta.starters.offer(id, rating_syn);
        }
        if meta.size > 0 {
            zero_size.remove(slot as u32);
        }
    }

    /// Accounts the removal of a member entity. Returns the remaining
    /// member count (callers drop the partition at zero).
    pub fn remove_entity(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rating_syn: &Synopsis,
        attr_syn: &Synopsis,
        size: u64,
    ) -> u64 {
        let Self { parts, arena, rating_presence, attr_presence, zero_size, .. } = self;
        let meta = parts.get_mut(&seg).expect("partition cataloged");
        let slot = meta.slot;
        drop_counts(&mut meta.rating_counts, rating_syn, |bit| {
            arena.remove_bit(slot, bit);
            rating_presence.clear(bit, slot);
        });
        let attr_synopsis = &mut meta.attr_synopsis;
        drop_counts(&mut meta.attr_counts, attr_syn, |bit| {
            attr_synopsis.bits_mut().remove(bit);
            attr_presence.clear(bit, slot);
        });
        meta.entities -= 1;
        meta.size -= size;
        arena.set_size(slot, meta.size);
        meta.starters.vacate(id);
        if meta.size == 0 {
            zero_size.grow(slot + 1);
            zero_size.insert(slot as u32);
        }
        meta.entities
    }

    /// Whether the rating scan goes through the candidate index.
    fn rate_indexed(&self) -> bool {
        match self.mode {
            IndexMode::On => true,
            IndexMode::Off => false,
            IndexMode::Auto => self.parts.len() >= IndexMode::AUTO_MIN_PARTITIONS,
        }
    }

    /// Algorithm 1 lines 3–7: scans the catalog and returns the best-rated
    /// partition for the entity, with its rating, plus the number of
    /// ratings computed. Ties go to the lowest segment id. Returns `None`
    /// when the catalog is empty.
    pub fn best_partition(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        // Strict negativity of non-candidates needs `SIZE(e) > 0`, `w < 1`,
        // and a non-empty entity synopsis: a zero-size entity rates
        // neutrally everywhere, at `w = 1` negative evidence has weight
        // zero, and an empty entity synopsis rates 0 against any partition
        // whose synopsis is also empty (`|e ∨ p| = 0` — neutral by
        // definition) even when that partition is not in any presence row.
        // In those cases non-candidates can tie the argmax, so only the
        // full sweep is exact.
        if self.rate_indexed() && size_e > 0 && weight < 1.0 && !rating_syn.is_empty() {
            self.best_indexed(rating_syn, size_e, weight)
        } else {
            self.best_sweep(rating_syn, size_e, weight)
        }
    }

    /// Best-rated partition among an explicit target list (restricted
    /// insert during a split). Targets are rated in the given order; ties
    /// keep the earlier target.
    pub fn best_among(
        &self,
        targets: &[SegmentId],
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let e_words = rating_syn.bits().blocks();
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for &seg in targets {
            let Some(meta) = self.parts.get(&seg) else { continue };
            let r = self.rate_slot(meta.slot, e_words, size_e, weight);
            ratings += 1;
            if best.is_none_or(|(_, rb)| rb < r) {
                best = Some((seg, r));
            }
        }
        (best, ratings)
    }

    /// Rates the partition in `slot` against an entity given as raw
    /// synopsis words — one fused kernel pass over the packed row.
    fn rate_slot(&self, slot: usize, e_words: &[u64], size_e: u64, weight: f64) -> f64 {
        let counts = words::fused_counts(e_words, self.arena.row(slot));
        let inputs = RatingInputs::from_fused(counts, size_e, self.arena.size(slot));
        global_rating(weight, &inputs)
    }

    /// The full linear sweep over the packed arena: every live slot is
    /// rated. Slot order is allocation order, not segment order, so the
    /// scan tie-break (lowest segment id among maximal ratings) is applied
    /// explicitly — the winner is order-independent.
    fn best_sweep(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let e_words = rating_syn.bits().blocks();
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for slot in self.arena.live_slots() {
            let r = self.rate_slot(slot, e_words, size_e, weight);
            ratings += 1;
            let seg = self.arena.seg(slot);
            if best.is_none_or(|(bs, br)| br < r || (br == r && seg < bs)) {
                best = Some((seg, r));
            }
        }
        (best, ratings)
    }

    /// The indexed scan: OR the presence bitmaps of the entity's rating
    /// bits (plus the zero-size slots) into the candidate set, then rate
    /// only the candidates. Each candidate is rated exactly once — the
    /// bitmap OR deduplicates partitions that share several attributes
    /// with the entity by construction.
    fn best_indexed(
        &self,
        rating_syn: &Synopsis,
        size_e: u64,
        weight: f64,
    ) -> (Option<(SegmentId, f64)>, u32) {
        let mut candidates = self.zero_size.clone();
        self.rating_presence
            .union_rows_into(rating_syn.iter().map(|a| a.index()), &mut candidates);

        let e_words = rating_syn.bits().blocks();
        let mut best: Option<(SegmentId, f64)> = None;
        let mut ratings = 0u32;
        for slot in candidates.iter_ones() {
            let slot = slot as usize;
            let r = self.rate_slot(slot, e_words, size_e, weight);
            ratings += 1;
            let seg = self.arena.seg(slot);
            if best.is_none_or(|(bs, br)| br < r || (br == r && seg < bs)) {
                best = Some((seg, r));
            }
        }
        // Non-candidates rate strictly negative; if no candidate exists the
        // best over all partitions is negative too, which the caller maps to
        // "create a new partition" — but Algorithm 1's scan would still
        // *pick* one. Report the lowest-id partition with rating < 0 so both
        // paths return identical results even when the caller ignores it.
        if best.is_none() {
            if let Some(meta) = self.parts.values().next() {
                let r = self.rate_slot(meta.slot, e_words, size_e, weight);
                return (Some((meta.segment, r)), ratings);
            }
        }
        (best, ratings)
    }

    /// The planner's survivor set for query synopsis `q` via the
    /// attribute-presence bitmaps: segments whose partition shares at least
    /// one attribute with `q` (ascending — the catalog's plan order), plus
    /// the pruned count. Returns `None` when the index mode is `Off`, in
    /// which case callers fall back to the per-partition `is_disjoint`
    /// test over [`PartitionCatalog::pruning_view`].
    ///
    /// Exactness (property-tested): a partition survives the `|p ∧ q| = 0`
    /// test iff it carries one of `q`'s attributes, iff its slot is set in
    /// one of the ORed presence rows.
    pub fn plan_survivors(&self, q: &Synopsis) -> Option<(Vec<SegmentId>, usize)> {
        if self.mode == IndexMode::Off {
            return None;
        }
        let mut acc = FixedBitSet::default();
        self.attr_presence
            .union_rows_into(q.iter().map(|a| a.index()), &mut acc);
        let mut survivors: Vec<SegmentId> =
            acc.iter_ones().map(|slot| self.arena.seg(slot as usize)).collect();
        survivors.sort_unstable();
        let pruned = self.parts.len() - survivors.len();
        Some((survivors, pruned))
    }

    /// View for the query planner: `(segment, attribute synopsis, SIZE(p))`
    /// per partition, ascending by segment — the per-partition pruning
    /// oracle (and the fallback when the index is off).
    pub fn pruning_view(&self) -> impl Iterator<Item = (SegmentId, &Synopsis, u64)> {
        self.parts
            .values()
            .map(|m| (m.segment, &m.attr_synopsis, m.size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(32, bits.iter().copied())
    }

    fn add(
        cat: &mut PartitionCatalog,
        seg: SegmentId,
        id: u64,
        bits: &[u32],
        size: u64,
    ) {
        let s = syn(bits);
        cat.add_entity(seg, EntityId(id), &s, &s, size, true);
    }

    #[test]
    fn synopsis_is_or_of_members_with_refcounts() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let m = cat.get(SegmentId(0)).unwrap();
        assert_eq!(m.rating_synopsis(), syn(&[0, 1, 2]));
        assert_eq!(m.entities, 2);
        assert_eq!(m.size, 4);
        // Removing entity 1 clears bit 0 but keeps shared bit 1.
        let s1 = syn(&[0, 1]);
        let left = cat.remove_entity(SegmentId(0), EntityId(1), &s1, &s1, 2);
        assert_eq!(left, 1);
        let m = cat.get(SegmentId(0)).unwrap();
        assert_eq!(m.rating_synopsis(), syn(&[1, 2]));
        assert_eq!(m.size, 2);
    }

    #[test]
    fn arena_row_mirrors_refcount_synopsis() {
        // The packed row the hot path scans must equal the refcount view
        // through adds, removes, and partition removal/adoption.
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 5, 31], 3);
        add(&mut cat, SegmentId(0), 2, &[5, 7], 2);
        let s = syn(&[0, 5, 31]);
        cat.remove_entity(SegmentId(0), EntityId(1), &s, &s, 3);
        let m = cat.get(SegmentId(0)).unwrap();
        let row_bits: Vec<u32> = words::iter_ones(cat.arena.row(m.slot)).collect();
        let syn_bits: Vec<u32> = m.rating_synopsis().iter().map(|a| a.index()).collect();
        assert_eq!(row_bits, syn_bits);
        assert_eq!(row_bits, vec![5, 7]);
    }

    #[test]
    fn best_partition_prefers_overlap() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0, 1, 2], 3);
        add(&mut cat, SegmentId(1), 2, &[8, 9], 2);
        let (best, ratings) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        let (seg, r) = best.unwrap();
        assert_eq!(seg, SegmentId(0));
        assert!(r > 0.0);
        assert_eq!(ratings, 2);
    }

    #[test]
    fn empty_catalog_returns_none() {
        for mode in [IndexMode::Off, IndexMode::On, IndexMode::Auto] {
            let cat = PartitionCatalog::new(mode);
            let (best, ratings) = cat.best_partition(&syn(&[0]), 1, 0.5);
            assert!(best.is_none());
            assert_eq!(ratings, 0);
        }
    }

    #[test]
    fn ties_go_to_lowest_segment() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(1), 2, &[0, 1], 2);
        let (best, _) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(0));
    }

    #[test]
    fn ties_go_to_lowest_segment_against_slot_order() {
        // Recycle slots so that slot order disagrees with segment order:
        // the sweep's explicit tie-break must still pick the lowest segment.
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(7));
        add(&mut cat, SegmentId(7), 1, &[0, 1], 2); // slot 0
        cat.create_partition(SegmentId(9));
        add(&mut cat, SegmentId(9), 2, &[0, 1], 2); // slot 1
        cat.remove_partition(SegmentId(7)); // frees slot 0
        cat.create_partition(SegmentId(3)); // recycles slot 0… wait, 3 < 9
        add(&mut cat, SegmentId(3), 3, &[0, 1], 2);
        let (best, _) = cat.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(3));
        // And for the indexed path.
        let mut cat2 = PartitionCatalog::new(IndexMode::On);
        cat2.create_partition(SegmentId(7));
        add(&mut cat2, SegmentId(7), 1, &[0, 1], 2);
        cat2.create_partition(SegmentId(9));
        add(&mut cat2, SegmentId(9), 2, &[0, 1], 2);
        cat2.remove_partition(SegmentId(7));
        cat2.create_partition(SegmentId(3));
        add(&mut cat2, SegmentId(3), 3, &[0, 1], 2);
        let (best, _) = cat2.best_partition(&syn(&[0, 1]), 2, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(3));
    }

    #[test]
    fn indexed_matches_unindexed() {
        // Mirror a mutation sequence across both catalogs and compare the
        // argmax for several probe entities.
        let probes: Vec<Vec<u32>> =
            vec![vec![0, 1], vec![5], vec![2, 9], vec![], vec![0, 9, 11]];
        let mut plain = PartitionCatalog::new(IndexMode::Off);
        let mut indexed = PartitionCatalog::new(IndexMode::On);
        for cat in [&mut plain, &mut indexed] {
            for s in 0..4u32 {
                cat.create_partition(SegmentId(s));
            }
            add(cat, SegmentId(0), 1, &[0, 1, 2], 3);
            add(cat, SegmentId(1), 2, &[5, 6], 2);
            add(cat, SegmentId(2), 3, &[9, 10, 11], 3);
            add(cat, SegmentId(3), 4, &[0, 9], 2);
            // Shrink partition 0 so bit 2 clears from row and presence.
            let s = syn(&[0, 1, 2]);
            cat.remove_entity(SegmentId(0), EntityId(1), &s, &s, 3);
            add(cat, SegmentId(0), 5, &[0, 1], 2);
        }
        for probe in &probes {
            let s = syn(probe);
            let size = probe.len() as u64;
            for w in [0.0, 0.2, 0.5, 1.0] {
                let (a, _) = plain.best_partition(&s, size, w);
                let (b, _) = indexed.best_partition(&s, size, w);
                let (sa, ra) = a.unwrap();
                let (sb, rb) = b.unwrap();
                if ra >= 0.0 {
                    // Non-negative best: the algorithm inserts into it, so
                    // the argmax must match exactly.
                    assert_eq!((sa, ra), (sb, rb), "probe {probe:?} w={w}");
                } else {
                    // Negative best: a new partition is created either way;
                    // only the sign must agree.
                    assert!(rb < 0.0, "probe {probe:?} w={w}: {ra} vs {rb}");
                }
            }
        }
    }

    #[test]
    fn indexed_scans_fewer_partitions() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        for s in 0..10u32 {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), &[s, s + 10], 2);
        }
        let (_, ratings) = cat.best_partition(&syn(&[3]), 1, 0.5);
        assert!(ratings < 10, "index should prune the scan, rated {ratings}");
    }

    #[test]
    fn candidates_are_deduplicated() {
        // A partition sharing many attributes with the entity must be
        // rated once, not once per shared attribute.
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        add(&mut cat, SegmentId(0), 1, &[0, 1, 2, 3, 4, 5], 6);
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(1), 2, &[20], 1);
        let (best, ratings) = cat.best_partition(&syn(&[0, 1, 2, 3, 4, 5]), 6, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(0));
        assert_eq!(ratings, 1, "one rating despite six shared attributes");
    }

    #[test]
    fn auto_mode_gates_on_partition_count() {
        let mut cat = PartitionCatalog::new(IndexMode::Auto);
        for s in 0..IndexMode::AUTO_MIN_PARTITIONS as u32 {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), &[s % 32], 2);
        }
        // At the gate: candidates only.
        let (_, ratings) = cat.best_partition(&syn(&[0]), 1, 0.5);
        assert!(ratings < IndexMode::AUTO_MIN_PARTITIONS as u32);
        // Below the gate: full sweep.
        cat.remove_partition(SegmentId(0));
        let (_, ratings) = cat.best_partition(&syn(&[1]), 1, 0.5);
        assert_eq!(ratings, IndexMode::AUTO_MIN_PARTITIONS as u32 - 1);
    }

    #[test]
    fn remove_partition_cleans_presence() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        cat.create_partition(SegmentId(1));
        add(&mut cat, SegmentId(0), 1, &[0], 1);
        add(&mut cat, SegmentId(1), 2, &[0, 1], 2);
        let meta = cat.remove_partition(SegmentId(0));
        assert_eq!(meta.entities, 1);
        let (best, _) = cat.best_partition(&syn(&[0]), 1, 0.5);
        assert_eq!(best.unwrap().0, SegmentId(1));
        assert_eq!(cat.len(), 1);
        let (survivors, pruned) = cat.plan_survivors(&syn(&[0])).unwrap();
        assert_eq!(survivors, vec![SegmentId(1)]);
        assert_eq!(pruned, 0);
    }

    #[test]
    fn plan_survivors_matches_disjoint_oracle() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        for (s, bits) in [(0u32, &[0u32, 1][..]), (1, &[5][..]), (2, &[1, 9][..])] {
            cat.create_partition(SegmentId(s));
            add(&mut cat, SegmentId(s), u64::from(s), bits, 2);
        }
        for q in [&[1u32][..], &[0, 5][..], &[7][..], &[][..]] {
            let q = syn(q);
            let oracle: Vec<SegmentId> = cat
                .pruning_view()
                .filter(|(_, p, _)| !q.is_disjoint(p))
                .map(|(s, _, _)| s)
                .collect();
            let (survivors, pruned) = cat.plan_survivors(&q).unwrap();
            assert_eq!(survivors, oracle);
            assert_eq!(pruned, cat.len() - survivors.len());
        }
        assert!(PartitionCatalog::new(IndexMode::Off)
            .plan_survivors(&syn(&[0]))
            .is_none());
    }

    #[test]
    fn sparseness_of_partition() {
        let mut cat = PartitionCatalog::new(IndexMode::Off);
        cat.create_partition(SegmentId(0));
        // 2 entities, 3 partition attrs, 4 filled cells → 1 - 4/6.
        add(&mut cat, SegmentId(0), 1, &[0, 1], 2);
        add(&mut cat, SegmentId(0), 2, &[1, 2], 2);
        let m = cat.get(SegmentId(0)).unwrap();
        assert!((m.sparseness() - (1.0 - 4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_size_partitions_stay_candidates() {
        let mut cat = PartitionCatalog::new(IndexMode::On);
        cat.create_partition(SegmentId(0));
        // Partition 0 holds one zero-size entity with an empty synopsis.
        cat.add_entity(SegmentId(0), EntityId(1), &syn(&[]), &syn(&[]), 0, true);
        // A disjoint probe should still see partition 0 (rating 0 ≥ 0
        // beats creating a new partition in Algorithm 1's comparison).
        let (best, _) = cat.best_partition(&syn(&[5]), 1, 0.5);
        let (seg, r) = best.unwrap();
        assert_eq!(seg, SegmentId(0));
        assert_eq!(r, 0.0);
    }
}
