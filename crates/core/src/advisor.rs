//! Parameter advisor — an extension beyond the paper.
//!
//! §V shows that the right weight `w` and partition size limit `B` depend
//! on the data's irregularity and the workload's selectivity profile
//! ("the partition size limit should be set lower for very selective
//! workloads and higher for less selective workloads"; "for other data
//! sets … another weight is likely to be optimal"). The paper leaves the
//! choice to the operator. This module automates it: it partitions a
//! *sample* of the data under every candidate configuration, scores each
//! with a cost blending Definition 1 efficiency and union overhead, and
//! recommends the best.

use cind_model::{Entity, Synopsis};
use cind_storage::UniversalTable;

use crate::efficiency::efficiency_of;
use crate::partitioner::Cinderella;
use crate::{Capacity, Config, CoreError};

/// One scored candidate configuration.
#[derive(Clone, Debug)]
pub struct CandidateScore {
    /// The weight tried.
    pub weight: f64,
    /// The capacity tried.
    pub capacity: u64,
    /// Partitions produced on the sample.
    pub partitions: usize,
    /// Definition 1 efficiency on the sample.
    pub efficiency: f64,
    /// Mean number of partitions a workload query must union.
    pub partitions_touched: f64,
    /// Overhead-adjusted efficiency (higher is better): Definition 1 with a
    /// fixed per-touched-partition cost added to the denominator, modelling
    /// the union branch and its partially filled last page.
    pub score: f64,
}

/// The advisor's output.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// The winning configuration (clone into a [`Config`]).
    pub weight: f64,
    /// The winning capacity.
    pub capacity: u64,
    /// All candidates, best first.
    pub candidates: Vec<CandidateScore>,
}

/// Advisor knobs.
#[derive(Clone, Debug)]
pub struct AdvisorConfig {
    /// Candidate weights (default: the paper's sweep 0.1–0.8).
    pub weights: Vec<f64>,
    /// Candidate capacities (entities per partition).
    pub capacities: Vec<u64>,
    /// Fixed cost (in `SIZE` cells) charged per partition a query touches,
    /// modelling the union branch and its partially filled last page. 0
    /// scores pure Definition 1 efficiency; ~64 cells ≈ one 8 KiB page of
    /// small values.
    pub union_cost_cells: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            weights: vec![0.1, 0.2, 0.3, 0.5, 0.8],
            capacities: vec![500, 2_000, 5_000, 20_000],
            union_cost_cells: 64,
        }
    }
}

/// Scores every candidate `(w, B)` on `sample` against `workload` and
/// recommends the best.
///
/// The sample should be a few thousand entities drawn from the stream the
/// table will see; the workload is the query synopses of Definition 1.
/// Cost: one Cinderella load of the sample per candidate — seconds, not
/// hours, which is the point of sampling.
///
/// ```
/// use cind_model::{AttrId, Entity, EntityId, Synopsis, Value};
/// use cinderella_core::{recommend, AdvisorConfig};
///
/// let sample: Vec<Entity> = (0..50u64)
///     .map(|i| {
///         let attr = AttrId(if i % 2 == 0 { 0 } else { 4 });
///         Entity::new(EntityId(i), [(attr, Value::Int(1))]).unwrap()
///     })
///     .collect();
/// let workload = vec![Synopsis::from_bits(8, [0]), Synopsis::from_bits(8, [4])];
/// let rec = recommend(&sample, 8, &workload, &AdvisorConfig::default())?;
/// assert!(!rec.candidates.is_empty());
/// assert!((0.0..=1.0).contains(&rec.weight));
/// # Ok::<(), cinderella_core::CoreError>(())
/// ```
///
/// # Errors
/// [`CoreError::Invariant`] when the sample or the candidate grids are
/// empty; sample-insert failures propagate (they cannot occur for entities
/// whose attribute ids fit `universe`).
pub fn recommend(
    sample: &[Entity],
    universe: usize,
    workload: &[Synopsis],
    advisor: &AdvisorConfig,
) -> Result<Recommendation, CoreError> {
    if sample.is_empty() {
        return Err(CoreError::Invariant("advisor needs a sample"));
    }
    if advisor.weights.is_empty() || advisor.capacities.is_empty() {
        return Err(CoreError::Invariant("advisor needs candidates"));
    }
    let entity_syns: Vec<(Synopsis, u64)> = sample
        .iter()
        .map(|e| (e.synopsis(universe), e.arity() as u64))
        .collect();

    let mut candidates = Vec::new();
    for &w in &advisor.weights {
        for &b in &advisor.capacities {
            let mut table = UniversalTable::new(0);
            for i in 0..universe {
                // The advisor's scratch table needs ids 0..universe to line
                // up with the sample's attribute ids.
                table.catalog_mut().intern(&format!("__advisor_attr{i}"));
            }
            let mut cindy = Cinderella::new(Config {
                weight: w,
                capacity: Capacity::MaxEntities(b),
                ..Config::default()
            });
            for e in sample {
                cindy.insert(&mut table, e.clone())?;
            }
            let parts: Vec<(Synopsis, u64)> = cindy
                .catalog()
                .iter()
                .map(|m| (m.attr_synopsis.clone(), m.size))
                .collect();
            let efficiency = efficiency_of(entity_syns.iter().cloned(), &parts, workload);
            // Relevant cells (Definition 1's numerator) and the adjusted
            // read cost: every touched partition costs its SIZE plus the
            // fixed union overhead.
            let mut relevant = 0u64;
            for (syn, size) in &entity_syns {
                let hits =
                    workload.iter().filter(|q| !q.is_disjoint(syn)).count() as u64;
                relevant += hits * size;
            }
            let mut read = 0u64;
            let mut touched_total = 0u64;
            for q in workload {
                for (syn, size) in &parts {
                    if !q.is_disjoint(syn) {
                        read += size + advisor.union_cost_cells;
                        touched_total += 1;
                    }
                }
            }
            let score = if read == 0 { 1.0 } else { relevant as f64 / read as f64 };
            let partitions_touched = if workload.is_empty() {
                0.0
            } else {
                touched_total as f64 / workload.len() as f64
            };
            candidates.push(CandidateScore {
                weight: w,
                capacity: b,
                partitions: cindy.catalog().len(),
                efficiency,
                partitions_touched,
                score,
            });
        }
    }
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    let best = candidates
        .first()
        .ok_or(CoreError::Invariant("advisor scored no candidates"))?;
    Ok(Recommendation {
        weight: best.weight,
        capacity: best.capacity,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, EntityId, Value};

    /// Two clean shapes and a one-attribute workload per shape.
    fn sample() -> (Vec<Entity>, Vec<Synopsis>) {
        let entities = (0..200u64)
            .map(|i| {
                let base = if i % 2 == 0 { 0u32 } else { 4 };
                Entity::new(
                    EntityId(i),
                    (0..3).map(|k| (AttrId(base + k), Value::Int(1))),
                )
                .unwrap()
            })
            .collect();
        let workload = vec![
            Synopsis::from_bits(8, [0]),
            Synopsis::from_bits(8, [4]),
        ];
        (entities, workload)
    }

    #[test]
    fn recommends_a_candidate_that_separates_the_shapes() {
        let (entities, workload) = sample();
        let rec = recommend(&entities, 8, &workload, &AdvisorConfig::default()).unwrap();
        let best = &rec.candidates[0];
        assert!(
            (best.efficiency - 1.0).abs() < 1e-12,
            "separable shapes must reach efficiency 1, got {best:?}"
        );
        // Candidates are sorted by score.
        for w in rec.candidates.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(rec.weight, best.weight);
        assert_eq!(rec.capacity, best.capacity);
    }

    #[test]
    fn union_penalty_prefers_fewer_partitions() {
        let (entities, workload) = sample();
        // Candidates that only differ in capacity: tiny B fragments the
        // data, which the union penalty must punish.
        let cfg = AdvisorConfig {
            weights: vec![0.3],
            capacities: vec![4, 1_000],
            union_cost_cells: 64,
        };
        let rec = recommend(&entities, 8, &workload, &cfg).unwrap();
        assert_eq!(rec.capacity, 1_000, "{:?}", rec.candidates);
    }

    #[test]
    fn all_scores_are_reported() {
        let (entities, workload) = sample();
        let cfg = AdvisorConfig {
            weights: vec![0.1, 0.5],
            capacities: vec![50, 500],
            union_cost_cells: 64,
        };
        let rec = recommend(&entities, 8, &workload, &cfg).unwrap();
        assert_eq!(rec.candidates.len(), 4);
        for c in &rec.candidates {
            assert!(c.efficiency > 0.0 && c.efficiency <= 1.0);
            assert!(c.score > 0.0 && c.score <= c.efficiency + 1e-12);
            assert!(c.partitions_touched >= 1.0);
            assert!(c.partitions > 0);
        }
    }

    #[test]
    fn empty_sample_is_a_typed_error() {
        let err = recommend(&[], 8, &[], &AdvisorConfig::default()).unwrap_err();
        assert_eq!(err, CoreError::Invariant("advisor needs a sample"));
        let cfg = AdvisorConfig { weights: vec![], ..AdvisorConfig::default() };
        let err = recommend(&sample().0, 8, &[], &cfg).unwrap_err();
        assert_eq!(err, CoreError::Invariant("advisor needs candidates"));
    }
}
