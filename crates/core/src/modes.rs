//! Entity-based vs. workload-based synopses (§II–III).

use cind_model::{Entity, Synopsis};

/// How entity (and hence partition) synopses are derived for *rating*.
///
/// §II: an entity-based solution clusters entities with similar attribute
/// sets and is workload-independent; a workload-based solution clusters
/// entities relevant to the same queries and is tailored to a known query
/// set. §III: "for a workload-based partitioning, an entity synopsis lists
/// the queries an entity is relevant to, while [for an entity-based
/// partitioning] an entity synopsis lists the attributes an entity
/// instantiates."
///
/// Query-time pruning always uses *attribute* synopses, which the partition
/// catalog maintains in both modes.
#[derive(Clone, Debug, Default)]
pub enum SynopsisMode {
    /// Rating synopsis = the entity's attribute set.
    #[default]
    EntityBased,
    /// Rating synopsis = the set of workload queries the entity is relevant
    /// to (query `q` is relevant iff `|e ∧ q| ≥ 1`). The vector holds the
    /// workload's query synopses in attribute space; bit `i` of an entity's
    /// rating synopsis corresponds to `queries[i]`.
    WorkloadBased(Vec<Synopsis>),
}

impl SynopsisMode {
    /// The rating-synopsis universe size given the attribute universe.
    pub fn universe(&self, attr_universe: usize) -> usize {
        match self {
            SynopsisMode::EntityBased => attr_universe,
            SynopsisMode::WorkloadBased(queries) => queries.len(),
        }
    }

    /// Builds the rating synopsis of `entity` over `attr_universe`
    /// attributes.
    pub fn entity_synopsis(&self, entity: &Entity, attr_universe: usize) -> Synopsis {
        match self {
            SynopsisMode::EntityBased => entity.synopsis(attr_universe),
            SynopsisMode::WorkloadBased(queries) => {
                let attrs = entity.synopsis(attr_universe);
                Synopsis::from_bits(
                    queries.len(),
                    queries
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| !q.is_disjoint(&attrs))
                        .map(|(i, _)| i as u32),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, EntityId, Value};

    fn entity(attrs: &[u32]) -> Entity {
        Entity::new(
            EntityId(1),
            attrs.iter().map(|&a| (AttrId(a), Value::Int(0))),
        )
        .unwrap()
    }

    #[test]
    fn entity_based_is_the_attribute_set() {
        let e = entity(&[1, 3]);
        let s = SynopsisMode::EntityBased.entity_synopsis(&e, 8);
        assert_eq!(s, Synopsis::from_bits(8, [1, 3]));
        assert_eq!(SynopsisMode::EntityBased.universe(8), 8);
    }

    #[test]
    fn workload_based_marks_relevant_queries() {
        let queries = vec![
            Synopsis::from_bits(8, [0]),    // q0: attr 0
            Synopsis::from_bits(8, [1, 2]), // q1: attrs 1,2
            Synopsis::from_bits(8, [5]),    // q2: attr 5
        ];
        let mode = SynopsisMode::WorkloadBased(queries);
        assert_eq!(mode.universe(8), 3);
        let e = entity(&[1, 3]); // relevant to q1 only
        let s = mode.entity_synopsis(&e, 8);
        assert_eq!(s, Synopsis::from_bits(3, [1]));
        // An entity matching nothing has an empty rating synopsis.
        let e = entity(&[7]);
        assert!(mode.entity_synopsis(&e, 8).is_empty());
    }
}
