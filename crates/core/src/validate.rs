//! Structural invariant checking for the catalog/arena/index triad.
//!
//! Cinderella's pruning guarantee (Definition 1: `|p ∧ q| = 0` ⇒ the
//! partition can be skipped) is only sound while three redundant views of
//! the same state agree: the per-partition reference counts (the source of
//! truth), the packed [`SynopsisArena`](crate::SynopsisArena) rows the hot
//! loops sweep, and the [`PresenceIndex`](crate::PresenceIndex) bitmaps
//! that produce candidate and survivor sets. Each structure exposes a
//! `validate()` that cross-checks its invariants and returns *every*
//! violation it finds — not just the first — as an [`InvariantViolation`]
//! with a precise diagnostic naming the slot/segment/attribute and both
//! sides of the disagreement.
//!
//! Where the checks run:
//!
//! * **Debug builds** assert a catalog-level sweep at every structural
//!   boundary — split, merge, bulk stitch, rebuild, and arena stride
//!   relayout — so any maintenance bug trips the nearest boundary instead
//!   of surfacing queries later as a silently wrong pruning decision.
//! * **`cind check`** (the CLI subcommand) runs the deep sweep — including
//!   the entity-level cross-check of
//!   [`Cinderella::validate`](crate::Cinderella::validate) — against a
//!   restored snapshot and exits non-zero on any violation.
//! * **Tier-1 integration tests** end with a full `validate()` call, and a
//!   property suite interleaves insert/split/merge/remove with a sweep
//!   after every operation.
//!
//! The invariant catalog itself (structure × invariant × where checked) is
//! tabulated in DESIGN.md §9.

/// One violated structural invariant.
///
/// `structure` names the owning data structure (`"arena"`, `"presence"`,
/// `"catalog"`, `"starters"`, `"table"`, `"buffer-pool"`); `detail` is a
/// self-contained diagnostic naming the slot / segment / attribute involved
/// and both sides of the disagreement, precise enough to act on without
/// re-running the check under a debugger.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation {
    /// The data structure whose invariant is violated.
    pub structure: &'static str,
    /// Human- and log-readable diagnostic with the exact disagreement.
    pub detail: String,
}

impl InvariantViolation {
    /// Builds a violation for `structure` with the given diagnostic.
    pub fn new(structure: &'static str, detail: impl Into<String>) -> Self {
        Self { structure, detail: detail.into() }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.structure, self.detail)
    }
}

/// Renders a violation list as one line per violation (the `cind check`
/// output format).
pub fn render(violations: &[InvariantViolation]) -> String {
    violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_structure_and_detail() {
        let v = InvariantViolation::new("arena", "slot 3: free but live");
        assert_eq!(v.to_string(), "[arena] slot 3: free but live");
        let r = render(&[v.clone(), InvariantViolation::new("catalog", "x")]);
        assert_eq!(r, "[arena] slot 3: free but live\n[catalog] x");
    }
}
