//! The Cinderella partition rating (§IV of the paper).

use cind_bitset::FusedCounts;
use cind_model::Synopsis;

/// The raw ingredients of one entity/partition rating.
///
/// All four set cardinalities come from a *single* fused word pass over the
/// synopses ([`Synopsis::fused`] or the arena's word kernel); sizes come
/// from the partition catalog.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RatingInputs {
    /// `SIZE(e)`.
    pub size_e: u64,
    /// `SIZE(p)`.
    pub size_p: u64,
    /// `|e ∧ p|` — shared attributes.
    pub overlap: u32,
    /// `|¬e ∧ p|` — attributes the partition has but the entity lacks.
    pub entity_missing: u32,
    /// `|e ∧ ¬p|` — attributes the entity has but the partition lacks.
    pub partition_missing: u32,
    /// `|e ∨ p|` — union cardinality (normaliser).
    pub union_count: u32,
}

impl RatingInputs {
    /// Computes the counts for an entity synopsis `e` against a partition
    /// synopsis `p`, with the given sizes — one fused pass over the words.
    pub fn compute(e: &Synopsis, size_e: u64, p: &Synopsis, size_p: u64) -> Self {
        Self::from_fused(e.fused(p), size_e, size_p)
    }

    /// The counts from an already-computed fused kernel result, with the
    /// left operand the entity and the right the partition. This is the
    /// arena sweep's entry point: the kernel ran on raw word rows.
    pub fn from_fused(c: FusedCounts, size_e: u64, size_p: u64) -> Self {
        Self {
            size_e,
            size_p,
            overlap: c.and,
            entity_missing: c.right - c.and,
            partition_missing: c.left - c.and,
            union_count: c.or,
        }
    }
}

/// The local rating `r' = w·h⁺ − (1−w)·(h⁻_e + h⁻_p)` with
///
/// * homogeneity `h⁺ = (SIZE(p) + SIZE(e)) · |e ∧ p|`,
/// * entity heterogeneity `h⁻_e = SIZE(e) · |¬e ∧ p|`,
/// * partition heterogeneity `h⁻_p = SIZE(p) · |e ∧ ¬p|`.
pub fn local_rating(w: f64, i: &RatingInputs) -> f64 {
    let h_pos = (i.size_p + i.size_e) as f64 * f64::from(i.overlap);
    let h_ent = i.size_e as f64 * f64::from(i.entity_missing);
    let h_part = i.size_p as f64 * f64::from(i.partition_missing);
    w * h_pos - (1.0 - w) * (h_ent + h_part)
}

/// The global rating `r = r' / ((SIZE(p) + SIZE(e)) · |e ∨ p|)`.
///
/// The normaliser is zero only when both operands carry no evidence at all
/// (`|e ∨ p| = 0`, or both sizes are zero); `r'` is then also zero and the
/// rating is defined as neutral 0 rather than NaN — such a pair neither
/// attracts nor repels.
pub fn global_rating(w: f64, i: &RatingInputs) -> f64 {
    let denom = (i.size_p + i.size_e) as f64 * f64::from(i.union_count);
    if denom == 0.0 {
        return 0.0;
    }
    local_rating(w, i) / denom
}

/// Convenience: global rating straight from synopses and sizes.
pub fn rate(w: f64, e: &Synopsis, size_e: u64, p: &Synopsis, size_p: u64) -> f64 {
    global_rating(w, &RatingInputs::compute(e, size_e, p, size_p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(32, bits.iter().copied())
    }

    /// Hand-computed example in the shape of the paper's Fig. 3: the entity
    /// shares two attributes with the partition, misses one of the
    /// partition's and brings one of its own.
    #[test]
    fn hand_computed_rating() {
        let e = syn(&[0, 1, 2]); // entity: a0 a1 a2
        let p = syn(&[0, 1, 3]); // partition: a0 a1 a3
        let i = RatingInputs::compute(&e, 3, &p, 12);
        assert_eq!(i.overlap, 2);
        assert_eq!(i.entity_missing, 1);
        assert_eq!(i.partition_missing, 1);
        assert_eq!(i.union_count, 4);
        // h+ = (12+3)*2 = 30 ; h_e- = 3*1 = 3 ; h_p- = 12*1 = 12
        let w = 0.5;
        let r_local = local_rating(w, &i);
        assert!((r_local - (0.5 * 30.0 - 0.5 * 15.0)).abs() < 1e-12);
        let r = global_rating(w, &i);
        assert!((r - 7.5 / (15.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn perfect_match_rates_w() {
        // e == p: overlap = |e|, no heterogeneity.
        // r = w*(S_p+S_e)*|e| / ((S_p+S_e)*|e|) = w.
        let e = syn(&[1, 2, 3]);
        let r = rate(0.3, &e, 3, &e, 30);
        assert!((r - 0.3).abs() < 1e-12);
    }

    #[test]
    fn disjoint_nonempty_rates_negative() {
        let e = syn(&[0, 1]);
        let p = syn(&[2, 3]);
        for w in [0.0, 0.2, 0.5, 0.9] {
            assert!(rate(w, &e, 2, &p, 10) < 0.0, "w={w}");
        }
        // …except at w = 1, where negative evidence is ignored entirely.
        assert_eq!(rate(1.0, &e, 2, &p, 10), 0.0);
    }

    #[test]
    fn weight_zero_rejects_any_heterogeneity() {
        let e = syn(&[0, 1]);
        let p = syn(&[0, 1, 2]); // partition has one extra attribute
        assert!(rate(0.0, &e, 2, &p, 9) < 0.0);
        // but a perfectly matching pair still rates 0 (not positive).
        assert_eq!(rate(0.0, &e, 2, &syn(&[0, 1]), 9), 0.0);
    }

    #[test]
    fn higher_weight_never_lowers_rating() {
        let e = syn(&[0, 1, 4]);
        let p = syn(&[0, 2, 4, 7]);
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=10 {
            let w = f64::from(step) / 10.0;
            let r = rate(w, &e, 3, &p, 20);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn empty_evidence_is_neutral() {
        let empty = syn(&[]);
        assert_eq!(rate(0.5, &empty, 0, &empty, 0), 0.0);
        // Empty entity against any partition: no overlap, no heterogeneity
        // that weighs anything (sizes multiply to zero on the entity side,
        // counts on the partition side).
        let p = syn(&[1, 2]);
        assert_eq!(rate(0.5, &empty, 0, &p, 10), 0.0);
    }

    #[test]
    fn rating_is_bounded_by_plus_minus_one() {
        // |r| ≤ max(w, 1-w) ≤ 1 because h+ ≤ (S_p+S_e)·|e∨p| and
        // h_e- + h_p- ≤ (S_p+S_e)·|e∨p|.
        let cases = [
            (&[0u32, 1, 2][..], 3u64, &[0u32, 1, 3][..], 100u64),
            (&[5][..], 1, &[5][..], 1),
            (&[0, 1][..], 9, &[4, 5, 6][..], 2),
        ];
        for w in [0.0, 0.3, 1.0] {
            for (eb, se, pb, sp) in cases {
                let r = rate(w, &syn(eb), se, &syn(pb), sp);
                assert!((-1.0..=1.0).contains(&r), "r={r} out of bounds");
            }
        }
    }
}
