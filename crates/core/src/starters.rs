//! Split-starter maintenance (Algorithm 1, lines 15–24).
//!
//! Each partition keeps a pair of member entities whose synopses differ as
//! much as possible — the *split starters*. The pair is maintained
//! incrementally: the first two entities form the initial pair; every later
//! arrival replaces one starter if pairing it with the *other* starter
//! yields a larger difference `|e₁ ⊕ e₂|` than the current pair. This is a
//! heuristic (the true most-differential pair would cost a quadratic scan),
//! but it is O(1) per insert, which is what makes the split affordable
//! online.

use cind_model::{EntityId, Synopsis};

/// The split-starter pair of one partition.
///
/// Starter synopses are cached here so maintenance never re-reads stored
/// entities. A starter slot can be vacated by a delete; the pair is then
/// backfilled by later inserts, or repaired by a scan at split time
/// (`Cinderella::pick_seeds`).
#[derive(Clone, Debug, Default)]
pub struct SplitStarters {
    a: Option<(EntityId, Synopsis)>,
    b: Option<(EntityId, Synopsis)>,
    /// Cached `DIFF(a, b)`; valid when both slots are filled.
    diff_ab: u32,
}

impl SplitStarters {
    /// Empty pair (fresh partition).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starter A, if set.
    pub fn a(&self) -> Option<(EntityId, &Synopsis)> {
        self.a.as_ref().map(|(id, s)| (*id, s))
    }

    /// Starter B, if set.
    pub fn b(&self) -> Option<(EntityId, &Synopsis)> {
        self.b.as_ref().map(|(id, s)| (*id, s))
    }

    /// The cached difference of the current pair (0 unless both set).
    pub fn pair_diff(&self) -> u32 {
        if self.a.is_some() && self.b.is_some() {
            self.diff_ab
        } else {
            0
        }
    }

    /// Whether `id` is one of the starters.
    pub fn is_starter(&self, id: EntityId) -> bool {
        self.a.as_ref().is_some_and(|(a, _)| *a == id)
            || self.b.as_ref().is_some_and(|(b, _)| *b == id)
    }

    /// Algorithm 1, lines 12 and 15–24: fold a newly inserted entity into
    /// the pair.
    ///
    /// * empty slot A → `e` becomes starter A (line 12 for new partitions);
    /// * empty slot B → `e` becomes starter B (lines 15–16);
    /// * otherwise `e` replaces the starter it is *less* different from,
    ///   if that improves on the current pair difference (lines 17–24).
    pub fn offer(&mut self, id: EntityId, synopsis: &Synopsis) {
        match (&self.a, &self.b) {
            (None, _) => self.a = Some((id, synopsis.clone())),
            (Some((_, sa)), None) => {
                self.diff_ab = sa.diff(synopsis);
                self.b = Some((id, synopsis.clone()));
            }
            (Some((_, sa)), Some((_, sb))) => {
                let r_ea = synopsis.diff(sa);
                let r_eb = synopsis.diff(sb);
                let r_ab = self.diff_ab;
                // Paper order: prefer replacing B (e pairs with A), then A.
                if r_ea >= r_eb && r_ea >= r_ab {
                    self.b = Some((id, synopsis.clone()));
                    self.diff_ab = r_ea;
                } else if r_eb >= r_ab {
                    self.a = Some((id, synopsis.clone()));
                    self.diff_ab = r_eb;
                }
            }
        }
    }

    /// Vacates the slot held by `id` (the entity left the partition).
    /// Returns `true` if a slot was vacated.
    pub fn vacate(&mut self, id: EntityId) -> bool {
        if self.a.as_ref().is_some_and(|(a, _)| *a == id) {
            // Keep the pair left-packed so `offer` refills B first.
            self.a = self.b.take();
            true
        } else if self.b.as_ref().is_some_and(|(b, _)| *b == id) {
            self.b = None;
            true
        } else {
            false
        }
    }

    /// Checks the pair's internal invariants: the slots are left-packed (B
    /// is empty whenever A is), the two starters are distinct entities, and
    /// the cached `diff_ab` matches the synopses. Returns a diagnostic for
    /// the first violation.
    pub(crate) fn check(&self) -> Result<(), String> {
        match (&self.a, &self.b) {
            (None, Some((b, _))) => {
                Err(format!("starter B ({b:?}) filled while starter A is empty"))
            }
            (Some((a, sa)), Some((b, sb))) => {
                if a == b {
                    return Err(format!("starters A and B are the same entity {a:?}"));
                }
                let want = sa.diff(sb);
                if self.diff_ab != want {
                    return Err(format!(
                        "cached pair diff {} but DIFF(a, b) = {want}",
                        self.diff_ab
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Replaces the cached synopsis of `id` (entity updated in place).
    pub fn refresh(&mut self, id: EntityId, synopsis: &Synopsis) {
        if let Some((a, s)) = &mut self.a {
            if *a == id {
                *s = synopsis.clone();
            }
        }
        if let Some((b, s)) = &mut self.b {
            if *b == id {
                *s = synopsis.clone();
            }
        }
        if let (Some((_, sa)), Some((_, sb))) = (&self.a, &self.b) {
            self.diff_ab = sa.diff(sb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(16, bits.iter().copied())
    }

    #[test]
    fn first_two_entities_form_the_pair() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0, 1]));
        assert_eq!(st.a().unwrap().0, EntityId(1));
        assert!(st.b().is_none());
        st.offer(EntityId(2), &syn(&[2, 3]));
        assert_eq!(st.b().unwrap().0, EntityId(2));
        assert_eq!(st.pair_diff(), 4);
    }

    #[test]
    fn better_pair_replaces_a_starter() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0, 1])); // A
        st.offer(EntityId(2), &syn(&[0, 2])); // B, diff(A,B) = 2
        // New entity differs from A by 4 (> 2): replaces B.
        st.offer(EntityId(3), &syn(&[2, 3, 4, 5]));
        assert_eq!(st.a().unwrap().0, EntityId(1));
        assert_eq!(st.b().unwrap().0, EntityId(3));
        assert_eq!(st.pair_diff(), syn(&[0, 1]).diff(&syn(&[2, 3, 4, 5])));
    }

    #[test]
    fn replaces_starter_a_when_diff_to_b_wins() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0])); // A
        st.offer(EntityId(2), &syn(&[0, 1])); // B, diff = 1
        // diff(e,A)=1 via {0,2}? Pick e so that diff(e,B) > diff(e,A) and
        // diff(e,B) > diff(A,B): e = {0, 2, 3}: diff to A = 2, diff to B = 3.
        st.offer(EntityId(3), &syn(&[0, 2, 3]));
        // r_eA=2, r_eB=3, r_AB=1 → max is r_eB → e replaces A.
        assert_eq!(st.a().unwrap().0, EntityId(3));
        assert_eq!(st.b().unwrap().0, EntityId(2));
        assert_eq!(st.pair_diff(), 3);
    }

    #[test]
    fn worse_entity_leaves_pair_untouched() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0, 1, 2]));
        st.offer(EntityId(2), &syn(&[5, 6, 7]));
        let before = st.pair_diff();
        st.offer(EntityId(3), &syn(&[0, 1, 5])); // close to both
        assert_eq!(st.a().unwrap().0, EntityId(1));
        assert_eq!(st.b().unwrap().0, EntityId(2));
        assert_eq!(st.pair_diff(), before);
    }

    #[test]
    fn vacate_promotes_b_and_refills() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0]));
        st.offer(EntityId(2), &syn(&[1]));
        assert!(st.vacate(EntityId(1)));
        assert_eq!(st.a().unwrap().0, EntityId(2));
        assert!(st.b().is_none());
        assert_eq!(st.pair_diff(), 0);
        assert!(!st.vacate(EntityId(9)));
        st.offer(EntityId(3), &syn(&[2, 3]));
        assert_eq!(st.b().unwrap().0, EntityId(3));
    }

    #[test]
    fn is_starter_checks_both_slots() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0]));
        st.offer(EntityId(2), &syn(&[1]));
        assert!(st.is_starter(EntityId(1)));
        assert!(st.is_starter(EntityId(2)));
        assert!(!st.is_starter(EntityId(3)));
    }

    #[test]
    fn refresh_updates_cached_synopsis_and_diff() {
        let mut st = SplitStarters::new();
        st.offer(EntityId(1), &syn(&[0]));
        st.offer(EntityId(2), &syn(&[1]));
        assert_eq!(st.pair_diff(), 2);
        st.refresh(EntityId(2), &syn(&[0]));
        assert_eq!(st.pair_diff(), 0);
    }
}
