//! The Cinderella online partitioning algorithm (the paper's contribution).
//!
//! Cinderella (§III–IV) maintains a horizontal partitioning of a sparse
//! universal table *online*: every modification (insert, update, delete)
//! incrementally adjusts the partitioning while the entity is touched
//! anyway. Partitions have a fixed maximum size `B`; a partition that would
//! overflow is split in two, seeded by its *split starters* — the pair of
//! member entities with (heuristically) maximal synopsis difference.
//!
//! Module map:
//!
//! * [`config`] — weight `w`, capacity `B`, size model, synopsis mode,
//!   catalog-index toggle.
//! * [`rating`] — §IV verbatim: homogeneity and heterogeneity scores, the
//!   local rating `r'` and the normalised global rating `r`.
//! * [`starters`] — split-starter pair maintenance (Algorithm 1 lines
//!   15–24) and seed selection for splits.
//! * [`catalog`] — the partition catalog: per-partition synopses (exact,
//!   via attribute reference counts), sizes, starters, and an optional
//!   inverted attribute→partition index that prunes the rating scan.
//! * [`partitioner`] — Algorithm 1: `insert`, plus the paper's `delete` and
//!   `update` adjustment routines and the split procedure.
//! * [`modes`] — entity-based vs. workload-based entity synopses.
//! * [`mod@efficiency`] — Definition 1, `EFFICIENCY(P)`.
//! * [`events`] — per-insert instrumentation consumed by the Fig. 8
//!   experiment.
//!
//! # Example
//!
//! ```
//! use cind_model::{Entity, EntityId, Value};
//! use cind_storage::UniversalTable;
//! use cinderella_core::{Cinderella, Config};
//!
//! let mut table = UniversalTable::new(1024);
//! let mut cindy = Cinderella::new(Config::default());
//!
//! // Two cameras and a hard drive: Cinderella separates them.
//! for (id, attrs) in [
//!     (0, vec![("name", "S120"), ("aperture", "2.0")]),
//!     (1, vec![("name", "A99"), ("aperture", "1.8")]),
//!     (2, vec![("name", "WD4000"), ("rpm", "7200")]),
//! ] {
//!     let attrs: Vec<_> = attrs
//!         .into_iter()
//!         .map(|(a, v)| (table.catalog_mut().intern(a), Value::from(v)))
//!         .collect();
//!     let e = Entity::new(EntityId(id), attrs).unwrap();
//!     cindy.insert(&mut table, e).unwrap();
//! }
//! assert_eq!(cindy.catalog().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod arena;
pub mod bulk;
pub mod catalog;
pub mod config;
pub mod efficiency;
pub mod events;
pub mod merge;
pub mod modes;
pub mod partitioner;
pub mod placement;
pub mod rating;
pub mod starters;
pub mod tier;
pub mod validate;

mod error;

pub use advisor::{recommend, AdvisorConfig, CandidateScore, Recommendation};
pub use arena::{PresenceIndex, SynopsisArena};
pub use bulk::{bulk_load, BulkLoadReport};
pub use catalog::{PartitionCatalog, PartitionMeta};
pub use config::{Capacity, Config, IndexMode, IndexTier, ReorgConfig, ReorgMode};
pub use efficiency::{efficiency, efficiency_counters, efficiency_counters_for, efficiency_of};
pub use error::CoreError;
pub use events::{InsertEvent, InsertOutcome, Stats};
pub use merge::MergeReport;
pub use modes::SynopsisMode;
pub use partitioner::Cinderella;
pub use placement::{place_affinity, place_balanced, Placement};
pub use rating::{global_rating, local_rating, RatingInputs};
pub use tier::{TierParams, TierSnapshot, TieredIndex};
pub use validate::InvariantViolation;
