//! Instrumentation: per-insert events and cumulative statistics.

use std::time::Duration;

use cind_storage::SegmentId;

/// Where an insert landed (Algorithm 1's three exits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// Normal case (line 36): the entity joined the best-rated partition.
    Inserted(SegmentId),
    /// `r_best < 0` (lines 9–13): a fresh partition was created for it.
    NewPartition(SegmentId),
    /// The best partition was full (lines 26–33) and was split.
    Split {
        /// The partition that was split (now gone).
        from: SegmentId,
        /// The two partitions seeded by the split starters.
        into: (SegmentId, SegmentId),
    },
}

impl InsertOutcome {
    /// Whether this insert triggered a split.
    pub fn is_split(&self) -> bool {
        matches!(self, InsertOutcome::Split { .. })
    }
}

/// One insert's trace record (Fig. 8 raw data).
#[derive(Clone, Copy, Debug)]
pub struct InsertEvent {
    /// Wall-clock latency of the whole insert (rating scan + storage write
    /// + split work if any).
    pub duration: Duration,
    /// Which exit the insert took.
    pub outcome: InsertOutcome,
    /// Partitions rated during the catalog scan.
    pub ratings: u32,
}

/// Cumulative counters of one [`Cinderella`](crate::Cinderella) instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Entities inserted.
    pub inserts: u64,
    /// Entities deleted.
    pub deletes: u64,
    /// Entities updated.
    pub updates: u64,
    /// Updates that moved the entity to a different partition.
    pub update_moves: u64,
    /// Partitions created because `r_best < 0` (or the catalog was empty).
    pub partitions_created: u64,
    /// Partitions dropped because they became empty.
    pub partitions_dropped: u64,
    /// Splits performed.
    pub splits: u64,
    /// Entities physically moved by splits.
    pub split_moves: u64,
    /// Ratings computed across all catalog scans.
    pub ratings_computed: u64,
    /// Split re-inserts that exceeded the target's capacity because neither
    /// seed partition could take the entity (only possible under
    /// `Capacity::MaxSize` with skewed entity sizes).
    pub forced_overflows: u64,
    /// Partitions folded into a peer by a merge pass (extension, see the
    /// `merge` module).
    pub merges: u64,
    /// Entities physically moved by merge passes.
    pub merge_moves: u64,
    /// Partitions re-split by the background reorganizer (extension; the
    /// moves themselves count under `split_moves` — a re-split runs the
    /// same machinery as an overflow split).
    pub reorg_resplits: u64,
    /// Entities migrated to a better-rated partition by the background
    /// reorganizer (delete + re-insert through Algorithm 1, the same
    /// semantics as an update-move).
    pub reorg_migrations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_split_flag() {
        assert!(!InsertOutcome::Inserted(SegmentId(0)).is_split());
        assert!(!InsertOutcome::NewPartition(SegmentId(0)).is_split());
        assert!(InsertOutcome::Split {
            from: SegmentId(0),
            into: (SegmentId(1), SegmentId(2))
        }
        .is_split());
    }
}
