//! The unpartitioned universal table (the paper's baseline).

use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, StorageError, UniversalTable};
use cinderella_core::CoreError;

use crate::accounting::SegmentAccounting;
use crate::traits::Partitioner;

/// Everything in one segment. Queries can never prune, so every query scans
/// the whole table — exactly the behaviour the paper measures as "universal
/// table" in Figs. 5–6 and "Standard TPC-H" in Table I.
pub struct Unpartitioned {
    acc: Option<SegmentAccounting>,
}

impl Unpartitioned {
    /// Creates the baseline (the segment is allocated on first insert).
    pub fn new() -> Self {
        Self { acc: None }
    }
}

impl Default for Unpartitioned {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for Unpartitioned {
    fn name(&self) -> &'static str {
        "unpartitioned"
    }

    fn insert(&mut self, table: &mut UniversalTable, entity: Entity) -> Result<(), CoreError> {
        let acc = match &mut self.acc {
            Some(acc) => acc,
            None => {
                let seg = table.create_segment();
                self.acc.insert(SegmentAccounting::new(seg))
            }
        };
        table.insert(acc.segment, &entity)?;
        acc.add(&entity);
        Ok(())
    }

    fn delete(&mut self, table: &mut UniversalTable, id: EntityId) -> Result<Entity, CoreError> {
        let acc = self.acc.as_mut().ok_or(StorageError::NoSuchEntity(id))?;
        let e = table.delete(id)?;
        acc.remove(&e);
        Ok(e)
    }

    fn pruning_view(&self) -> Vec<(SegmentId, Synopsis, u64)> {
        self.acc
            .iter()
            .map(|a| (a.segment, a.synopsis.clone(), a.size))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::Value;

    #[test]
    fn single_segment_holds_everything() {
        let mut t = UniversalTable::new(64);
        let mut p = Unpartitioned::new();
        for i in 0..10u64 {
            let a = t.catalog_mut().intern(if i % 2 == 0 { "a" } else { "b" });
            let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
            p.insert(&mut t, e).unwrap();
        }
        assert_eq!(p.partition_count(), 1);
        assert_eq!(t.segment_count(), 1);
        let view = p.pruning_view();
        assert_eq!(view[0].2, 10);
        assert_eq!(view[0].1.cardinality(), 2);
        p.delete(&mut t, EntityId(0)).unwrap();
        assert_eq!(p.pruning_view()[0].2, 9);
    }

    #[test]
    fn delete_before_insert_errors() {
        let mut t = UniversalTable::new(64);
        let mut p = Unpartitioned::new();
        assert!(p.delete(&mut t, EntityId(1)).is_err());
    }
}
