//! Range (arrival-order) partitioning.

use std::collections::HashMap;

use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, StorageError, UniversalTable};
use cinderella_core::CoreError;

use crate::accounting::SegmentAccounting;
use crate::traits::Partitioner;

/// Partitions filled in arrival order: the current partition takes entities
/// until it holds `B`, then a new one opens. This is what range
/// partitioning on an auto-increment key (or a load timestamp) degenerates
/// to — the partitioning advisors of §VI produce it for universal tables
/// lacking a better range key. It preserves temporal locality only;
/// structural locality arises only if arrival order happens to correlate
/// with entity shape.
pub struct RangePartitioner {
    capacity: u64,
    accs: Vec<SegmentAccounting>,
    /// Where each entity went (deletes must find the right accounting).
    homes: HashMap<EntityId, usize>,
}

impl RangePartitioner {
    /// Creates a range partitioner with `capacity` entities per partition.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { capacity, accs: Vec::new(), homes: HashMap::new() }
    }
}

impl Partitioner for RangePartitioner {
    fn name(&self) -> &'static str {
        "range"
    }

    fn insert(&mut self, table: &mut UniversalTable, entity: Entity) -> Result<(), CoreError> {
        let need_new = self
            .accs
            .last()
            .is_none_or(|acc| acc.entities >= self.capacity);
        if need_new {
            let seg = table.create_segment();
            self.accs.push(SegmentAccounting::new(seg));
        }
        let idx = self.accs.len() - 1;
        let acc = &mut self.accs[idx];
        table.insert(acc.segment, &entity)?;
        acc.add(&entity);
        self.homes.insert(entity.id(), idx);
        Ok(())
    }

    fn delete(&mut self, table: &mut UniversalTable, id: EntityId) -> Result<Entity, CoreError> {
        let idx = *self.homes.get(&id).ok_or(StorageError::NoSuchEntity(id))?;
        let e = table.delete(id)?;
        self.accs[idx].remove(&e);
        self.homes.remove(&id);
        Ok(e)
    }

    fn pruning_view(&self) -> Vec<(SegmentId, Synopsis, u64)> {
        self.accs
            .iter()
            .map(|a| (a.segment, a.synopsis.clone(), a.size))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::Value;

    #[test]
    fn fills_partitions_in_order() {
        let mut t = UniversalTable::new(64);
        let mut p = RangePartitioner::new(10);
        let a = t.catalog_mut().intern("a");
        for i in 0..25u64 {
            let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
            p.insert(&mut t, e).unwrap();
        }
        assert_eq!(p.partition_count(), 3);
        let sizes: Vec<u64> = p.pruning_view().iter().map(|(_, _, s)| *s).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn delete_updates_the_right_partition() {
        let mut t = UniversalTable::new(64);
        let mut p = RangePartitioner::new(2);
        let a = t.catalog_mut().intern("a");
        for i in 0..4u64 {
            let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
            p.insert(&mut t, e).unwrap();
        }
        p.delete(&mut t, EntityId(0)).unwrap();
        let sizes: Vec<u64> = p.pruning_view().iter().map(|(_, _, s)| *s).collect();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn structural_locality_only_by_accident() {
        // Interleaved shapes: every partition mixes both.
        let mut t = UniversalTable::new(64);
        let mut p = RangePartitioner::new(4);
        let a = t.catalog_mut().intern("a");
        let b = t.catalog_mut().intern("b");
        for i in 0..16u64 {
            let attr = if i % 2 == 0 { a } else { b };
            let e = Entity::new(EntityId(i), [(attr, Value::Int(1))]).unwrap();
            p.insert(&mut t, e).unwrap();
        }
        for (_, syn, _) in p.pruning_view() {
            assert_eq!(syn.cardinality(), 2);
        }
    }
}
