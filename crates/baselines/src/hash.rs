//! Hash partitioning by entity id.


use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, StorageError, UniversalTable};
use cinderella_core::CoreError;

use crate::accounting::SegmentAccounting;
use crate::traits::Partitioner;

/// `k` fixed partitions addressed by a multiplicative hash of the entity
/// id — the scheme web-scale stores use for load balancing (§VI). It
/// spreads load perfectly and attribute locality not at all: every
/// partition's synopsis converges to the full attribute set, so pruning
/// never fires. The experiments use it as the "partitioning without
/// structure awareness" strawman.
pub struct HashPartitioner {
    k: usize,
    accs: Vec<Option<SegmentAccounting>>,
}

impl HashPartitioner {
    /// Creates a hash partitioner with `k` partitions.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one partition");
        Self { k, accs: (0..k).map(|_| None).collect() }
    }

    fn bucket(&self, id: EntityId) -> usize {
        // Fibonacci hashing: spreads sequential ids uniformly.
        (id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.k
    }
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn insert(&mut self, table: &mut UniversalTable, entity: Entity) -> Result<(), CoreError> {
        let b = self.bucket(entity.id());
        let acc = match &mut self.accs[b] {
            Some(acc) => acc,
            None => {
                let seg = table.create_segment();
                self.accs[b].insert(SegmentAccounting::new(seg))
            }
        };
        table.insert(acc.segment, &entity)?;
        acc.add(&entity);
        Ok(())
    }

    fn delete(&mut self, table: &mut UniversalTable, id: EntityId) -> Result<Entity, CoreError> {
        let b = self.bucket(id);
        let acc = self.accs[b].as_mut().ok_or(StorageError::NoSuchEntity(id))?;
        let e = table.delete(id)?;
        acc.remove(&e);
        Ok(e)
    }

    fn pruning_view(&self) -> Vec<(SegmentId, Synopsis, u64)> {
        self.accs
            .iter()
            .flatten()
            .map(|a| (a.segment, a.synopsis.clone(), a.size))
            .collect()
    }
}

/// A map from segment id to the entities stored there (testing helper).
#[cfg(test)]
pub(crate) fn occupancy(
    table: &UniversalTable,
) -> std::collections::HashMap<SegmentId, usize> {
    let mut m = std::collections::HashMap::new();
    for seg in table.segment_ids() {
        m.insert(seg, table.segment(seg).unwrap().record_count());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::Value;

    #[test]
    fn spreads_entities_across_k_partitions() {
        let mut t = UniversalTable::new(64);
        let mut p = HashPartitioner::new(4);
        for i in 0..400u64 {
            let a = t.catalog_mut().intern("a");
            let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
            p.insert(&mut t, e).unwrap();
        }
        assert_eq!(p.partition_count(), 4);
        let occ = occupancy(&t);
        assert_eq!(occ.values().sum::<usize>(), 400);
        for (&seg, &n) in &occ {
            assert!((50..=150).contains(&n), "{seg} holds {n}, poor spread");
        }
    }

    #[test]
    fn no_attribute_locality() {
        // Two shapes; every partition ends up with both.
        let mut t = UniversalTable::new(64);
        let mut p = HashPartitioner::new(2);
        let a = t.catalog_mut().intern("a");
        let b = t.catalog_mut().intern("b");
        for i in 0..100u64 {
            let attr = if i % 2 == 0 { a } else { b };
            let e = Entity::new(EntityId(i), [(attr, Value::Int(1))]).unwrap();
            p.insert(&mut t, e).unwrap();
        }
        for (_, syn, _) in p.pruning_view() {
            assert_eq!(syn.cardinality(), 2, "hash mixes shapes everywhere");
        }
    }

    #[test]
    fn delete_roundtrip() {
        let mut t = UniversalTable::new(64);
        let mut p = HashPartitioner::new(3);
        let a = t.catalog_mut().intern("a");
        let e = Entity::new(EntityId(7), [(a, Value::Int(1))]).unwrap();
        p.insert(&mut t, e.clone()).unwrap();
        assert_eq!(p.delete(&mut t, EntityId(7)).unwrap(), e);
        assert!(p.delete(&mut t, EntityId(7)).is_err());
    }
}
