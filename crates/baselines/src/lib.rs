//! Baseline partitioners Cinderella is compared against.
//!
//! The paper's evaluation compares against the unpartitioned universal
//! table (Figs. 5–6, Table I). Related work (§VI) points at the two
//! partitioning schemes mainstream systems actually use — hash and
//! range/arrival partitioning — and at offline attribute-clustering
//! ("hidden schema" inference). This crate implements all four behind one
//! [`Partitioner`] trait, which Cinderella also implements, so experiments
//! and the ablation benches can swap policies freely:
//!
//! * [`Unpartitioned`] — one segment holding everything; queries always
//!   scan it all (the paper's universal-table baseline).
//! * [`HashPartitioner`] — `k` fixed partitions by entity-id hash (the
//!   web-scale load-balancing choice; destroys attribute locality).
//! * [`RangePartitioner`] — partitions filled in arrival order up to `B`
//!   entities (range-by-insertion-time; keeps temporal, not structural,
//!   locality).
//! * [`OfflineClustering`] — a batch leader-clustering of attribute sets by
//!   Jaccard similarity, in the spirit of the hidden-schema work the paper
//!   cites: a strong *offline* comparator that sees all data up front.
//! * [`VerticalPartitioning`] — the related work's actual layout (Chu et
//!   al., SIGMOD'07): *vertical* column groups by attribute co-occurrence.
//!   Structurally different (entities are decomposed, not placed), so it
//!   has its own loader and query-cost measurement rather than the shared
//!   trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod hash;
mod offline;
mod range;
mod traits;
mod unpartitioned;
mod vertical;

pub use accounting::SegmentAccounting;
pub use hash::HashPartitioner;
pub use offline::{OfflineClustering, OfflineConfig};
pub use range::RangePartitioner;
pub use traits::Partitioner;
pub use unpartitioned::Unpartitioned;
pub use vertical::{ColumnGroup, VerticalConfig, VerticalPartitioning};
