//! The common partitioner interface.

use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, UniversalTable};
use cinderella_core::{Cinderella, CoreError};

/// A horizontal partitioning policy over a [`UniversalTable`].
///
/// The interface is the least common denominator the experiments need:
/// online insert/delete plus the pruning view (partition synopses and
/// sizes) the query planner and the efficiency metric consume.
pub trait Partitioner {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Inserts one entity, placing it per this policy.
    fn insert(&mut self, table: &mut UniversalTable, entity: Entity) -> Result<(), CoreError>;

    /// Deletes one entity.
    fn delete(&mut self, table: &mut UniversalTable, id: EntityId) -> Result<Entity, CoreError>;

    /// `(segment, attribute synopsis, SIZE(p) in cells)` per partition —
    /// what the planner prunes against and Definition 1 sums over.
    fn pruning_view(&self) -> Vec<(SegmentId, Synopsis, u64)>;

    /// Number of partitions.
    fn partition_count(&self) -> usize {
        self.pruning_view().len()
    }

    /// Deep structural self-check against the stored table, one diagnostic
    /// per violated invariant. The stateless baselines have nothing to
    /// cross-check and report clean by default; Cinderella routes this to
    /// its full catalog/arena/index validator so policy-generic tests can
    /// assert structural health without downcasting.
    fn validate_structure(&self, _table: &UniversalTable) -> Vec<String> {
        Vec::new()
    }

    /// Bulk-loads a batch by repeated insert (policies with batch knowledge
    /// override this).
    fn load(
        &mut self,
        table: &mut UniversalTable,
        entities: Vec<Entity>,
    ) -> Result<(), CoreError> {
        for e in entities {
            self.insert(table, e)?;
        }
        Ok(())
    }
}

impl Partitioner for Cinderella {
    fn name(&self) -> &'static str {
        "cinderella"
    }

    fn insert(&mut self, table: &mut UniversalTable, entity: Entity) -> Result<(), CoreError> {
        Cinderella::insert(self, table, entity).map(|_| ())
    }

    fn delete(&mut self, table: &mut UniversalTable, id: EntityId) -> Result<Entity, CoreError> {
        Cinderella::delete(self, table, id)
    }

    fn pruning_view(&self) -> Vec<(SegmentId, Synopsis, u64)> {
        self.catalog()
            .pruning_view()
            .map(|(seg, syn, size)| (seg, syn.clone(), size))
            .collect()
    }

    fn partition_count(&self) -> usize {
        self.catalog().len()
    }

    fn validate_structure(&self, table: &UniversalTable) -> Vec<String> {
        match Cinderella::validate(self, table) {
            Ok(violations) => violations.iter().map(ToString::to_string).collect(),
            Err(e) => vec![format!("validation scan failed: {e}")],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::Value;
    use cinderella_core::Config;

    #[test]
    fn cinderella_implements_the_trait() {
        let mut table = UniversalTable::new(64);
        let mut p: Box<dyn Partitioner> = Box::new(Cinderella::new(Config::default()));
        let a = table.catalog_mut().intern("a");
        let e = Entity::new(EntityId(1), [(a, Value::Int(1))]).unwrap();
        p.insert(&mut table, e).unwrap();
        assert_eq!(p.name(), "cinderella");
        assert_eq!(p.partition_count(), 1);
        let view = p.pruning_view();
        assert_eq!(view.len(), 1);
        assert!(view[0].1.contains(a));
        assert_eq!(view[0].2, 1);
        assert!(p.validate_structure(&table).is_empty());
        let removed = p.delete(&mut table, EntityId(1)).unwrap();
        assert_eq!(removed.id(), EntityId(1));
        assert_eq!(p.partition_count(), 0);
    }
}
