//! Vertical partitioning by attribute co-occurrence (the "hidden schema"
//! related work, §VI).
//!
//! Chu, Beckmann, Naughton (SIGMOD'07) partition a wide sparse table
//! *vertically* and offline: attributes that co-occur are clustered into
//! column groups, and each entity is stored as one sub-record per group it
//! instantiates. A query then reads only the groups that contain requested
//! attributes. This module implements that comparator faithfully enough to
//! measure it against Cinderella's horizontal scheme:
//!
//! * Attribute similarity = Jaccard coefficient of the attribute's entity
//!   sets (as in the paper they cite).
//! * Clustering = greedy agglomeration: repeatedly merge the pair of
//!   groups with the highest average linkage above a threshold — the
//!   paper's k-NN clustering without requiring a k.
//! * Storage = one segment per attribute group; each entity contributes a
//!   sub-record to every group it has attributes in.
//!
//! The trade against horizontal partitioning is structural: vertical
//! grouping never prunes *entities* (a selective query over a common
//! attribute group still reads every entity's sub-record in that group),
//! but touches only the requested columns; horizontal partitioning prunes
//! entities but reads whole rows. The shoot-out quantifies this on the
//! paper's workload.

use std::collections::HashMap;

use cind_model::{AttrId, Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, StorageError, UniversalTable};
use cinderella_core::CoreError;

/// Configuration of the vertical clusterer.
#[derive(Clone, Copy, Debug)]
pub struct VerticalConfig {
    /// Minimum average Jaccard linkage for two groups to merge.
    pub linkage_threshold: f64,
}

impl Default for VerticalConfig {
    fn default() -> Self {
        Self { linkage_threshold: 0.4 }
    }
}

/// One column group and its storage segment.
#[derive(Clone, Debug)]
pub struct ColumnGroup {
    /// The attributes of this group.
    pub attrs: Vec<AttrId>,
    /// The segment holding the group's sub-records.
    pub segment: SegmentId,
    /// Cells stored in this group (Definition 1 `SIZE`).
    pub size: u64,
}

/// An offline vertical partitioner.
///
/// Unlike the horizontal policies this does not implement `Partitioner`:
/// entities are *decomposed* across segments, so insert/delete and the
/// pruning view have different shapes. [`VerticalPartitioning::load`]
/// builds everything; [`VerticalPartitioning::query_cost`] measures a
/// query the way the horizontal executor does (pages + cells read).
pub struct VerticalPartitioning {
    config: VerticalConfig,
    groups: Vec<ColumnGroup>,
    /// attr → group index.
    group_of: HashMap<AttrId, usize>,
}

impl VerticalPartitioning {
    /// Creates an empty vertical partitioner.
    pub fn new(config: VerticalConfig) -> Self {
        Self { config, groups: Vec::new(), group_of: HashMap::new() }
    }

    /// The column groups.
    pub fn groups(&self) -> &[ColumnGroup] {
        &self.groups
    }

    /// Clusters the attributes of `entities` and loads their sub-records
    /// into `table` (one segment per group).
    ///
    /// # Errors
    /// Storage errors from the load.
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn load(
        &mut self,
        table: &mut UniversalTable,
        entities: &[Entity],
    ) -> Result<(), CoreError> {
        assert!(self.groups.is_empty(), "load is one-shot");
        let universe = table.universe();
        let clusters = cluster_attributes(entities, universe, self.config.linkage_threshold);

        // Create one segment per group.
        for attrs in clusters {
            let segment = table.create_segment();
            let idx = self.groups.len();
            for a in &attrs {
                self.group_of.insert(*a, idx);
            }
            self.groups.push(ColumnGroup { attrs, segment, size: 0 });
        }

        // Decompose each entity into per-group sub-records. Sub-records
        // reuse the entity id; the storage locator is per-table, so each
        // group's sub-record gets a distinct synthetic id derived from
        // (group, entity) — the locator is not used for vertical queries.
        for e in entities {
            let mut per_group: HashMap<usize, Vec<(AttrId, cind_model::Value)>> =
                HashMap::new();
            for (a, v) in e.attrs() {
                let g = *self.group_of.get(a).expect("attribute clustered");
                per_group.entry(g).or_default().push((*a, v.clone()));
            }
            for (g, attrs) in per_group {
                let cells = attrs.len() as u64;
                let sub_id = EntityId(
                    (g as u64) << 48 | (e.id().0 & 0xFFFF_FFFF_FFFF),
                );
                let sub = Entity::new(sub_id, attrs).expect("unique attrs");
                table.insert(self.groups[g].segment, &sub)?;
                self.groups[g].size += cells;
            }
        }
        Ok(())
    }

    /// The pruning view in Definition 1 terms: one "partition" per column
    /// group, with the group's attribute synopsis and its stored cells.
    pub fn pruning_view(&self, universe: usize) -> Vec<(SegmentId, Synopsis, u64)> {
        self.groups
            .iter()
            .map(|g| {
                (
                    g.segment,
                    Synopsis::from_attrs(universe, g.attrs.iter().copied()),
                    g.size,
                )
            })
            .collect()
    }

    /// Executes the paper's query form against the vertical layout:
    /// scans every group containing a requested attribute, counts matching
    /// sub-records and projected cells, and returns
    /// `(rows, cells, pages, groups_read)`.
    ///
    /// # Errors
    /// Storage errors from the scans.
    pub fn query_cost(
        &self,
        table: &UniversalTable,
        attrs: &[AttrId],
    ) -> Result<(u64, u64, u64, usize), StorageError> {
        let io_before = table.io_stats();
        let mut matching = std::collections::HashSet::new();
        let mut cells = 0u64;
        let mut groups_read = 0usize;
        for group in &self.groups {
            if !group.attrs.iter().any(|a| attrs.contains(a)) {
                continue;
            }
            groups_read += 1;
            table.scan(group.segment, |sub| {
                let hit: u32 = attrs
                    .iter()
                    .filter(|a| sub.has(**a))
                    .count() as u32;
                if hit > 0 {
                    // Strip the group tag to recover the entity id.
                    matching.insert(sub.id().0 & 0xFFFF_FFFF_FFFF);
                    cells += u64::from(hit);
                }
            })?;
        }
        let pages = table.io_stats().since(&io_before).logical_reads;
        Ok((matching.len() as u64, cells, pages, groups_read))
    }
}

impl VerticalPartitioning {
    /// Full-row retrieval cost: after identifying the matching entities
    /// (as in [`VerticalPartitioning::query_cost`]), reconstruct their
    /// complete rows. Without a per-entity index the reconstruction scans
    /// every remaining group — the classic column-store reassembly
    /// penalty that projection-only workloads never pay.
    ///
    /// Returns `(rows, total_cells, total_pages)`.
    ///
    /// # Errors
    /// Storage errors from the scans.
    pub fn query_cost_full_rows(
        &self,
        table: &UniversalTable,
        attrs: &[AttrId],
    ) -> Result<(u64, u64, u64), StorageError> {
        let io_before = table.io_stats();
        let mut matching = std::collections::HashSet::new();
        let mut queried = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            if !group.attrs.iter().any(|a| attrs.contains(a)) {
                continue;
            }
            queried.push(g);
            table.scan(group.segment, |sub| {
                if attrs.iter().any(|a| sub.has(*a)) {
                    matching.insert(sub.id().0 & 0xFFFF_FFFF_FFFF);
                }
            })?;
        }
        // Reconstruction: collect every cell of every matched entity from
        // all groups (including re-reading the queried ones for their
        // non-predicate columns).
        let mut cells = 0u64;
        for group in &self.groups {
            table.scan(group.segment, |sub| {
                if matching.contains(&(sub.id().0 & 0xFFFF_FFFF_FFFF)) {
                    cells += sub.arity() as u64;
                }
            })?;
        }
        let pages = table.io_stats().since(&io_before).logical_reads;
        Ok((matching.len() as u64, cells, pages))
    }
}

/// Greedy average-linkage agglomeration of attributes by Jaccard
/// co-occurrence. Returns the attribute groups (every attribute of the
/// universe appears in exactly one group; attributes never seen form
/// singleton groups).
fn cluster_attributes(
    entities: &[Entity],
    universe: usize,
    threshold: f64,
) -> Vec<Vec<AttrId>> {
    // Pairwise Jaccard from one co-occurrence pass.
    let mut freq = vec![0u32; universe];
    let mut pair = vec![0u32; universe * universe];
    for e in entities {
        let attrs: Vec<u32> = e.attrs().iter().map(|(a, _)| a.index()).collect();
        for (i, &a) in attrs.iter().enumerate() {
            freq[a as usize] += 1;
            for &b in &attrs[i + 1..] {
                let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
                pair[lo * universe + hi] += 1;
            }
        }
    }
    let jaccard = |a: usize, b: usize| {
        let (lo, hi) = (a.min(b), a.max(b));
        let both = f64::from(pair[lo * universe + hi]);
        let either = f64::from(freq[a]) + f64::from(freq[b]) - both;
        if either == 0.0 {
            0.0
        } else {
            both / either
        }
    };

    // Agglomerate: each attribute starts alone; merge the best pair of
    // groups while its average linkage clears the threshold.
    let mut groups: Vec<Vec<usize>> = (0..universe).map(|a| vec![a]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let mut sum = 0.0;
                for &a in &groups[i] {
                    for &b in &groups[j] {
                        sum += jaccard(a, b);
                    }
                }
                let linkage = sum / (groups[i].len() * groups[j].len()) as f64;
                if linkage >= threshold
                    && best.is_none_or(|(_, _, bl)| bl < linkage)
                {
                    best = Some((i, j, linkage));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let merged = groups.swap_remove(j);
        groups[i].extend(merged);
    }
    groups
        .into_iter()
        .map(|g| g.into_iter().map(|a| AttrId(a as u32)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::Value;

    fn entity(id: u64, attrs: &[u32]) -> Entity {
        Entity::new(
            EntityId(id),
            attrs.iter().map(|&a| (AttrId(a), Value::Int(i64::from(a)))),
        )
        .unwrap()
    }

    /// Attributes 0,1 always co-occur; 2,3 always co-occur; no overlap.
    fn two_shape_entities(n: u64) -> Vec<Entity> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    entity(i, &[0, 1])
                } else {
                    entity(i, &[2, 3])
                }
            })
            .collect()
    }

    #[test]
    fn clustering_finds_cooccurring_groups() {
        let entities = two_shape_entities(40);
        let groups = cluster_attributes(&entities, 4, 0.4);
        let mut sets: Vec<Vec<u32>> = groups
            .iter()
            .map(|g| {
                let mut v: Vec<u32> = g.iter().map(|a| a.0).collect();
                v.sort_unstable();
                v
            })
            .collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn unseen_attributes_form_singletons() {
        let entities = vec![entity(0, &[0])];
        let groups = cluster_attributes(&entities, 3, 0.4);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn load_decomposes_entities_per_group() {
        let mut table = UniversalTable::new(64);
        for i in 0..4 {
            table.catalog_mut().intern(&format!("a{i}"));
        }
        let entities = two_shape_entities(20);
        let mut v = VerticalPartitioning::new(VerticalConfig::default());
        v.load(&mut table, &entities).unwrap();
        assert_eq!(v.groups().len(), 2);
        let total: u64 = v.groups().iter().map(|g| g.size).sum();
        assert_eq!(total, 40, "every cell stored exactly once");
        // Each group's segment holds only sub-records of its own shape.
        for g in v.groups() {
            assert_eq!(table.segment(g.segment).unwrap().record_count(), 10);
        }
    }

    #[test]
    fn query_reads_only_relevant_groups() {
        let mut table = UniversalTable::new(64);
        for i in 0..4 {
            table.catalog_mut().intern(&format!("a{i}"));
        }
        let entities = two_shape_entities(20);
        let mut v = VerticalPartitioning::new(VerticalConfig::default());
        v.load(&mut table, &entities).unwrap();
        let (rows, cells, pages, groups_read) =
            v.query_cost(&table, &[AttrId(0)]).unwrap();
        assert_eq!(rows, 10);
        assert_eq!(cells, 10);
        assert_eq!(groups_read, 1);
        assert!(pages >= 1);
    }

    #[test]
    fn full_row_retrieval_pays_reconstruction() {
        let mut table = UniversalTable::new(64);
        for i in 0..4 {
            table.catalog_mut().intern(&format!("a{i}"));
        }
        let mut entities = two_shape_entities(20);
        entities.push(entity(100, &[0, 1, 2, 3])); // spans both groups
        let mut v = VerticalPartitioning::new(VerticalConfig::default());
        v.load(&mut table, &entities).unwrap();
        let (rows, proj_cells, proj_pages, _) =
            v.query_cost(&table, &[AttrId(0)]).unwrap();
        let (rows_full, full_cells, full_pages) =
            v.query_cost_full_rows(&table, &[AttrId(0)]).unwrap();
        assert_eq!(rows, rows_full);
        assert_eq!(rows, 11);
        // Projection returns only attr 0's cells; full rows return every
        // cell of the matched entities (11 × 2 + 2 extra for the spanner).
        assert_eq!(proj_cells, 11);
        assert_eq!(full_cells, 11 * 2 + 2);
        assert!(full_pages > proj_pages, "reconstruction reads more pages");
    }

    #[test]
    fn entities_spanning_groups_are_counted_once() {
        let mut table = UniversalTable::new(64);
        for i in 0..4 {
            table.catalog_mut().intern(&format!("a{i}"));
        }
        // Entity 0 has attributes in both groups.
        let mut entities = two_shape_entities(10);
        entities.push(entity(100, &[0, 1, 2, 3]));
        let mut v = VerticalPartitioning::new(VerticalConfig::default());
        v.load(&mut table, &entities).unwrap();
        let (rows, _, _, groups_read) =
            v.query_cost(&table, &[AttrId(1), AttrId(2)]).unwrap();
        // 5 entities with {0,1}, 5 with {2,3}, plus the spanning one — it
        // must be deduplicated across groups.
        assert_eq!(rows, 11);
        assert_eq!(groups_read, 2);
    }
}
