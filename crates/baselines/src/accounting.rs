//! Per-segment synopsis and size accounting shared by the baselines.

use cind_bitset::BitSetOps;
use cind_model::{Entity, Synopsis};
use cind_storage::SegmentId;

/// Exact synopsis/size bookkeeping for one segment, maintained by attribute
/// reference counts (same invariant as Cinderella's catalog: the synopsis is
/// always the OR of the member synopses).
#[derive(Clone, Debug)]
pub struct SegmentAccounting {
    /// The segment.
    pub segment: SegmentId,
    /// Attribute synopsis.
    pub synopsis: Synopsis,
    /// `SIZE(p)` in cells.
    pub size: u64,
    /// Member count.
    pub entities: u64,
    counts: Vec<u32>,
}

impl SegmentAccounting {
    /// Empty accounting for `segment`.
    pub fn new(segment: SegmentId) -> Self {
        Self {
            segment,
            synopsis: Synopsis::default(),
            size: 0,
            entities: 0,
            counts: Vec::new(),
        }
    }

    /// Accounts an inserted entity.
    pub fn add(&mut self, e: &Entity) {
        for (a, _) in e.attrs() {
            let idx = a.index() as usize;
            if self.counts.len() <= idx {
                self.counts.resize(idx + 1, 0);
            }
            self.counts[idx] += 1;
            if self.counts[idx] == 1 {
                self.synopsis.bits_mut().grow(idx + 1);
                self.synopsis.bits_mut().insert(a.index());
            }
        }
        self.size += e.arity() as u64;
        self.entities += 1;
    }

    /// Accounts a removed entity. Returns the remaining member count.
    pub fn remove(&mut self, e: &Entity) -> u64 {
        for (a, _) in e.attrs() {
            let idx = a.index() as usize;
            assert!(self.counts[idx] > 0, "count underflow");
            self.counts[idx] -= 1;
            if self.counts[idx] == 0 {
                self.synopsis.bits_mut().remove(a.index());
            }
        }
        self.size -= e.arity() as u64;
        self.entities -= 1;
        self.entities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, EntityId, Value};

    fn entity(id: u64, attrs: &[u32]) -> Entity {
        Entity::new(
            EntityId(id),
            attrs.iter().map(|&a| (AttrId(a), Value::Int(1))),
        )
        .unwrap()
    }

    #[test]
    fn add_remove_keeps_or_invariant() {
        let mut acc = SegmentAccounting::new(SegmentId(0));
        let e1 = entity(1, &[0, 1]);
        let e2 = entity(2, &[1, 2]);
        acc.add(&e1);
        acc.add(&e2);
        assert_eq!(acc.entities, 2);
        assert_eq!(acc.size, 4);
        assert_eq!(acc.synopsis, Synopsis::from_bits(3, [0, 1, 2]));
        assert_eq!(acc.remove(&e1), 1);
        assert_eq!(acc.synopsis, Synopsis::from_bits(3, [1, 2]));
        assert_eq!(acc.remove(&e2), 0);
        assert!(acc.synopsis.is_empty());
        assert_eq!(acc.size, 0);
    }
}
