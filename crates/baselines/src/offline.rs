//! Offline attribute-set clustering (the "hidden schema" comparator).

use std::collections::HashMap;

use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::{SegmentId, StorageError, UniversalTable};
use cinderella_core::CoreError;

use crate::accounting::SegmentAccounting;
use crate::traits::Partitioner;

/// Configuration of the offline clusterer.
#[derive(Clone, Copy, Debug)]
pub struct OfflineConfig {
    /// Minimum Jaccard similarity between an entity's attribute set and a
    /// cluster leader's for the entity to join the cluster.
    pub jaccard_threshold: f64,
    /// Maximum entities per cluster (capped like Cinderella's `B` for a
    /// fair comparison).
    pub capacity: u64,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self { jaccard_threshold: 0.4, capacity: 5000 }
    }
}

/// Batch leader clustering of entities by attribute-set Jaccard similarity,
/// in the spirit of the hidden-schema inference the paper cites (Chu et
/// al., SIGMOD'07, adapted from vertical to horizontal partitioning): it
/// sees the *whole* dataset before deciding, so it serves as the offline
/// upper bound Cinderella's online behaviour is compared to.
///
/// [`Partitioner::load`] performs the clustering; the online
/// [`Partitioner::insert`] path falls back to nearest-leader assignment
/// (the natural way to keep an offline partitioning alive between
/// re-clusterings).
pub struct OfflineClustering {
    config: OfflineConfig,
    clusters: Vec<Cluster>,
    homes: HashMap<EntityId, usize>,
}

struct Cluster {
    leader: Synopsis,
    acc: SegmentAccounting,
}

impl OfflineClustering {
    /// Creates the clusterer.
    ///
    /// # Panics
    /// Panics on a zero capacity or a threshold outside `[0, 1]`.
    pub fn new(config: OfflineConfig) -> Self {
        assert!(config.capacity > 0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&config.jaccard_threshold),
            "threshold in [0, 1]"
        );
        Self { config, clusters: Vec::new(), homes: HashMap::new() }
    }

    fn jaccard(a: &Synopsis, b: &Synopsis) -> f64 {
        let union = a.union_count(b);
        if union == 0 {
            // Two empty attribute sets are identical.
            return 1.0;
        }
        f64::from(a.overlap(b)) / f64::from(union)
    }

    /// Index of the best open cluster for `syn`, if any passes the
    /// threshold.
    fn best_cluster(&self, syn: &Synopsis) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            if c.acc.entities >= self.config.capacity {
                continue;
            }
            let j = Self::jaccard(syn, &c.leader);
            if j >= self.config.jaccard_threshold
                && best.is_none_or(|(_, bj)| bj < j)
            {
                best = Some((i, j));
            }
        }
        best.map(|(i, _)| i)
    }

    fn place(
        &mut self,
        table: &mut UniversalTable,
        entity: Entity,
    ) -> Result<(), CoreError> {
        let syn = entity.synopsis(table.universe());
        let idx = match self.best_cluster(&syn) {
            Some(i) => i,
            None => {
                let seg = table.create_segment();
                self.clusters.push(Cluster {
                    leader: syn.clone(),
                    acc: SegmentAccounting::new(seg),
                });
                self.clusters.len() - 1
            }
        };
        let cluster = &mut self.clusters[idx];
        table.insert(cluster.acc.segment, &entity)?;
        cluster.acc.add(&entity);
        self.homes.insert(entity.id(), idx);
        Ok(())
    }
}

impl Partitioner for OfflineClustering {
    fn name(&self) -> &'static str {
        "offline-clustering"
    }

    fn insert(&mut self, table: &mut UniversalTable, entity: Entity) -> Result<(), CoreError> {
        self.place(table, entity)
    }

    fn delete(&mut self, table: &mut UniversalTable, id: EntityId) -> Result<Entity, CoreError> {
        let idx = *self.homes.get(&id).ok_or(StorageError::NoSuchEntity(id))?;
        let e = table.delete(id)?;
        self.clusters[idx].acc.remove(&e);
        self.homes.remove(&id);
        Ok(e)
    }

    /// Offline clustering proper: sorts the batch by descending arity (rich
    /// entities make informative leaders) before leader assignment. This is
    /// the batch advantage the online algorithm does not have.
    fn load(
        &mut self,
        table: &mut UniversalTable,
        mut entities: Vec<Entity>,
    ) -> Result<(), CoreError> {
        entities.sort_by_key(|e| std::cmp::Reverse(e.arity()));
        for e in entities {
            self.place(table, e)?;
        }
        Ok(())
    }

    fn pruning_view(&self) -> Vec<(SegmentId, Synopsis, u64)> {
        self.clusters
            .iter()
            .map(|c| (c.acc.segment, c.acc.synopsis.clone(), c.acc.size))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, Value};

    fn entity(table: &mut UniversalTable, id: u64, names: &[&str]) -> Entity {
        let attrs: Vec<(AttrId, Value)> = names
            .iter()
            .map(|n| (table.catalog_mut().intern(n), Value::Int(1)))
            .collect();
        Entity::new(EntityId(id), attrs).unwrap()
    }

    #[test]
    fn batch_load_separates_shapes() {
        let mut t = UniversalTable::new(64);
        let mut p = OfflineClustering::new(OfflineConfig::default());
        let mut batch = Vec::new();
        for i in 0..20u64 {
            let shape: &[&str] = if i % 2 == 0 {
                &["res", "zoom", "screen"]
            } else {
                &["rpm", "cache", "formFactor"]
            };
            batch.push(entity(&mut t, i, shape));
        }
        p.load(&mut t, batch).unwrap();
        assert_eq!(p.partition_count(), 2);
        for (_, syn, size) in p.pruning_view() {
            assert_eq!(syn.cardinality(), 3, "shapes must not mix");
            assert_eq!(size, 30);
        }
    }

    #[test]
    fn capacity_caps_cluster_growth() {
        let mut t = UniversalTable::new(64);
        let mut p = OfflineClustering::new(OfflineConfig {
            capacity: 5,
            ..OfflineConfig::default()
        });
        let batch: Vec<Entity> =
            (0..12u64).map(|i| entity(&mut t, i, &["a", "b"])).collect();
        p.load(&mut t, batch).unwrap();
        assert_eq!(p.partition_count(), 3);
        for (_, _, size) in p.pruning_view() {
            assert!(size <= 10);
        }
    }

    #[test]
    fn online_insert_and_delete_work() {
        let mut t = UniversalTable::new(64);
        let mut p = OfflineClustering::new(OfflineConfig::default());
        let e1 = entity(&mut t, 1, &["a", "b"]);
        let e2 = entity(&mut t, 2, &["a", "b"]);
        let e3 = entity(&mut t, 3, &["x", "y"]);
        p.insert(&mut t, e1).unwrap();
        p.insert(&mut t, e2).unwrap();
        p.insert(&mut t, e3).unwrap();
        assert_eq!(p.partition_count(), 2);
        p.delete(&mut t, EntityId(1)).unwrap();
        let total: u64 = p.pruning_view().iter().map(|(_, _, s)| s).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn jaccard_corner_cases() {
        let a = Synopsis::from_bits(8, [0, 1]);
        let b = Synopsis::from_bits(8, [1, 2]);
        let e = Synopsis::empty(8);
        assert!((OfflineClustering::jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(OfflineClustering::jaccard(&a, &a), 1.0);
        assert_eq!(OfflineClustering::jaccard(&e, &e), 1.0);
        assert_eq!(OfflineClustering::jaccard(&a, &e), 0.0);
    }
}
