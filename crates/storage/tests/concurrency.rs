//! Concurrency stress tests for the sharded buffer pool and the
//! `ReadView` scan path: many threads hammer overlapping segments while
//! the test checks that the lock-free counters balance exactly and the
//! pool's resident set never exceeds capacity.

use std::sync::atomic::{AtomicU64, Ordering};

use cind_model::{AttrId, Entity, EntityId, Value};
use cind_storage::buffer::PageKey;
use cind_storage::{BufferPool, SegmentId, UniversalTable};

/// Drives `threads` workers over `keys_per_thread` accesses each, with all
/// workers sharing the same small set of segments (maximum shard overlap),
/// then checks the global counter identities.
fn hammer_pool(pool: &BufferPool, threads: u32, keys_per_thread: u32) {
    let hits = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = &pool;
            let hits = &hits;
            s.spawn(move || {
                let mut local_hits = 0u64;
                for i in 0..keys_per_thread {
                    // Overlapping working sets: every thread touches the
                    // same 4 segments; page ids interleave thread-locally
                    // and globally so both hits and misses occur.
                    let key = PageKey {
                        segment: SegmentId(i % 4),
                        page: (i * 7 + t) % 97,
                    };
                    if pool.access(key) {
                        local_hits += 1;
                    }
                }
                hits.fetch_add(local_hits, Ordering::Relaxed);
            });
        }
    });

    let s = pool.stats();
    let expected_logical = u64::from(threads) * u64::from(keys_per_thread);
    assert_eq!(s.logical_reads, expected_logical, "every access counted once");
    assert_eq!(
        s.physical_reads + hits.load(Ordering::Relaxed),
        s.logical_reads,
        "hit/miss classification balances: every logical read is one or the other"
    );
    assert_eq!(
        s.hits(),
        hits.load(Ordering::Relaxed),
        "pool-side hit count equals the sum of per-thread observations"
    );
}

#[test]
fn sharded_pool_survives_overlapping_writers() {
    let pool = BufferPool::with_shards(64, 8);
    hammer_pool(&pool, 8, 2_000);
    assert!(pool.resident() <= 64, "capacity bound holds under contention");
}

#[test]
fn tiny_pool_thrashes_without_losing_counts() {
    // Capacity far below the working set: almost every access evicts.
    let pool = BufferPool::with_shards(4, 4);
    hammer_pool(&pool, 8, 1_000);
    assert!(pool.resident() <= 4);
    let s = pool.stats();
    assert!(s.evictions > 0, "a thrashing pool must evict");
}

#[test]
fn invalidation_races_with_readers() {
    // Readers hammer two segments while another thread repeatedly
    // invalidates one of them; counters must still balance and the
    // invalidated segment's pages must be gone at the end.
    let pool = BufferPool::with_shards(128, 8);
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..2_000u32 {
                    pool.access(PageKey {
                        segment: SegmentId(t % 2),
                        page: i % 50,
                    });
                }
            });
        }
        let pool = &pool;
        s.spawn(move || {
            for _ in 0..100 {
                pool.invalidate_segment(SegmentId(0));
                std::thread::yield_now();
            }
        });
    });
    pool.invalidate_segment(SegmentId(0));
    let s = pool.stats();
    assert_eq!(s.logical_reads, 8_000);
    assert_eq!(s.physical_reads + s.hits(), s.logical_reads);
    // Only segment-1 pages may remain.
    assert!(pool.resident() <= 50);
}

/// Builds a table with `segments` segments × `per_segment` entities.
fn build_table(segments: u32, per_segment: u64) -> (UniversalTable, Vec<SegmentId>) {
    let mut table = UniversalTable::with_pool(BufferPool::with_shards(256, 8));
    for i in 0..8 {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let segs: Vec<SegmentId> = (0..segments).map(|_| table.create_segment()).collect();
    let mut id = 0u64;
    for &seg in &segs {
        for _ in 0..per_segment {
            let e = Entity::new(
                EntityId(id),
                [
                    (AttrId((id % 8) as u32), Value::Int(id as i64)),
                    (AttrId(((id + 3) % 8) as u32), Value::Bool(true)),
                ],
            )
            .unwrap();
            table.insert(seg, &e).unwrap();
            id += 1;
        }
    }
    (table, segs)
}

#[test]
fn concurrent_read_views_agree_with_sequential_scan() {
    let (table, segs) = build_table(8, 100);
    let view = table.read_view();

    // Sequential reference counts.
    let mut expected = vec![0u64; segs.len()];
    for (i, &seg) in segs.iter().enumerate() {
        table.scan(seg, |_| expected[i] += 1).unwrap();
    }

    // 8 threads each scan every segment through the shared view.
    let counted: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let segs = &segs;
                s.spawn(move || {
                    let mut counts = vec![0u64; segs.len()];
                    for (i, &seg) in segs.iter().enumerate() {
                        view.scan(seg, |_| counts[i] += 1).unwrap();
                    }
                    counts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for counts in counted {
        assert_eq!(counts, expected, "every reader sees every entity");
    }

    // 9 full passes (1 sequential + 8 threaded) over all pages: the
    // counters must account for all of them.
    let s = table.io_stats();
    assert_eq!(s.physical_reads + s.hits(), s.logical_reads);
}

/// Long-running variant for soak testing: `cargo test -- --ignored`.
#[test]
#[ignore = "long-running stress variant; run explicitly with --ignored"]
fn sharded_pool_soak() {
    let pool = BufferPool::with_shards(256, 16);
    for round in 0..20 {
        hammer_pool(&pool, 16, 50_000);
        assert!(pool.resident() <= 256, "round {round}");
        pool.reset_stats();
    }
    let (table, segs) = build_table(16, 500);
    let view = table.read_view();
    std::thread::scope(|s| {
        for _ in 0..16 {
            let segs = &segs;
            s.spawn(move || {
                for _ in 0..50 {
                    let mut n = 0u64;
                    for &seg in segs {
                        view.scan(seg, |_| n += 1).unwrap();
                    }
                    assert_eq!(n, 16 * 500);
                }
            });
        }
    });
    let s = table.io_stats();
    assert_eq!(s.physical_reads + s.hits(), s.logical_reads);
}
