//! Property tests on storage internals: the buffer pool against a
//! reference LRU, pages under random operation sequences, and snapshot
//! corruption resistance.

use cind_bitset as _; // silence unused-dep lint paths in some cargo setups
use cind_model::{AttrId, Entity, EntityId, Value};
use cind_storage::buffer::PageKey;
use cind_storage::{BufferPool, Page, SegmentId, UniversalTable};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU with the same admission/eviction semantics.
struct RefLru {
    capacity: usize,
    /// Most recent first.
    order: VecDeque<PageKey>,
}

impl RefLru {
    fn new(capacity: usize) -> Self {
        Self { capacity, order: VecDeque::new() }
    }

    /// Returns hit?
    fn access(&mut self, key: PageKey) -> bool {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
            self.order.push_front(key);
            true
        } else {
            if self.capacity == 0 {
                return false;
            }
            if self.order.len() >= self.capacity {
                self.order.pop_back();
            }
            self.order.push_front(key);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slab-based intrusive LRU agrees with a naive reference on every
    /// access of a random trace.
    #[test]
    fn buffer_pool_matches_reference_lru(
        capacity in 0usize..8,
        trace in prop::collection::vec((0u32..4, 0u32..12), 0..200),
    ) {
        let pool = BufferPool::new(capacity);
        let mut reference = RefLru::new(capacity);
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (seg, page) in trace {
            let key = PageKey { segment: SegmentId(seg), page };
            let expect = reference.access(key);
            let got = pool.access(key);
            prop_assert_eq!(got, expect, "divergence at {:?}", key);
            if expect { hits += 1 } else { misses += 1 }
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.logical_reads, hits + misses);
        prop_assert_eq!(stats.physical_reads, misses);
        prop_assert!(pool.resident() <= capacity);
    }

    /// Pages never lose or corrupt live records under arbitrary
    /// insert/delete sequences (with compaction happening implicitly).
    #[test]
    fn page_survives_random_insert_delete(
        ops in prop::collection::vec((any::<bool>(), 1usize..400, 0u16..64), 1..120),
    ) {
        let mut page = Page::new();
        let mut model: std::collections::HashMap<u16, Vec<u8>> =
            std::collections::HashMap::new();
        let mut stamp = 0u8;
        for (is_insert, len, pick) in ops {
            if is_insert {
                stamp = stamp.wrapping_add(1);
                let rec = vec![stamp; len];
                if let Some(slot) = page.insert(&rec) {
                    model.insert(slot.0, rec);
                }
            } else if !model.is_empty() {
                let keys: Vec<u16> = model.keys().copied().collect();
                let slot = keys[pick as usize % keys.len()];
                prop_assert!(page.delete(cind_storage::SlotId(slot)));
                model.remove(&slot);
            }
            prop_assert_eq!(page.live_count(), model.len());
        }
        for (slot, rec) in &model {
            prop_assert_eq!(
                page.get(cind_storage::SlotId(*slot)).expect("live"),
                &rec[..]
            );
        }
    }

    /// A snapshot with any single byte flipped never restores successfully
    /// — and never panics.
    #[test]
    fn snapshot_detects_any_single_byte_flip(flip_pos in any::<prop::sample::Index>()) {
        let mut table = UniversalTable::new(8);
        let a = table.catalog_mut().intern("x");
        let seg = table.create_segment();
        for i in 0..10u64 {
            let e = Entity::new(EntityId(i), [(a, Value::Int(i as i64))]).unwrap();
            table.insert(seg, &e).unwrap();
        }
        let mut buf = Vec::new();
        table.snapshot(&mut buf).unwrap();
        let pos = flip_pos.index(buf.len());
        buf[pos] ^= 0x5A;
        prop_assert!(
            UniversalTable::restore(&mut &buf[..], 8).is_err(),
            "flip at {pos} of {} went undetected",
            buf.len()
        );
    }

    /// Attribute ids survive catalog interning order (sanity for AttrId
    /// stability assumptions used across crates).
    #[test]
    fn catalog_ids_are_stable_and_dense(names in prop::collection::btree_set("[a-z]{1,8}", 1..30)) {
        let mut table = UniversalTable::new(4);
        let names: Vec<String> = names.into_iter().collect();
        let ids: Vec<AttrId> = names
            .iter()
            .map(|n| table.catalog_mut().intern(n))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(id.0 as usize, i);
            prop_assert_eq!(table.catalog().lookup(&names[i]), Some(*id));
            // Re-interning never mints a new id.
            prop_assert_eq!(table.catalog_mut().intern(&names[i]), *id);
        }
    }
}
