//! Write-ahead logging — incremental durability between snapshots.
//!
//! [`UniversalTable::snapshot`](crate::UniversalTable::snapshot) is a full
//! copy; a busy table cannot afford one per modification. Attaching a WAL
//! sink ([`UniversalTable::attach_wal`]) makes every mutation append one
//! self-describing, individually checksummed entry, so the recovery recipe
//! becomes the classic *snapshot + log suffix*:
//!
//! ```text
//! table.attach_wal(file)?;      // log every mutation from now on
//! …mutations…                   // snapshot() any time for a new base
//! // after a crash:
//! let mut t = UniversalTable::restore(&mut base, pool)?;   // or ::new
//! wal::replay(&mut t, &mut log)?;                          // exact state
//! ```
//!
//! Entry kinds mirror the table's primitive mutations. `move_entity` is
//! logged as its constituent delete + insert, and attribute definitions are
//! emitted lazily (before the first entry that could reference them), so
//! the log is self-contained: replaying onto an *empty* table reproduces
//! catalog, segments (with identical ids), and every record.
//!
//! Framing per entry: `len: varint`, `body: len bytes`, `fnv1a64(body):
//! 8 bytes LE`. A torn final entry (crash mid-write) is detected and
//! reported with how many entries applied cleanly before it.

use std::io::{Read, Write};

use cind_model::EntityId;

use crate::persist::PersistError;
use crate::segment::SegmentId;
use crate::varint;
use crate::UniversalTable;

const OP_DEFINE_ATTR: u8 = 1;
const OP_CREATE_SEGMENT: u8 = 2;
const OP_DROP_SEGMENT: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_DELETE: u8 = 5;

/// FNV-1a 64 (same as the snapshot checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The table-side WAL state: the sink, how many attributes have been
/// defined in the log so far (for lazy `DefineAttr` emission), and the
/// first append failure, if any.
///
/// A failed append cannot be returned from the mutation that triggered it —
/// the in-memory change has already applied, and some logging entry points
/// ([`UniversalTable::create_segment`](crate::UniversalTable::create_segment))
/// are infallible. The failure is therefore *sticky*: recorded here and
/// surfaced as [`StorageError::WalAppend`](crate::StorageError::WalAppend)
/// from the next fallible logged mutation, and from every one after it,
/// until a new sink is attached. Durability is lost from the failed entry
/// onward either way; staying loud prevents a caller from mistaking a
/// half-logged table for a recoverable one.
pub(crate) struct WalSink {
    out: Box<dyn Write + Send + Sync>,
    attrs_logged: usize,
    failed: Option<std::io::ErrorKind>,
}

impl WalSink {
    pub(crate) fn new(out: Box<dyn Write + Send + Sync>, attrs_already: usize) -> Self {
        Self { out, attrs_logged: attrs_already, failed: None }
    }

    /// The first append failure, if any (sticky until re-attach).
    pub(crate) fn failure(&self) -> Option<std::io::ErrorKind> {
        self.failed
    }

    fn append(&mut self, body: &[u8]) {
        if self.failed.is_some() {
            return; // The log is already broken; don't write a gap after it.
        }
        let mut framed = Vec::with_capacity(body.len() + 12);
        varint::encode(body.len() as u64, &mut framed);
        framed.extend_from_slice(body);
        framed.extend_from_slice(&fnv1a(body).to_le_bytes());
        if let Err(e) = self.out.write_all(&framed) {
            self.failed = Some(e.kind());
        }
    }

    /// Emits `DefineAttr` entries for catalog ids not yet in the log.
    /// Catalog ids are dense, so iterating from the high-water mark covers
    /// exactly the undefined ones.
    fn sync_attrs(&mut self, catalog: &cind_model::AttributeCatalog) {
        let pending: Vec<Vec<u8>> = catalog
            .iter()
            .skip(self.attrs_logged)
            .map(|(_, name)| {
                let mut body = vec![OP_DEFINE_ATTR];
                varint::encode(name.len() as u64, &mut body);
                body.extend_from_slice(name.as_bytes());
                body
            })
            .collect();
        for body in pending {
            self.append(&body);
            self.attrs_logged += 1;
        }
    }

    pub(crate) fn log_create_segment(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        id: SegmentId,
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_CREATE_SEGMENT];
        varint::encode(u64::from(id.0), &mut body);
        self.append(&body);
    }

    pub(crate) fn log_drop_segment(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        id: SegmentId,
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_DROP_SEGMENT];
        varint::encode(u64::from(id.0), &mut body);
        self.append(&body);
    }

    pub(crate) fn log_insert(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        seg: SegmentId,
        record: &[u8],
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_INSERT];
        varint::encode(u64::from(seg.0), &mut body);
        varint::encode(record.len() as u64, &mut body);
        body.extend_from_slice(record);
        self.append(&body);
    }

    pub(crate) fn log_delete(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        id: EntityId,
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_DELETE];
        varint::encode(id.0, &mut body);
        self.append(&body);
    }

    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Outcome of a [`replay`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplayReport {
    /// Entries applied.
    pub applied: usize,
    /// Whether the log ended with a torn (incomplete or corrupt) final
    /// entry, which was discarded — the expected shape after a crash
    /// mid-append.
    pub torn_tail: bool,
}

/// Replays a WAL stream onto `table` (typically a freshly restored
/// snapshot, or an empty table for a log-only recovery).
///
/// A torn *final* entry is tolerated and reported; corruption anywhere
/// else is an error (the log is broken, not merely cut short).
///
/// # Errors
/// [`PersistError::Corrupt`] for mid-log corruption,
/// [`PersistError::Storage`] if an entry does not apply (log/table
/// mismatch).
pub fn replay(table: &mut UniversalTable, input: &mut impl Read) -> Result<ReplayReport, PersistError> {
    let mut buf = Vec::new();
    input.read_to_end(&mut buf)?;
    let mut pos = 0usize;
    let mut report = ReplayReport { applied: 0, torn_tail: false };

    while pos < buf.len() {
        // Decode one frame; any failure in the *last* frame is a torn tail.
        let frame_start = pos;
        let tail = |report: &mut ReplayReport| {
            report.torn_tail = true;
        };
        let Some((len, n)) = varint::decode(&buf[pos..]) else {
            tail(&mut report);
            break;
        };
        let len = len as usize;
        let body_start = pos + n;
        let Some(body) = buf.get(body_start..body_start + len) else {
            tail(&mut report);
            break;
        };
        let sum_start = body_start + len;
        let Some(sum) = buf.get(sum_start..sum_start + 8) else {
            tail(&mut report);
            break;
        };
        let Ok(sum) = <[u8; 8]>::try_from(sum) else {
            tail(&mut report);
            break;
        };
        let expect = u64::from_le_bytes(sum);
        if fnv1a(body) != expect {
            // A checksum failure at the very end is a torn tail; earlier it
            // is corruption.
            if sum_start + 8 >= buf.len() {
                tail(&mut report);
                break;
            }
            return Err(PersistError::Corrupt("wal entry checksum"));
        }
        pos = sum_start + 8;
        let _ = frame_start;

        apply_entry(table, body)?;
        report.applied += 1;
    }
    Ok(report)
}

fn apply_entry(table: &mut UniversalTable, body: &[u8]) -> Result<(), PersistError> {
    let corrupt = |what: &'static str| PersistError::Corrupt(what);
    let (&tag, rest) = body.split_first().ok_or(corrupt("empty wal entry"))?;
    let mut pos = 0usize;
    let mut next = |rest: &[u8]| -> Result<u64, PersistError> {
        let slice = rest.get(pos..).unwrap_or(&[]);
        let (v, n) = varint::decode(slice).ok_or(corrupt("wal varint"))?;
        pos += n;
        Ok(v)
    };
    match tag {
        OP_DEFINE_ATTR => {
            let len = next(rest)? as usize;
            let name = rest
                .get(pos..pos + len)
                .ok_or(corrupt("wal attr name"))?;
            let name = std::str::from_utf8(name).map_err(|_| corrupt("wal attr utf8"))?;
            table.catalog_mut().intern(name);
        }
        OP_CREATE_SEGMENT => {
            let id = u32::try_from(next(rest)?).map_err(|_| corrupt("segment id"))?;
            table.restore_segment(SegmentId(id))?;
        }
        OP_DROP_SEGMENT => {
            let id = u32::try_from(next(rest)?).map_err(|_| corrupt("segment id"))?;
            table.drop_segment(SegmentId(id))?;
        }
        OP_INSERT => {
            let seg = u32::try_from(next(rest)?).map_err(|_| corrupt("segment id"))?;
            let len = next(rest)? as usize;
            let record = rest.get(pos..pos + len).ok_or(corrupt("wal record"))?;
            let id = crate::record::decode_entity_id(record)?;
            crate::record::decode_entity(record)?;
            table.restore_record(SegmentId(seg), id, record)?;
        }
        OP_DELETE => {
            let id = EntityId(next(rest)?);
            table.delete(id)?;
        }
        _ => return Err(corrupt("unknown wal op")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, Entity, Value};
    use std::sync::{Arc, Mutex};

    /// A Write sink into a shared buffer, so tests can read the log back
    /// while the table still owns the writer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn mutate(table: &mut UniversalTable) -> SegmentId {
        let a = table.catalog_mut().intern("a");
        let b = table.catalog_mut().intern("b");
        let s1 = table.create_segment();
        let s2 = table.create_segment();
        for i in 0..20u64 {
            let (seg, attr) = if i % 2 == 0 { (s1, a) } else { (s2, b) };
            let e = Entity::new(EntityId(i), [(attr, Value::Int(i as i64))]).unwrap();
            table.insert(seg, &e).unwrap();
        }
        table.delete(EntityId(4)).unwrap();
        table.move_entity(EntityId(6), s2).unwrap();
        // Empty a segment and drop it.
        let s3 = table.create_segment();
        table.drop_segment(s3).unwrap();
        s1
    }

    fn tables_equal(a: &UniversalTable, b: &UniversalTable) {
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.universe(), b.universe());
        assert_eq!(
            a.segment_ids().collect::<Vec<_>>(),
            b.segment_ids().collect::<Vec<_>>()
        );
        for id in 0..40u64 {
            let id = EntityId(id);
            match a.get(id) {
                Ok(e) => {
                    assert_eq!(b.get(id).unwrap(), e);
                    assert_eq!(a.location(id), b.location(id));
                }
                Err(_) => assert!(b.get(id).is_err()),
            }
        }
    }

    #[test]
    fn replaying_the_log_reproduces_the_table() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        mutate(&mut table);

        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..]).unwrap();
        assert!(!report.torn_tail);
        assert!(report.applied > 20);
        tables_equal(&table, &recovered);
    }

    #[test]
    fn snapshot_plus_log_suffix_recovers() {
        // Mutations before the snapshot are NOT in the log (attach after).
        let mut table = UniversalTable::new(16);
        let a = table.catalog_mut().intern("a");
        let seg = table.create_segment();
        for i in 100..110u64 {
            let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
            table.insert(seg, &e).unwrap();
        }
        let mut base = Vec::new();
        table.snapshot(&mut base).unwrap();

        let log = SharedBuf::default();
        table.attach_wal(Box::new(log.clone()));
        mutate(&mut table);

        let mut recovered = UniversalTable::restore(&mut &base[..], 16).unwrap();
        let bytes = log.0.lock().unwrap().clone();
        replay(&mut recovered, &mut &bytes[..]).unwrap();
        tables_equal(&table, &recovered);
        // The pre-snapshot entities are there too.
        assert!(recovered.get(EntityId(105)).is_ok());
    }

    #[test]
    fn torn_tail_is_tolerated_mid_log_corruption_is_not() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        mutate(&mut table);
        let bytes = log.0.lock().unwrap().clone();

        // Truncate inside the final entry: applied-so-far + torn flag.
        let cut = bytes.len() - 3;
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..cut]).unwrap();
        assert!(report.torn_tail);
        assert!(report.applied > 0);

        // Flip a byte early in the log: hard error.
        let mut bad = bytes.clone();
        bad[bytes.len() / 4] ^= 0xff;
        let mut recovered = UniversalTable::new(16);
        assert!(replay(&mut recovered, &mut &bad[..]).is_err());
    }

    #[test]
    fn detached_table_logs_nothing() {
        let mut table = UniversalTable::new(16);
        mutate(&mut table); // no WAL attached: must not panic
        let log = SharedBuf::default();
        table.attach_wal(Box::new(log.clone()));
        // Attr definitions of pre-attach attributes are still emitted
        // lazily with the first post-attach mutation.
        let c = table.catalog_mut().intern("c");
        let seg = table.create_segment();
        let e = Entity::new(EntityId(1000), [(c, Value::Bool(true))]).unwrap();
        table.insert(seg, &e).unwrap();

        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..]).unwrap();
        // 3 attrs + create + insert.
        assert_eq!(report.applied, 5);
        assert_eq!(recovered.entity_count(), 1);
        assert_eq!(recovered.universe(), 3);
        assert_eq!(recovered.get(EntityId(1000)).unwrap(), e);
    }

    /// A sink that fails every write with the given kind.
    struct FailingSink(std::io::ErrorKind);

    impl Write for FailingSink {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(self.0))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn append_failure_is_sticky_and_surfaces_on_fallible_ops() {
        use crate::StorageError;
        let mut table = UniversalTable::new(16);
        let a = table.catalog_mut().intern("a");
        table.attach_wal(Box::new(FailingSink(std::io::ErrorKind::WriteZero)));
        // create_segment is infallible; the failed DefineAttr/CreateSegment
        // appends surface on the next fallible mutation.
        let seg = table.create_segment();
        let e = Entity::new(EntityId(1), [(a, Value::Int(1))]).unwrap();
        let err = table.insert(seg, &e).unwrap_err();
        assert_eq!(err, StorageError::WalAppend(std::io::ErrorKind::WriteZero));
        // The in-memory mutation applied anyway (durability, not data, is
        // what broke) …
        assert_eq!(table.entity_count(), 1);
        // … and the failure stays sticky.
        let err = table.delete(EntityId(1)).unwrap_err();
        assert_eq!(err, StorageError::WalAppend(std::io::ErrorKind::WriteZero));
        // Re-attaching a healthy sink clears it.
        let log = SharedBuf::default();
        table.attach_wal(Box::new(log.clone()));
        let e = Entity::new(EntityId(2), [(a, Value::Int(2))]).unwrap();
        table.insert(seg, &e).unwrap();
        assert!(!log.0.lock().unwrap().is_empty());
    }

    #[test]
    fn attr_ids_in_recovered_table_match() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        let x = table.catalog_mut().intern("x");
        let y = table.catalog_mut().intern("y");
        let seg = table.create_segment();
        let e = Entity::new(
            EntityId(0),
            [(x, Value::Int(1)), (y, Value::Int(2))],
        )
        .unwrap();
        table.insert(seg, &e).unwrap();

        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        replay(&mut recovered, &mut &bytes[..]).unwrap();
        assert_eq!(recovered.catalog().lookup("x"), Some(AttrId(0)));
        assert_eq!(recovered.catalog().lookup("y"), Some(AttrId(1)));
    }
}
