//! Write-ahead logging — incremental durability between snapshots.
//!
//! [`UniversalTable::snapshot`](crate::UniversalTable::snapshot) is a full
//! copy; a busy table cannot afford one per modification. Attaching a WAL
//! sink ([`UniversalTable::attach_wal`]) makes every mutation append one
//! self-describing, individually checksummed entry, so the recovery recipe
//! becomes the classic *snapshot + log suffix*:
//!
//! ```text
//! table.attach_wal(file)?;      // log every mutation from now on
//! …mutations…                   // snapshot() any time for a new base
//! // after a crash:
//! let mut t = UniversalTable::restore(&mut base, pool)?;   // or ::new
//! wal::replay(&mut t, &mut log)?;                          // exact state
//! ```
//!
//! Entry kinds mirror the table's primitive mutations. `move_entity` is
//! logged as its constituent delete + insert, and attribute definitions are
//! emitted lazily (before the first entry that could reference them), so
//! the log is self-contained: replaying onto an *empty* table reproduces
//! catalog, segments (with identical ids), and every record.
//!
//! Framing per entry: `len: varint`, `body: len bytes`, `fnv1a64(body):
//! 8 bytes LE`. A torn final entry (crash mid-write) is detected and
//! reported with how many entries applied cleanly before it.
//!
//! Three structural entry kinds carry no table mutation:
//!
//! * `Epoch` — written once, first, binding the log to the snapshot it
//!   extends (the FNV-1a of the snapshot bytes). Recovery uses it to detect
//!   a log left behind by an older snapshot generation ([`read_epoch`]).
//! * `Begin`/`Commit` — bracket the entries of one logical operation
//!   (one partitioner insert/update/delete/merge). The sink buffers a
//!   transaction and emits it as a single `write_all`, so a crash tears at
//!   most one write surface; [`replay`] applies only complete groups and
//!   discards an unterminated trailing group as a torn tail.

use std::io::{Read, Write};

use cind_model::EntityId;

use crate::persist::PersistError;
use crate::segment::SegmentId;
use crate::varint;
use crate::UniversalTable;

const OP_DEFINE_ATTR: u8 = 1;
const OP_CREATE_SEGMENT: u8 = 2;
const OP_DROP_SEGMENT: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_EPOCH: u8 = 6;
const OP_BEGIN: u8 = 7;
const OP_COMMIT: u8 = 8;

/// FNV-1a 64 (same as the snapshot checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The table-side WAL state: the sink, how many attributes have been
/// defined in the log so far (for lazy `DefineAttr` emission), and the
/// first append failure, if any.
///
/// A failed append cannot be returned from the mutation that triggered it —
/// the in-memory change has already applied, and some logging entry points
/// ([`UniversalTable::create_segment`](crate::UniversalTable::create_segment))
/// are infallible. The failure is therefore *sticky*: recorded here and
/// surfaced as [`StorageError::WalAppend`](crate::StorageError::WalAppend)
/// from the next fallible logged mutation, and from every one after it,
/// until a new sink is attached. Durability is lost from the failed entry
/// onward either way; staying loud prevents a caller from mistaking a
/// half-logged table for a recoverable one.
pub(crate) struct WalSink {
    out: Box<dyn Write + Send + Sync>,
    attrs_logged: usize,
    failed: Option<std::io::ErrorKind>,
    txn_depth: u32,
    txn_buf: Vec<u8>,
}

/// Frames one entry (`len`, `body`, `fnv1a64(body)`) into `dst`.
fn frame_into(body: &[u8], dst: &mut Vec<u8>) {
    varint::encode(body.len() as u64, dst);
    dst.extend_from_slice(body);
    dst.extend_from_slice(&fnv1a(body).to_le_bytes());
}

impl WalSink {
    pub(crate) fn new(out: Box<dyn Write + Send + Sync>, attrs_already: usize) -> Self {
        Self {
            out,
            attrs_logged: attrs_already,
            failed: None,
            txn_depth: 0,
            txn_buf: Vec::new(),
        }
    }

    /// The first append failure, if any (sticky until re-attach).
    pub(crate) fn failure(&self) -> Option<std::io::ErrorKind> {
        self.failed
    }

    /// Marks the sink failed, as if an append had errored with `kind`.
    /// Used by callers whose *own* durability step failed (e.g. a
    /// checkpoint that wrote a new snapshot but could not open a new log):
    /// the sink must not keep accepting entries a future recovery would
    /// skip as stale.
    pub(crate) fn fail(&mut self, kind: std::io::ErrorKind) {
        self.failed = Some(kind);
    }

    fn append(&mut self, body: &[u8]) {
        if self.failed.is_some() {
            return; // The log is already broken; don't write a gap after it.
        }
        if self.txn_depth > 0 {
            frame_into(body, &mut self.txn_buf);
            return;
        }
        let mut framed = Vec::with_capacity(body.len() + 12);
        frame_into(body, &mut framed);
        if let Err(e) = self.out.write_all(&framed) {
            self.failed = Some(e.kind());
        }
    }

    /// Opens (or nests into) a transaction group. While a group is open,
    /// entries accumulate in memory; nothing reaches the sink until the
    /// outermost [`Self::txn_commit`].
    pub(crate) fn txn_begin(&mut self) {
        self.txn_depth += 1;
        if self.txn_depth == 1 {
            self.txn_buf.clear();
            frame_into(&[OP_BEGIN], &mut self.txn_buf);
        }
    }

    /// Closes one nesting level; the outermost close appends the `Commit`
    /// marker and flushes the whole group as a single write, so a crash or
    /// an out-of-space failure loses the group atomically rather than
    /// leaving a prefix of it behind.
    pub(crate) fn txn_commit(&mut self) {
        if self.txn_depth == 0 {
            return; // unbalanced commit: ignore rather than underflow
        }
        self.txn_depth -= 1;
        if self.txn_depth > 0 {
            return;
        }
        let mut batch = std::mem::take(&mut self.txn_buf);
        if self.failed.is_some() {
            return;
        }
        frame_into(&[OP_COMMIT], &mut batch);
        if let Err(e) = self.out.write_all(&batch) {
            self.failed = Some(e.kind());
        }
    }

    /// Writes the epoch entry binding this log to a snapshot generation.
    /// Must be the first entry (the engine calls it immediately after
    /// attaching a fresh sink).
    pub(crate) fn log_epoch(&mut self, epoch: u64) {
        let mut body = vec![OP_EPOCH];
        varint::encode(epoch, &mut body);
        self.append(&body);
    }

    /// Emits `DefineAttr` entries for catalog ids not yet in the log.
    /// Catalog ids are dense, so iterating from the high-water mark covers
    /// exactly the undefined ones.
    fn sync_attrs(&mut self, catalog: &cind_model::AttributeCatalog) {
        let pending: Vec<Vec<u8>> = catalog
            .iter()
            .skip(self.attrs_logged)
            .map(|(_, name)| {
                let mut body = vec![OP_DEFINE_ATTR];
                varint::encode(name.len() as u64, &mut body);
                body.extend_from_slice(name.as_bytes());
                body
            })
            .collect();
        for body in pending {
            self.append(&body);
            self.attrs_logged += 1;
        }
    }

    pub(crate) fn log_create_segment(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        id: SegmentId,
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_CREATE_SEGMENT];
        varint::encode(u64::from(id.0), &mut body);
        self.append(&body);
    }

    pub(crate) fn log_drop_segment(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        id: SegmentId,
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_DROP_SEGMENT];
        varint::encode(u64::from(id.0), &mut body);
        self.append(&body);
    }

    pub(crate) fn log_insert(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        seg: SegmentId,
        record: &[u8],
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_INSERT];
        varint::encode(u64::from(seg.0), &mut body);
        varint::encode(record.len() as u64, &mut body);
        body.extend_from_slice(record);
        self.append(&body);
    }

    pub(crate) fn log_delete(
        &mut self,
        catalog: &cind_model::AttributeCatalog,
        id: EntityId,
    ) {
        self.sync_attrs(catalog);
        let mut body = vec![OP_DELETE];
        varint::encode(id.0, &mut body);
        self.append(&body);
    }

    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Outcome of a [`replay`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplayReport {
    /// Entries applied (mutation entries only — `Epoch`/`Begin`/`Commit`
    /// markers are structural and not counted).
    pub applied: usize,
    /// Whether the log ended with a torn (incomplete or corrupt) final
    /// entry or an unterminated transaction group, which was discarded —
    /// the expected shape after a crash mid-append.
    pub torn_tail: bool,
}

/// Whether a frame body matches its recorded checksum.
///
/// The `sim-defect` feature deliberately disables this check so the
/// simulation harness can prove its oracle notices the resulting silent
/// corruption; it must never be enabled in a real build.
fn checksum_matches(body: &[u8], expect: u64) -> bool {
    if cfg!(feature = "sim-defect") {
        return true;
    }
    fnv1a(body) == expect
}

/// Parses one checksummed frame at `pos`. Returns the body range and the
/// offset just past the frame, or `None` if the bytes there do not form a
/// complete, checksum-valid frame.
fn parse_frame(buf: &[u8], pos: usize, verify: bool) -> Option<(std::ops::Range<usize>, usize)> {
    let (len, n) = varint::decode(buf.get(pos..)?)?;
    let len = usize::try_from(len).ok()?;
    let body_start = pos.checked_add(n)?;
    let sum_start = body_start.checked_add(len)?;
    let body = buf.get(body_start..sum_start)?;
    let sum = buf.get(sum_start..sum_start.checked_add(8)?)?;
    let expect = u64::from_le_bytes(<[u8; 8]>::try_from(sum).ok()?);
    if verify {
        if !checksum_matches(body, expect) {
            return None;
        }
    } else if fnv1a(body) != expect {
        return None;
    }
    if body.is_empty() {
        return None; // zero-length bodies are never written
    }
    Some((body_start..sum_start, sum_start + 8))
}

/// Reads the epoch header from the start of a WAL byte stream, if present.
///
/// Always verifies the real checksum (even under `sim-defect`): the epoch
/// decides whether the whole log is replayed at all, so it must not be
/// weakened by the deliberate-defect flag. Returns `None` for an empty
/// log, a torn first entry, or a log that starts with any other entry kind
/// (a pre-epoch legacy log — callers replay those unconditionally).
pub fn read_epoch(buf: &[u8]) -> Option<u64> {
    let (range, _) = parse_frame(buf, 0, false)?;
    let body = &buf[range];
    let (&tag, rest) = body.split_first()?;
    if tag != OP_EPOCH {
        return None;
    }
    let (epoch, n) = varint::decode(rest)?;
    if n != rest.len() {
        return None;
    }
    Some(epoch)
}

/// Replays a WAL stream onto `table` (typically a freshly restored
/// snapshot, or an empty table for a log-only recovery).
///
/// The log is scanned structurally first: frames are grouped into units —
/// standalone entries, and `Begin`..`Commit` transaction groups — and only
/// complete units are applied. The first invalid frame ends the scan and
/// is classified by *byte resync*: if any later offset parses as a valid
/// checksummed frame the damage is in the middle of the log
/// ([`PersistError::Corrupt`] — the log is broken, not merely cut short);
/// if nothing after it parses, it is the torn tail of a crashed final
/// write and is discarded (along with an unterminated trailing group).
///
/// # Errors
/// [`PersistError::Corrupt`] for mid-log corruption or transaction-framing
/// violations, [`PersistError::Storage`] if an entry does not apply
/// (log/table mismatch).
pub fn replay(table: &mut UniversalTable, input: &mut impl Read) -> Result<ReplayReport, PersistError> {
    let mut buf = Vec::new();
    input.read_to_end(&mut buf)?;
    let mut pos = 0usize;
    let mut report = ReplayReport { applied: 0, torn_tail: false };

    // Bodies of the currently open (not yet committed) transaction group.
    let mut group: Option<Vec<std::ops::Range<usize>>> = None;
    let mut invalid_at: Option<usize> = None;

    while pos < buf.len() {
        let Some((body_range, next)) = parse_frame(&buf, pos, true) else {
            invalid_at = Some(pos);
            break;
        };
        pos = next;
        let tag = buf[body_range.start];
        match tag {
            OP_BEGIN if group.is_none() => group = Some(Vec::new()),
            OP_COMMIT if group.is_some() => {
                for range in group.take().into_iter().flatten() {
                    apply_entry(table, &buf[range])?;
                    report.applied += 1;
                }
            }
            OP_BEGIN | OP_COMMIT => {
                return Err(PersistError::Corrupt("wal txn framing"));
            }
            OP_EPOCH => {
                // Structural marker: consumed by `read_epoch`, no mutation.
            }
            _ => match group.as_mut() {
                Some(g) => g.push(body_range),
                None => {
                    apply_entry(table, &buf[body_range])?;
                    report.applied += 1;
                }
            },
        }
    }

    if let Some(bad) = invalid_at {
        // Resync scan: a valid frame anywhere after the damage means the
        // log continues past it — mid-log corruption, not a torn tail.
        // (A garbage tail cannot alias a valid frame: the checksum would
        // have to collide.)
        for o in bad + 1..buf.len() {
            if parse_frame(&buf, o, false).is_some() {
                return Err(PersistError::Corrupt("wal entry checksum"));
            }
        }
        report.torn_tail = true;
    }
    if group.is_some() {
        // The final group never committed: the crash landed inside its
        // batch write. Discard it wholesale.
        report.torn_tail = true;
    }
    Ok(report)
}

fn apply_entry(table: &mut UniversalTable, body: &[u8]) -> Result<(), PersistError> {
    let corrupt = |what: &'static str| PersistError::Corrupt(what);
    let (&tag, rest) = body.split_first().ok_or(corrupt("empty wal entry"))?;
    let mut pos = 0usize;
    let mut next = |rest: &[u8]| -> Result<u64, PersistError> {
        let slice = rest.get(pos..).unwrap_or(&[]);
        let (v, n) = varint::decode(slice).ok_or(corrupt("wal varint"))?;
        pos += n;
        Ok(v)
    };
    match tag {
        OP_DEFINE_ATTR => {
            let len = next(rest)? as usize;
            let name = rest
                .get(pos..pos + len)
                .ok_or(corrupt("wal attr name"))?;
            let name = std::str::from_utf8(name).map_err(|_| corrupt("wal attr utf8"))?;
            table.catalog_mut().intern(name);
        }
        OP_CREATE_SEGMENT => {
            let id = u32::try_from(next(rest)?).map_err(|_| corrupt("segment id"))?;
            table.restore_segment(SegmentId(id))?;
        }
        OP_DROP_SEGMENT => {
            let id = u32::try_from(next(rest)?).map_err(|_| corrupt("segment id"))?;
            table.drop_segment(SegmentId(id))?;
        }
        OP_INSERT => {
            let seg = u32::try_from(next(rest)?).map_err(|_| corrupt("segment id"))?;
            let len = next(rest)? as usize;
            let record = rest.get(pos..pos + len).ok_or(corrupt("wal record"))?;
            let id = crate::record::decode_entity_id(record)?;
            crate::record::decode_entity(record)?;
            table.restore_record(SegmentId(seg), id, record)?;
        }
        OP_DELETE => {
            let id = EntityId(next(rest)?);
            table.delete(id)?;
        }
        _ => return Err(corrupt("unknown wal op")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, Entity, Value};
    use std::sync::{Arc, Mutex};

    /// A Write sink into a shared buffer, so tests can read the log back
    /// while the table still owns the writer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn mutate(table: &mut UniversalTable) -> SegmentId {
        let a = table.catalog_mut().intern("a");
        let b = table.catalog_mut().intern("b");
        let s1 = table.create_segment();
        let s2 = table.create_segment();
        for i in 0..20u64 {
            let (seg, attr) = if i % 2 == 0 { (s1, a) } else { (s2, b) };
            let e = Entity::new(EntityId(i), [(attr, Value::Int(i as i64))]).unwrap();
            table.insert(seg, &e).unwrap();
        }
        table.delete(EntityId(4)).unwrap();
        table.move_entity(EntityId(6), s2).unwrap();
        // Empty a segment and drop it.
        let s3 = table.create_segment();
        table.drop_segment(s3).unwrap();
        s1
    }

    fn tables_equal(a: &UniversalTable, b: &UniversalTable) {
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.universe(), b.universe());
        assert_eq!(
            a.segment_ids().collect::<Vec<_>>(),
            b.segment_ids().collect::<Vec<_>>()
        );
        for id in 0..40u64 {
            let id = EntityId(id);
            match a.get(id) {
                Ok(e) => {
                    assert_eq!(b.get(id).unwrap(), e);
                    assert_eq!(a.location(id), b.location(id));
                }
                Err(_) => assert!(b.get(id).is_err()),
            }
        }
    }

    #[test]
    fn replaying_the_log_reproduces_the_table() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        mutate(&mut table);

        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..]).unwrap();
        assert!(!report.torn_tail);
        assert!(report.applied > 20);
        tables_equal(&table, &recovered);
    }

    #[test]
    fn snapshot_plus_log_suffix_recovers() {
        // Mutations before the snapshot are NOT in the log (attach after).
        let mut table = UniversalTable::new(16);
        let a = table.catalog_mut().intern("a");
        let seg = table.create_segment();
        for i in 100..110u64 {
            let e = Entity::new(EntityId(i), [(a, Value::Int(1))]).unwrap();
            table.insert(seg, &e).unwrap();
        }
        let mut base = Vec::new();
        table.snapshot(&mut base).unwrap();

        let log = SharedBuf::default();
        table.attach_wal(Box::new(log.clone()));
        mutate(&mut table);

        let mut recovered = UniversalTable::restore(&mut &base[..], 16).unwrap();
        let bytes = log.0.lock().unwrap().clone();
        replay(&mut recovered, &mut &bytes[..]).unwrap();
        tables_equal(&table, &recovered);
        // The pre-snapshot entities are there too.
        assert!(recovered.get(EntityId(105)).is_ok());
    }

    #[test]
    fn torn_tail_is_tolerated_mid_log_corruption_is_not() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        mutate(&mut table);
        let bytes = log.0.lock().unwrap().clone();

        // Truncate inside the final entry: applied-so-far + torn flag.
        let cut = bytes.len() - 3;
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..cut]).unwrap();
        assert!(report.torn_tail);
        assert!(report.applied > 0);

        // Flip a byte early in the log: hard error.
        let mut bad = bytes.clone();
        bad[bytes.len() / 4] ^= 0xff;
        let mut recovered = UniversalTable::new(16);
        assert!(replay(&mut recovered, &mut &bad[..]).is_err());
    }

    #[test]
    fn detached_table_logs_nothing() {
        let mut table = UniversalTable::new(16);
        mutate(&mut table); // no WAL attached: must not panic
        let log = SharedBuf::default();
        table.attach_wal(Box::new(log.clone()));
        // Attr definitions of pre-attach attributes are still emitted
        // lazily with the first post-attach mutation.
        let c = table.catalog_mut().intern("c");
        let seg = table.create_segment();
        let e = Entity::new(EntityId(1000), [(c, Value::Bool(true))]).unwrap();
        table.insert(seg, &e).unwrap();

        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..]).unwrap();
        // 3 attrs + create + insert.
        assert_eq!(report.applied, 5);
        assert_eq!(recovered.entity_count(), 1);
        assert_eq!(recovered.universe(), 3);
        assert_eq!(recovered.get(EntityId(1000)).unwrap(), e);
    }

    /// A sink that fails every write with the given kind.
    struct FailingSink(std::io::ErrorKind);

    impl Write for FailingSink {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(self.0))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn append_failure_is_sticky_and_surfaces_on_fallible_ops() {
        use crate::StorageError;
        let mut table = UniversalTable::new(16);
        let a = table.catalog_mut().intern("a");
        table.attach_wal(Box::new(FailingSink(std::io::ErrorKind::WriteZero)));
        // create_segment is infallible; the failed DefineAttr/CreateSegment
        // appends surface on the next fallible mutation.
        let seg = table.create_segment();
        let e = Entity::new(EntityId(1), [(a, Value::Int(1))]).unwrap();
        let err = table.insert(seg, &e).unwrap_err();
        assert_eq!(err, StorageError::WalAppend(std::io::ErrorKind::WriteZero));
        // The in-memory mutation applied anyway (durability, not data, is
        // what broke) …
        assert_eq!(table.entity_count(), 1);
        // … and the failure stays sticky.
        let err = table.delete(EntityId(1)).unwrap_err();
        assert_eq!(err, StorageError::WalAppend(std::io::ErrorKind::WriteZero));
        // Re-attaching a healthy sink clears it.
        let log = SharedBuf::default();
        table.attach_wal(Box::new(log.clone()));
        let e = Entity::new(EntityId(2), [(a, Value::Int(2))]).unwrap();
        table.insert(seg, &e).unwrap();
        assert!(!log.0.lock().unwrap().is_empty());
    }

    #[test]
    fn attr_ids_in_recovered_table_match() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        let x = table.catalog_mut().intern("x");
        let y = table.catalog_mut().intern("y");
        let seg = table.create_segment();
        let e = Entity::new(
            EntityId(0),
            [(x, Value::Int(1)), (y, Value::Int(2))],
        )
        .unwrap();
        table.insert(seg, &e).unwrap();

        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        replay(&mut recovered, &mut &bytes[..]).unwrap();
        assert_eq!(recovered.catalog().lookup("x"), Some(AttrId(0)));
        assert_eq!(recovered.catalog().lookup("y"), Some(AttrId(1)));
    }

    fn one_insert_txn(table: &mut UniversalTable, seg: SegmentId, id: u64) {
        let a = table.catalog_mut().intern("a");
        table.wal_txn_begin();
        let e = Entity::new(EntityId(id), [(a, Value::Int(id as i64))]).unwrap();
        table.insert(seg, &e).unwrap();
        table.wal_txn_commit().unwrap();
    }

    #[test]
    fn txn_groups_replay_and_buffer_until_commit() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        let seg = table.create_segment();
        let before_txn = log.0.lock().unwrap().len();

        // Nested begin/commit: nothing reaches the sink until the
        // outermost commit.
        table.wal_txn_begin();
        table.wal_txn_begin();
        let a = table.catalog_mut().intern("a");
        let e = Entity::new(EntityId(1), [(a, Value::Int(1))]).unwrap();
        table.insert(seg, &e).unwrap();
        table.wal_txn_commit().unwrap();
        assert_eq!(log.0.lock().unwrap().len(), before_txn);
        table.wal_txn_commit().unwrap();
        assert!(log.0.lock().unwrap().len() > before_txn);

        one_insert_txn(&mut table, seg, 2);
        let bytes = log.0.lock().unwrap().clone();
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..]).unwrap();
        assert!(!report.torn_tail);
        // attr define + create segment + 2 inserts; Begin/Commit markers
        // are not counted.
        assert_eq!(report.applied, 4);
        assert_eq!(recovered.entity_count(), 2);
    }

    #[test]
    fn torn_txn_group_is_discarded_wholesale() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        let seg = table.create_segment();
        one_insert_txn(&mut table, seg, 1);
        let full = log.0.lock().unwrap().len();
        one_insert_txn(&mut table, seg, 2);
        let bytes = log.0.lock().unwrap().clone();

        // Cut at every byte inside the second group: entity 2 must never
        // surface (its group never committed), entity 1 always must.
        // (Cutting exactly at `full` would be a clean post-group-1 log.)
        for cut in full + 1..bytes.len() {
            let mut recovered = UniversalTable::new(16);
            let report = replay(&mut recovered, &mut &bytes[..cut]).unwrap();
            assert!(report.torn_tail, "cut={cut}");
            assert_eq!(recovered.entity_count(), 1, "cut={cut}");
            assert!(recovered.get(EntityId(1)).is_ok(), "cut={cut}");
        }
    }

    #[test]
    fn epoch_header_roundtrips_and_gates_on_real_checksum() {
        let log = SharedBuf::default();
        let mut table = UniversalTable::new(16);
        table.attach_wal(Box::new(log.clone()));
        table.wal_mark_epoch(0xdead_beef_1234);
        let seg = table.create_segment();
        one_insert_txn(&mut table, seg, 7);

        let bytes = log.0.lock().unwrap().clone();
        assert_eq!(read_epoch(&bytes), Some(0xdead_beef_1234));

        // Replay skips the epoch marker but applies everything else.
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &bytes[..]).unwrap();
        assert_eq!(recovered.entity_count(), 1);
        assert!(!report.torn_tail);

        // A corrupted epoch frame reads as "no epoch" even if the defect
        // flag would otherwise skip checksums.
        let mut bad = bytes.clone();
        bad[2] ^= 0x55;
        assert_eq!(read_epoch(&bad), None);
        // Legacy log (no epoch entry first): also None.
        let legacy = SharedBuf::default();
        let mut t2 = UniversalTable::new(16);
        t2.attach_wal(Box::new(legacy.clone()));
        t2.create_segment();
        assert_eq!(read_epoch(&legacy.0.lock().unwrap().clone()), None);
        assert_eq!(read_epoch(&[]), None);
    }

    #[test]
    fn enospc_commit_drops_the_whole_group() {
        use crate::StorageError;
        let mut table = UniversalTable::new(16);
        let a = table.catalog_mut().intern("a");
        let seg_log = SharedBuf::default();
        table.attach_wal(Box::new(seg_log.clone()));
        let seg = table.create_segment();
        let logged = seg_log.0.lock().unwrap().clone();

        // Re-attach a failing sink: the buffered group vanishes at commit
        // and the failure is sticky.
        table.attach_wal(Box::new(FailingSink(std::io::ErrorKind::StorageFull)));
        table.wal_txn_begin();
        let e = Entity::new(EntityId(1), [(a, Value::Int(1))]).unwrap();
        table.insert(seg, &e).unwrap();
        let err = table.wal_txn_commit().unwrap_err();
        assert_eq!(err, StorageError::WalAppend(std::io::ErrorKind::StorageFull));

        // The healthy log recorded nothing for the failed group, and a
        // replay of it sees only the pre-failure prefix.
        let mut recovered = UniversalTable::new(16);
        let report = replay(&mut recovered, &mut &logged[..]).unwrap();
        assert_eq!(recovered.entity_count(), 0);
        assert!(!report.torn_tail);
        assert_eq!(report.applied, 2); // define-attr + create-segment
    }
}
