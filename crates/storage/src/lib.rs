//! Sparse universal-table storage engine with I/O accounting.
//!
//! The paper prototypes Cinderella inside PostgreSQL (one regular table per
//! partition, triggers, UNION ALL views). This crate is the from-scratch
//! substitute: a small storage engine purpose-built for sparse universal
//! tables, in the spirit of the *interpreted attribute storage format* of
//! Beckmann et al. (ICDE'06), which the paper cites as the state of the art
//! for storing such data.
//!
//! Layout, bottom to top:
//!
//! * [`varint`] — LEB128 variable-length integers used by the record format.
//! * [`record`] — self-describing serialized entities: only instantiated
//!   attributes are stored as `(attr-id, tag, payload)` triples, so a sparse
//!   entity costs space proportional to its arity, not to the table width.
//! * [`page::Page`] — 8 KiB slotted pages with a slot directory, deletion
//!   and compaction.
//! * [`segment::Segment`] — an unordered heap of pages holding one
//!   *partition* of the universal table.
//! * [`buffer::BufferPool`] — a sharded LRU page cache that *accounts*
//!   rather than caches: pages always live in memory (this is a simulation
//!   substrate), but every access is classified as a hit or a miss so
//!   experiments can report logical and "physical" I/O alongside wall time.
//! * [`table::UniversalTable`] — the façade: attribute catalog, segments,
//!   an entity locator index, and entity-level insert/delete/move/scan.
//!
//! Everything is deterministic and single-writer; readers go through
//! per-shard locks and lock-free I/O counters so scans take `&self`, and
//! [`table::ReadView`] packages the read-only state as a `Send + Sync`
//! handle for parallel segment scans (`UNION ALL` branches on separate
//! threads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod manifest;
pub mod page;
pub mod persist;
pub mod record;
pub mod segment;
pub mod table;
pub mod varint;
pub mod vfs;
pub mod wal;

mod error;
mod iostats;

pub use buffer::{BufferPool, IoModel};
pub use error::StorageError;
pub use iostats::{AtomicIoStats, IoStats};
pub use page::{Page, SlotId, PAGE_SIZE};
pub use persist::PersistError;
pub use record::{decode_entity, encode_entity};
pub use segment::{RecordId, Segment, SegmentId};
pub use manifest::Manifest;
pub use table::{ReadView, TableSnapshot, UniversalTable};
pub use vfs::{FileSink, RealVfs, Vfs, VfsFile};
pub use wal::{read_epoch, replay, ReplayReport};
