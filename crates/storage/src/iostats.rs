//! I/O accounting counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O counters of a [`BufferPool`](crate::BufferPool).
///
/// "Physical" reads are buffer-pool misses: in this simulation substrate no
/// real disk exists, but the miss count is exactly the number of page reads
/// a disk-resident deployment of the same plan would issue, which is the
/// cost the paper's query experiments are sensitive to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IoStats {
    /// Page accesses issued by scans and point lookups.
    pub logical_reads: u64,
    /// Accesses that missed the buffer pool.
    pub physical_reads: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Page writes (record inserts, deletes, moves).
    pub page_writes: u64,
}

impl IoStats {
    /// Buffer-pool hits.
    pub fn hits(&self) -> u64 {
        self.logical_reads - self.physical_reads
    }

    /// Hit ratio in `[0, 1]`; 1.0 when nothing was read.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            self.hits() as f64 / self.logical_reads as f64
        }
    }

    /// Counter-wise difference `self - earlier`, for measuring one
    /// operation's I/O as a delta between snapshots.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            evictions: self.evictions - earlier.evictions,
            page_writes: self.page_writes - earlier.page_writes,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    /// Counter-wise accumulation — the merge step for per-thread deltas.
    fn add_assign(&mut self, rhs: IoStats) {
        self.logical_reads += rhs.logical_reads;
        self.physical_reads += rhs.physical_reads;
        self.evictions += rhs.evictions;
        self.page_writes += rhs.page_writes;
    }
}

/// Lock-free [`IoStats`] accumulator shared by concurrent readers.
///
/// Counters are monotonic and independent, so every update uses `Relaxed`
/// ordering: a [`AtomicIoStats::snapshot`] taken while no reader is
/// mid-access is exact, and delta measurement (snapshot before/after an
/// operation, [`IoStats::since`]) stays correct even when the operation
/// itself ran on many threads.
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    evictions: AtomicU64,
    page_writes: AtomicU64,
}

impl AtomicIoStats {
    /// Records one page access: a logical read, plus a physical read on a
    /// miss, plus any evictions the admission caused.
    pub fn record_access(&self, hit: bool, evicted: u64) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        if !hit {
            self.physical_reads.fetch_add(1, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Records one page write plus any evictions its admission caused.
    pub fn record_write(&self, evicted: u64) {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Folds a per-thread [`IoStats`] delta into the shared counters.
    pub fn add(&self, delta: &IoStats) {
        self.logical_reads
            .fetch_add(delta.logical_reads, Ordering::Relaxed);
        self.physical_reads
            .fetch_add(delta.physical_reads, Ordering::Relaxed);
        self.evictions.fetch_add(delta.evictions, Ordering::Relaxed);
        self.page_writes
            .fetch_add(delta.page_writes, Ordering::Relaxed);
    }

    /// A plain-value snapshot of the counters.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "logical={} physical={} evictions={} writes={} hit-ratio={:.3}",
            self.logical_reads,
            self.physical_reads,
            self.evictions,
            self.page_writes,
            self.hit_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_ratio() {
        let s = IoStats { logical_reads: 10, physical_reads: 3, evictions: 1, page_writes: 2 };
        assert_eq!(s.hits(), 7);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_ratio(), 1.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = IoStats { logical_reads: 10, physical_reads: 3, evictions: 1, page_writes: 2 };
        a += IoStats { logical_reads: 5, physical_reads: 2, evictions: 0, page_writes: 1 };
        assert_eq!(
            a,
            IoStats { logical_reads: 15, physical_reads: 5, evictions: 1, page_writes: 3 }
        );
    }

    #[test]
    fn atomic_stats_roundtrip() {
        let stats = AtomicIoStats::default();
        stats.record_access(false, 1);
        stats.record_access(true, 0);
        stats.record_write(0);
        stats.add(&IoStats { logical_reads: 8, physical_reads: 2, evictions: 0, page_writes: 3 });
        let s = stats.snapshot();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.page_writes, 4);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStats::default());
    }

    #[test]
    fn since_is_counterwise_difference() {
        let a = IoStats { logical_reads: 10, physical_reads: 3, evictions: 1, page_writes: 2 };
        let b = IoStats { logical_reads: 25, physical_reads: 9, evictions: 4, page_writes: 5 };
        let d = b.since(&a);
        assert_eq!(
            d,
            IoStats { logical_reads: 15, physical_reads: 6, evictions: 3, page_writes: 3 }
        );
    }
}
