//! I/O accounting counters.

/// Cumulative I/O counters of a [`BufferPool`](crate::BufferPool).
///
/// "Physical" reads are buffer-pool misses: in this simulation substrate no
/// real disk exists, but the miss count is exactly the number of page reads
/// a disk-resident deployment of the same plan would issue, which is the
/// cost the paper's query experiments are sensitive to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IoStats {
    /// Page accesses issued by scans and point lookups.
    pub logical_reads: u64,
    /// Accesses that missed the buffer pool.
    pub physical_reads: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Page writes (record inserts, deletes, moves).
    pub page_writes: u64,
}

impl IoStats {
    /// Buffer-pool hits.
    pub fn hits(&self) -> u64 {
        self.logical_reads - self.physical_reads
    }

    /// Hit ratio in `[0, 1]`; 1.0 when nothing was read.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            self.hits() as f64 / self.logical_reads as f64
        }
    }

    /// Counter-wise difference `self - earlier`, for measuring one
    /// operation's I/O as a delta between snapshots.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            evictions: self.evictions - earlier.evictions,
            page_writes: self.page_writes - earlier.page_writes,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "logical={} physical={} evictions={} writes={} hit-ratio={:.3}",
            self.logical_reads,
            self.physical_reads,
            self.evictions,
            self.page_writes,
            self.hit_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_ratio() {
        let s = IoStats { logical_reads: 10, physical_reads: 3, evictions: 1, page_writes: 2 };
        assert_eq!(s.hits(), 7);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_ratio(), 1.0);
    }

    #[test]
    fn since_is_counterwise_difference() {
        let a = IoStats { logical_reads: 10, physical_reads: 3, evictions: 1, page_writes: 2 };
        let b = IoStats { logical_reads: 25, physical_reads: 9, evictions: 4, page_writes: 5 };
        let d = b.since(&a);
        assert_eq!(
            d,
            IoStats { logical_reads: 15, physical_reads: 6, evictions: 3, page_writes: 3 }
        );
    }
}
