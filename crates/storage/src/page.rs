//! Slotted heap pages.

/// Page size in bytes. 8 KiB, matching the PostgreSQL default the paper's
/// prototype ran on.
pub const PAGE_SIZE: usize = 8192;

/// On-page header footprint (slot count + free-space pointer).
const HEADER: usize = 4;

/// On-page footprint of one slot directory entry (offset + length).
const SLOT: usize = 4;

/// Maximum serialized record size a single (empty) page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT;

/// Index of a record slot within a page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u16);

impl std::fmt::Display for SlotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    offset: u16,
    /// Record length; 0 marks a dead slot (records are never empty — they
    /// carry at least an id and an arity byte).
    len: u16,
}

/// An 8 KiB slotted page.
///
/// Record bytes grow from the front of the page; the slot directory is held
/// out-of-band for clarity but *accounted* as if it grew from the back, so
/// free-space arithmetic matches an on-disk slotted page exactly. Slot ids
/// are stable across deletion and [compaction](Page::compact) — record
/// references (`RecordId`) stay valid until the slot is explicitly deleted
/// and reused.
#[derive(Clone, Debug)]
pub struct Page {
    data: Vec<u8>,
    slots: Vec<Slot>,
    /// First free byte in `data`.
    free_start: usize,
    /// Bytes occupied by deleted records (reclaimable by compaction).
    dead_bytes: usize,
    dead_slots: usize,
    live: usize,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Self {
        Self {
            data: vec![0; PAGE_SIZE],
            slots: Vec::new(),
            free_start: 0,
            dead_bytes: 0,
            dead_slots: 0,
            live: 0,
        }
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Bytes reclaimable by [`Page::compact`].
    pub fn dead_bytes(&self) -> usize {
        self.dead_bytes
    }

    /// Contiguous free bytes available right now (before compaction),
    /// excluding space needed for a new slot entry.
    fn contiguous_free(&self) -> usize {
        PAGE_SIZE - HEADER - self.free_start - SLOT * self.slots.len()
    }

    /// Whether a record of `len` bytes fits, possibly after compaction.
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.dead_slots > 0 { 0 } else { SLOT };
        self.contiguous_free() + self.dead_bytes >= len + slot_cost
    }

    /// Inserts a record, compacting first if fragmentation requires it.
    /// Returns the slot id, or `None` if the record does not fit.
    ///
    /// # Panics
    /// Panics if `rec` is empty or longer than [`MAX_RECORD`] — the segment
    /// layer screens both before calling.
    pub fn insert(&mut self, rec: &[u8]) -> Option<SlotId> {
        assert!(!rec.is_empty(), "records are never empty");
        assert!(rec.len() <= MAX_RECORD, "record exceeds page capacity");
        if !self.fits(rec.len()) {
            return None;
        }
        let reuse = if self.dead_slots > 0 {
            self.slots.iter().position(|s| s.len == 0)
        } else {
            None
        };
        let slot_cost = if reuse.is_some() { 0 } else { SLOT };
        if self.contiguous_free() < rec.len() + slot_cost {
            self.compact();
        }
        let offset = self.free_start;
        self.data[offset..offset + rec.len()].copy_from_slice(rec);
        self.free_start += rec.len();
        let slot = Slot { offset: offset as u16, len: rec.len() as u16 };
        let id = match reuse {
            Some(i) => {
                self.slots[i] = slot;
                self.dead_slots -= 1;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.live += 1;
        Some(SlotId(id as u16))
    }

    /// Deletes the record in `slot`. Returns `false` if the slot was already
    /// dead or out of range.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        match self.slots.get_mut(slot.0 as usize) {
            Some(s) if s.len != 0 => {
                self.dead_bytes += s.len as usize;
                s.len = 0;
                self.dead_slots += 1;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Returns the record bytes in `slot`, if live.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        self.slots.get(slot.0 as usize).and_then(|s| {
            (s.len != 0).then(|| &self.data[s.offset as usize..(s.offset + s.len) as usize])
        })
    }

    /// Rewrites live records contiguously, reclaiming dead bytes. Slot ids
    /// are preserved.
    pub fn compact(&mut self) {
        if self.dead_bytes == 0 {
            return;
        }
        let mut new_data = vec![0; PAGE_SIZE];
        let mut cursor = 0usize;
        for s in &mut self.slots {
            if s.len == 0 {
                continue;
            }
            let len = s.len as usize;
            new_data[cursor..cursor + len]
                .copy_from_slice(&self.data[s.offset as usize..s.offset as usize + len]);
            s.offset = cursor as u16;
            cursor += len;
        }
        self.data = new_data;
        self.free_start = cursor;
        self.dead_bytes = 0;
    }

    /// Iterates `(slot, record-bytes)` over live records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len != 0)
            .map(|(i, s)| {
                (
                    SlotId(i as u16),
                    &self.data[s.offset as usize..(s.offset + s.len) as usize],
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut p = Page::new();
        let a = p.insert(b"aaaa").unwrap();
        let b = p.insert(b"bb").unwrap();
        assert_eq!(p.get(a), Some(&b"aaaa"[..]));
        assert_eq!(p.get(b), Some(&b"bb"[..]));
        assert_eq!(p.live_count(), 2);
        assert!(p.delete(a));
        assert!(!p.delete(a));
        assert_eq!(p.get(a), None);
        assert_eq!(p.live_count(), 1);
        assert_eq!(p.dead_bytes(), 4);
    }

    #[test]
    fn dead_slot_is_reused() {
        let mut p = Page::new();
        let a = p.insert(b"aaaa").unwrap();
        let _b = p.insert(b"bb").unwrap();
        p.delete(a);
        let c = p.insert(b"cccc").unwrap();
        assert_eq!(c, a, "dead slot id should be recycled");
        assert_eq!(p.get(c), Some(&b"cccc"[..]));
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8188 bytes of usable space, 1004 per record → 8 records.
        assert_eq!(n, 8);
        assert!(!p.fits(1000));
        assert!(p.fits(100));
    }

    #[test]
    fn compaction_reclaims_and_preserves_slots() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let slots: Vec<SlotId> = (0..8).map(|_| p.insert(&rec).unwrap()).collect();
        // Delete every other record; page now has 4000 dead bytes.
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        assert_eq!(p.dead_bytes(), 4000);
        // A 2000-byte record only fits after compaction (contiguous free is
        // 8192-4-8000-32 = 156 bytes).
        let big = vec![9u8; 2000];
        let slot = p.insert(&big).unwrap();
        assert_eq!(p.get(slot).unwrap(), &big[..]);
        // Survivors are intact and still addressed by their old slot ids.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn iter_yields_live_in_slot_order() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let got: Vec<(SlotId, Vec<u8>)> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = Page::new();
        let rec = vec![1u8; MAX_RECORD];
        assert!(p.insert(&rec).is_some());
        assert!(!p.fits(1));
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_record_panics() {
        Page::new().insert(&vec![0u8; MAX_RECORD + 1]);
    }
}
