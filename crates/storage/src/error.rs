//! Storage-layer errors.

use cind_model::EntityId;

use crate::segment::{RecordId, SegmentId};

/// Errors produced by the storage engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// A serialized record failed to decode; the payload names the field.
    CorruptRecord(&'static str),
    /// A record exceeds what an empty page can hold.
    RecordTooLarge {
        /// Serialized record size.
        len: usize,
        /// Maximum a page can hold.
        max: usize,
    },
    /// The referenced segment does not exist (or was dropped).
    NoSuchSegment(SegmentId),
    /// The referenced record slot is empty or out of range.
    NoSuchRecord(SegmentId, RecordId),
    /// The referenced entity is not in the table's locator index.
    NoSuchEntity(EntityId),
    /// An entity with this id is already stored.
    DuplicateEntity(EntityId),
    /// A write-ahead-log append failed. The failure is sticky: the mutation
    /// that triggered it has already applied in memory, so the table keeps
    /// reporting it on every subsequent logged mutation until the WAL is
    /// re-attached — durability is lost from the failed entry onward and
    /// the caller must take a fresh snapshot.
    WalAppend(std::io::ErrorKind),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::CorruptRecord(what) => write!(f, "corrupt record: {what}"),
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::NoSuchSegment(s) => write!(f, "no such segment {s}"),
            StorageError::NoSuchRecord(s, r) => write!(f, "no record {r} in segment {s}"),
            StorageError::NoSuchEntity(e) => write!(f, "entity {e} not stored"),
            StorageError::DuplicateEntity(e) => write!(f, "entity {e} already stored"),
            StorageError::WalAppend(kind) => {
                write!(f, "WAL append failed ({kind}); durability lost, re-attach the log")
            }
        }
    }
}

impl std::error::Error for StorageError {}
