//! LEB128 variable-length unsigned integers.
//!
//! The record format stores attribute ids, counts, and string lengths as
//! varints: sparse entities mostly carry small ids, so the common case is a
//! single byte.

/// Maximum encoded length of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`. Returns the encoded length.
pub fn encode(mut v: u64, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out.len() - start
}

/// Decodes a LEB128 varint from the front of `buf`.
///
/// Returns `(value, bytes_consumed)`, or `None` if the buffer ends inside a
/// varint or the encoding overflows 64 bits.
pub fn decode(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &byte) in buf.iter().enumerate().take(MAX_LEN) {
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute the low bit of the high part.
        if i == MAX_LEN - 1 && byte > 1 {
            return None;
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        let n = encode(v, &mut buf);
        assert_eq!(n, buf.len());
        let (got, used) = decode(&buf).unwrap();
        assert_eq!(got, v);
        assert_eq!(used, n);
    }

    #[test]
    fn roundtrips_edge_values() {
        for v in [0, 1, 127, 128, 255, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn encoded_lengths() {
        let mut buf = Vec::new();
        assert_eq!(encode(0, &mut buf), 1);
        buf.clear();
        assert_eq!(encode(127, &mut buf), 1);
        buf.clear();
        assert_eq!(encode(128, &mut buf), 2);
        buf.clear();
        assert_eq!(encode(u64::MAX, &mut buf), 10);
    }

    #[test]
    fn decode_truncated_is_none() {
        let mut buf = Vec::new();
        encode(16384, &mut buf);
        assert!(decode(&buf[..1]).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn decode_overlong_is_none() {
        // 11 continuation bytes can never terminate within MAX_LEN.
        let buf = [0x80u8; 11];
        assert!(decode(&buf).is_none());
        // A 10th byte with more than the low bit set overflows u64.
        let mut buf = [0x80u8; 10];
        buf[9] = 0x02;
        assert!(decode(&buf).is_none());
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        buf.extend_from_slice(&[0xde, 0xad]);
        let (v, used) = decode(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }
}
