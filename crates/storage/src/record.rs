//! Self-describing entity records (interpreted attribute storage format).
//!
//! A record stores only the attributes an entity instantiates:
//!
//! ```text
//! entity_id : varint
//! arity     : varint
//! attrs     : arity × ( attr_id: varint, tag: u8, payload )
//! ```
//!
//! Payloads: `Bool` = 1 byte, `Int`/`Float` = 8 bytes little-endian,
//! `Text` = varint length + UTF-8 bytes. Attributes are written in ascending
//! id order (entities keep them sorted), which decodes back into a valid
//! [`Entity`] without re-sorting.

use crate::{varint, StorageError};
use cind_model::{AttrId, Entity, EntityId, Value};

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;

/// Serializes `entity` into a fresh byte vector.
pub fn encode_entity(entity: &Entity) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entity.arity() * 12);
    varint::encode(entity.id().0, &mut out);
    varint::encode(entity.arity() as u64, &mut out);
    for (attr, value) in entity.attrs() {
        varint::encode(attr.index() as u64, &mut out);
        match value {
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                varint::encode(s.len() as u64, &mut out);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Deserializes an entity from `buf`.
///
/// # Errors
/// Returns [`StorageError::CorruptRecord`] on truncation, an unknown value
/// tag, invalid UTF-8, or trailing garbage.
pub fn decode_entity(buf: &[u8]) -> Result<Entity, StorageError> {
    let corrupt = |what: &'static str| StorageError::CorruptRecord(what);
    let mut pos = 0usize;
    let read_varint = |buf: &[u8], pos: &mut usize| -> Result<u64, StorageError> {
        let (v, n) = varint::decode(&buf[*pos..]).ok_or(corrupt("varint"))?;
        *pos += n;
        Ok(v)
    };

    let id = read_varint(buf, &mut pos)?;
    let arity = read_varint(buf, &mut pos)? as usize;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let attr = read_varint(buf, &mut pos)?;
        let attr = AttrId(u32::try_from(attr).map_err(|_| corrupt("attr id overflow"))?);
        let tag = *buf.get(pos).ok_or(corrupt("missing tag"))?;
        pos += 1;
        let value = match tag {
            TAG_BOOL => {
                let b = *buf.get(pos).ok_or(corrupt("bool payload"))?;
                pos += 1;
                Value::Bool(b != 0)
            }
            TAG_INT => {
                let bytes = buf.get(pos..pos + 8).ok_or(corrupt("int payload"))?;
                pos += 8;
                let bytes = bytes.try_into().map_err(|_| corrupt("int payload"))?;
                Value::Int(i64::from_le_bytes(bytes))
            }
            TAG_FLOAT => {
                let bytes = buf.get(pos..pos + 8).ok_or(corrupt("float payload"))?;
                pos += 8;
                let bytes = bytes.try_into().map_err(|_| corrupt("float payload"))?;
                Value::Float(f64::from_le_bytes(bytes))
            }
            TAG_TEXT => {
                let len = read_varint(buf, &mut pos)? as usize;
                let bytes = buf.get(pos..pos + len).ok_or(corrupt("text payload"))?;
                pos += len;
                Value::Text(
                    std::str::from_utf8(bytes)
                        .map_err(|_| corrupt("text utf8"))?
                        .to_owned(),
                )
            }
            _ => return Err(corrupt("unknown tag")),
        };
        attrs.push((attr, value));
    }
    if pos != buf.len() {
        return Err(corrupt("trailing bytes"));
    }
    Entity::new(EntityId(id), attrs).map_err(|_| corrupt("duplicate attribute"))
}

/// Decodes only the entity id from the front of a record — cheap peeking for
/// locator rebuilds and scans that filter by id.
pub fn decode_entity_id(buf: &[u8]) -> Result<EntityId, StorageError> {
    varint::decode(buf)
        .map(|(v, _)| EntityId(v))
        .ok_or(StorageError::CorruptRecord("varint"))
}

/// Decodes only the record header `(entity id, arity)` — cheap size
/// accounting without materialising values.
pub fn decode_header(buf: &[u8]) -> Result<(EntityId, usize), StorageError> {
    let (id, n) = varint::decode(buf).ok_or(StorageError::CorruptRecord("varint"))?;
    let (arity, _) = varint::decode(&buf[n..]).ok_or(StorageError::CorruptRecord("varint"))?;
    Ok((EntityId(id), arity as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entity {
        Entity::new(
            EntityId(300),
            [
                (AttrId(0), Value::Text("Canon PowerShot S120".into())),
                (AttrId(3), Value::Float(12.1)),
                (AttrId(7), Value::Int(198)),
                (AttrId(90), Value::Bool(true)),
                (AttrId(128), Value::Text(String::new())),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let e = sample();
        let bytes = encode_entity(&e);
        let back = decode_entity(&bytes).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn roundtrip_empty_entity() {
        let e = Entity::empty(EntityId(0));
        let bytes = encode_entity(&e);
        assert_eq!(bytes, vec![0, 0]);
        assert_eq!(decode_entity(&bytes).unwrap(), e);
    }

    #[test]
    fn peek_entity_id() {
        let bytes = encode_entity(&sample());
        assert_eq!(decode_entity_id(&bytes).unwrap(), EntityId(300));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_entity(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_entity(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode_entity(&sample());
        bytes.push(0);
        assert!(matches!(
            decode_entity(&bytes),
            Err(StorageError::CorruptRecord("trailing bytes"))
        ));
    }

    #[test]
    fn unknown_tag_is_detected() {
        // entity id 1, arity 1, attr 0, bogus tag 9
        let bytes = vec![1, 1, 0, 9];
        assert!(matches!(
            decode_entity(&bytes),
            Err(StorageError::CorruptRecord("unknown tag"))
        ));
    }

    #[test]
    fn invalid_utf8_is_detected() {
        // entity id 1, arity 1, attr 0, text tag, len 1, invalid byte
        let bytes = vec![1, 1, 0, TAG_TEXT, 1, 0xff];
        assert!(matches!(
            decode_entity(&bytes),
            Err(StorageError::CorruptRecord("text utf8"))
        ));
    }
}
