//! Accounting buffer pool: sharded LRU, safe for concurrent readers.

use crate::iostats::AtomicIoStats;
use crate::segment::SegmentId;
use crate::IoStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Globally unique page address: a segment and a page index within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageKey {
    /// The owning segment.
    pub segment: SegmentId,
    /// Page index within the segment.
    pub page: u32,
}

/// A simulated I/O cost model: charges virtual nanoseconds per buffer-pool
/// miss and per page write. Installed by the deterministic simulation
/// harness so experiments advance a *virtual* clock instead of reading
/// wall time (rule A005); production pools carry no model and pay nothing.
///
/// Implementations must be pure functions of the key (plus their own
/// immutable state): the pool may invoke them from concurrent scan threads
/// in any order, and determinism of the accumulated total relies on the
/// charge per access being order-independent.
pub trait IoModel: Send + Sync {
    /// Virtual nanoseconds charged when `key` misses the pool.
    fn miss_ns(&self, key: PageKey) -> u64;
    /// Virtual nanoseconds charged when `key` is written.
    fn write_ns(&self, key: PageKey) -> u64;
}

/// An LRU page cache that classifies every access as hit or miss.
///
/// Page *contents* always live in their segment (this is a simulation
/// substrate — see [`IoStats`]); the pool tracks only residency, so a scan
/// over a table larger than the pool produces the same miss pattern a real
/// buffer manager would, at zero copy cost. Each shard's LRU list is an
/// intrusive doubly linked list over a slab, giving O(1) touch/evict.
///
/// **Concurrency.** The pool is sharded: a page key hashes to one of
/// `shard_count()` independently locked LRU shards, so concurrent readers
/// (parallel segment scans) contend only when they touch the same shard.
/// The [`IoStats`] counters are lock-free atomics updated outside the shard
/// locks. [`BufferPool::new`] builds a single-shard pool whose hit/miss/
/// eviction sequence is exactly the classic global LRU (what the
/// reference-LRU property tests check); [`BufferPool::with_shards`] trades
/// that global recency order for parallelism by giving each shard
/// `capacity / shards` frames.
pub struct BufferPool {
    shards: Box<[Mutex<Shard>]>,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: usize,
    stats: AtomicIoStats,
    /// Optional simulated I/O cost model; charged *outside* the shard
    /// locks (the same discipline as the atomic counters).
    io_model: Option<Arc<dyn IoModel>>,
    /// Total virtual nanoseconds charged by `io_model` so far.
    sim_ns: AtomicU64,
}

struct Shard {
    capacity: usize,
    map: HashMap<PageKey, usize>, // key -> slab index
    slab: Vec<Node>,
    head: usize, // most recently used; usize::MAX when empty
    tail: usize, // least recently used
    free: Vec<usize>,
}

struct Node {
    key: PageKey,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// Creates a single-shard pool that can hold `capacity` pages — exact
    /// global LRU semantics. A capacity of 0 disables caching (every
    /// access is a miss).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// Creates a pool of `capacity` total pages spread over `shards`
    /// independently locked LRU shards (rounded up to a power of two).
    /// More shards reduce lock contention under parallel scans; eviction
    /// decisions become per-shard rather than globally recency-ordered.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let base = capacity / n;
        let rem = capacity % n;
        let shards: Vec<Mutex<Shard>> = (0..n)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: base + usize::from(i < rem),
                    map: HashMap::new(),
                    slab: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    free: Vec::new(),
                })
            })
            .collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: n - 1,
            stats: AtomicIoStats::default(),
            io_model: None,
            sim_ns: AtomicU64::new(0),
        }
    }

    /// Installs (or clears) the simulated I/O cost model. Takes `&mut
    /// self` — the model is fixed while readers run, so accesses never
    /// race a model swap.
    pub fn set_io_model(&mut self, model: Option<Arc<dyn IoModel>>) {
        self.io_model = model;
    }

    /// Total virtual nanoseconds charged by the installed [`IoModel`]
    /// (0 without one).
    pub fn sim_ns(&self) -> u64 {
        self.sim_ns.load(Ordering::Relaxed)
    }

    /// Number of LRU shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: PageKey) -> &Mutex<Shard> {
        // Cheap multiplicative hash over (segment, page); the high bits
        // carry the mixing, so fold them down before masking.
        let h = (u64::from(key.segment.0))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(key.page)).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let idx = ((h ^ (h >> 32)) as usize) & self.mask;
        &self.shards[idx]
    }

    /// Records a read access to `key`. Returns `true` on a hit.
    pub fn access(&self, key: PageKey) -> bool {
        self.access_tracked(key).0
    }

    /// Records a read access to `key`, returning `(hit, evictions)` so the
    /// caller can keep a *local* [`IoStats`] delta for this scan. The
    /// pool's global counters are updated either way; the return value lets
    /// concurrent sessions attribute each access to exactly the query that
    /// issued it instead of diffing the shared counters (which would
    /// double-count every other session's traffic in the window).
    pub fn access_tracked(&self, key: PageKey) -> (bool, u64) {
        let (hit, evicted) = {
            let mut g = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
            if g.capacity == 0 {
                (false, 0)
            } else if let Some(&idx) = g.map.get(&key) {
                g.unlink(idx);
                g.push_front(idx);
                (true, 0)
            } else {
                let evicted = g.admit(key);
                (false, evicted)
            }
        };
        self.stats.record_access(hit, evicted);
        if !hit {
            if let Some(model) = &self.io_model {
                self.sim_ns.fetch_add(model.miss_ns(key), Ordering::Relaxed);
            }
        }
        (hit, evicted)
    }

    /// Records a write to `key` (also makes the page resident).
    pub fn write(&self, key: PageKey) {
        let evicted = {
            let mut g = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
            if g.capacity == 0 {
                0
            } else if let Some(&idx) = g.map.get(&key) {
                g.unlink(idx);
                g.push_front(idx);
                0
            } else {
                g.admit(key)
            }
        };
        self.stats.record_write(evicted);
        if let Some(model) = &self.io_model {
            self.sim_ns.fetch_add(model.write_ns(key), Ordering::Relaxed);
        }
    }

    /// Drops all pages of `segment` from the pool (segment dropped/split).
    pub fn invalidate_segment(&self, segment: SegmentId) {
        for shard in self.shards.iter() {
            let mut g = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let victims: Vec<usize> = g
                .map
                .iter()
                .filter(|(k, _)| k.segment == segment)
                .map(|(_, &i)| i)
                .collect();
            for idx in victims {
                g.remove(idx);
            }
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Resets counters to zero (residency is kept).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Merges an externally accumulated delta into the counters (used by
    /// callers that account I/O in per-thread deltas and fold them in on
    /// completion).
    pub fn merge_stats(&self, delta: &IoStats) {
        self.stats.add(delta);
    }

    /// Number of currently resident pages across all shards.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Cross-checks every shard's LRU structure — capacity bound, map/list
    /// agreement, doubly-linked-list coherence, free-list integrity, and
    /// slab accounting — returning a diagnostic per violation. Takes each
    /// shard lock in turn (never two at once, per the module's lock
    /// discipline), so it is safe to call on a live pool.
    pub fn validate(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let g = shard.lock().unwrap_or_else(PoisonError::into_inner);
            g.validate(si, &mut out);
        }
        out
    }
}

impl Shard {
    /// Admits `key`, evicting the shard-LRU page if full. Returns the
    /// number of evictions (0 or 1).
    fn admit(&mut self, key: PageKey) -> u64 {
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            self.remove(tail);
            evicted = 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node { key, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slab.push(Node { key, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn remove(&mut self, idx: usize) {
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Appends a diagnostic for every violated shard invariant to `out`.
    /// Written defensively: a corrupted shard (dangling index, cycle) must
    /// produce a report, not a panic or an endless walk.
    fn validate(&self, si: usize, out: &mut Vec<String>) {
        let mut v = |detail: String| out.push(format!("[buffer-pool] shard {si}: {detail}"));
        if self.map.len() > self.capacity {
            v(format!(
                "{} resident pages exceed capacity {}",
                self.map.len(),
                self.capacity
            ));
        }
        if self.map.len() + self.free.len() != self.slab.len() {
            v(format!(
                "slab accounting: {} mapped + {} free != {} slab nodes",
                self.map.len(),
                self.free.len(),
                self.slab.len()
            ));
        }
        let mut on_free = vec![false; self.slab.len()];
        for &idx in &self.free {
            if idx >= self.slab.len() {
                v(format!("free-list index {idx} out of range"));
            } else if std::mem::replace(&mut on_free[idx], true) {
                v(format!("slab index {idx} appears twice on the free list"));
            }
        }
        for (&key, &idx) in &self.map {
            if idx >= self.slab.len() {
                v(format!("page {key:?} maps to out-of-range slab index {idx}"));
                continue;
            }
            if on_free[idx] {
                v(format!("page {key:?} maps to freed slab index {idx}"));
            }
            if self.slab[idx].key != key {
                v(format!(
                    "page {key:?} maps to slab index {idx} holding {:?}",
                    self.slab[idx].key
                ));
            }
        }
        // Walk the LRU list from the head, bounding the walk by the slab
        // size so a cycle terminates with a diagnostic.
        if self.head != NIL && self.head < self.slab.len() && self.slab[self.head].prev != NIL
        {
            v(format!("head {} has a predecessor", self.head));
        }
        let mut idx = self.head;
        let mut prev = NIL;
        let mut walked = 0usize;
        while idx != NIL {
            if idx >= self.slab.len() {
                v(format!("list reaches out-of-range index {idx}"));
                return;
            }
            if walked > self.slab.len() {
                v("LRU list contains a cycle".to_owned());
                return;
            }
            if self.slab[idx].prev != prev {
                v(format!(
                    "index {idx}: prev pointer {} but reached from {prev}",
                    self.slab[idx].prev
                ));
            }
            if self.map.get(&self.slab[idx].key).is_none_or(|&m| m != idx) {
                v(format!(
                    "listed page {:?} at index {idx} not mapped there",
                    self.slab[idx].key
                ));
            }
            walked += 1;
            prev = idx;
            idx = self.slab[idx].next;
        }
        if walked != self.map.len() {
            v(format!(
                "LRU list holds {walked} nodes, map holds {}",
                self.map.len()
            ));
        }
        if self.tail != prev {
            v(format!("tail is {} but the list ends at {prev}", self.tail));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32) -> PageKey {
        PageKey { segment: SegmentId(0), page: p }
    }

    #[test]
    fn misses_then_hits() {
        let pool = BufferPool::new(4);
        assert!(!pool.access(key(1)));
        assert!(!pool.access(key(2)));
        assert!(pool.access(key(1)));
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(2);
        pool.access(key(1));
        pool.access(key(2));
        pool.access(key(1)); // 2 is now LRU
        pool.access(key(3)); // evicts 2
        assert!(pool.access(key(1)), "1 should still be resident");
        assert!(!pool.access(key(2)), "2 should have been evicted");
        assert_eq!(pool.stats().evictions, 2); // 3 evicted 2, then 2 evicted 3
    }

    #[test]
    fn zero_capacity_always_misses() {
        let pool = BufferPool::new(0);
        assert!(!pool.access(key(1)));
        assert!(!pool.access(key(1)));
        pool.write(key(1));
        assert_eq!(pool.resident(), 0);
        let s = pool.stats();
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.page_writes, 1);
    }

    #[test]
    fn write_makes_resident() {
        let pool = BufferPool::new(4);
        pool.write(key(9));
        assert!(pool.access(key(9)));
    }

    #[test]
    fn invalidate_segment_drops_only_that_segment() {
        let pool = BufferPool::new(8);
        pool.access(PageKey { segment: SegmentId(1), page: 0 });
        pool.access(PageKey { segment: SegmentId(1), page: 1 });
        pool.access(PageKey { segment: SegmentId(2), page: 0 });
        pool.invalidate_segment(SegmentId(1));
        assert_eq!(pool.resident(), 1);
        assert!(pool.access(PageKey { segment: SegmentId(2), page: 0 }));
        assert!(!pool.access(PageKey { segment: SegmentId(1), page: 0 }));
    }

    #[test]
    fn eviction_pressure_keeps_capacity() {
        let pool = BufferPool::new(3);
        for p in 0..100 {
            pool.access(key(p));
        }
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.stats().evictions, 97);
        // The three most recent pages are resident.
        assert!(pool.access(key(99)));
        assert!(pool.access(key(98)));
        assert!(pool.access(key(97)));
    }

    #[test]
    fn validate_accepts_healthy_pool() {
        // Exercise every structural transition: fill, hit, evict, write,
        // invalidate — the free list, LRU chain, and map must stay coherent.
        let pool = BufferPool::with_shards(8, 4);
        for p in 0..32 {
            pool.access(key(p));
        }
        for p in 0..8 {
            pool.access(key(p));
            pool.write(PageKey { segment: SegmentId(1), page: p });
        }
        pool.invalidate_segment(SegmentId(1));
        assert!(pool.validate().is_empty(), "{:?}", pool.validate());
        // Empty and zero-capacity pools are trivially consistent too.
        assert!(BufferPool::new(4).validate().is_empty());
        assert!(BufferPool::new(0).validate().is_empty());
    }

    /// Seeds one corruption per shard invariant directly into the private
    /// LRU structures and asserts `validate` names each precisely — the
    /// regression net that keeps the validator itself honest.
    #[test]
    fn validate_reports_each_seeded_shard_corruption() {
        let corrupted = |sabotage: fn(&mut Shard), needle: &str| {
            let pool = BufferPool::new(4);
            for p in 0..3 {
                pool.access(key(p));
            }
            sabotage(&mut pool.shards[0].lock().unwrap_or_else(PoisonError::into_inner));
            let report = pool.validate();
            assert!(
                report.iter().any(|d| d.contains(needle)),
                "expected a diagnostic containing {needle:?}, got {report:?}"
            );
        };

        // Map points at a slab index past the slab.
        corrupted(
            |s| {
                s.map.insert(key(99), 42);
            },
            "maps to out-of-range slab index 42",
        );
        // Map points at a node holding a different key.
        corrupted(
            |s| {
                let &idx = s.map.get(&key(1)).expect("resident");
                s.map.insert(key(77), idx);
            },
            "maps to slab index",
        );
        // A live node is also on the free list.
        corrupted(
            |s| {
                let &idx = s.map.get(&key(0)).expect("resident");
                s.free.push(idx);
            },
            "maps to freed slab index",
        );
        // Duplicate free-list entry (and slab accounting drift).
        corrupted(
            |s| {
                s.map.remove(&key(2));
                let idx = s.slab.len() - 1;
                s.free.push(idx);
                s.free.push(idx);
            },
            "appears twice on the free list",
        );
        // Free-list entry past the slab.
        corrupted(
            |s| {
                s.free.push(9);
            },
            "free-list index 9 out of range",
        );
        // LRU chain broken: head's prev set, making the list inconsistent.
        corrupted(
            |s| {
                s.slab[s.head].prev = 1;
            },
            "has a predecessor",
        );
        // LRU chain cycle: most-recent node's next points back at the head.
        corrupted(
            |s| {
                let head = s.head;
                let mid = s.slab[head].next;
                s.slab[mid].next = head;
            },
            "prev pointer",
        );
        // Tail does not terminate the chain.
        corrupted(
            |s| {
                s.tail = s.head;
            },
            "but the list ends at",
        );
        // A mapped page never appears on the LRU walk.
        corrupted(
            |s| {
                let head = s.head;
                s.slab[head].next = NIL;
                s.tail = head;
            },
            "LRU list holds 1 nodes, map holds 3",
        );
        // Capacity overrun.
        corrupted(
            |s| {
                s.capacity = 2;
            },
            "3 resident pages exceed capacity 2",
        );
    }

    #[test]
    fn io_model_charges_misses_and_writes_only() {
        struct Flat;
        impl IoModel for Flat {
            fn miss_ns(&self, _: PageKey) -> u64 {
                100
            }
            fn write_ns(&self, _: PageKey) -> u64 {
                7
            }
        }
        let mut pool = BufferPool::new(4);
        pool.set_io_model(Some(Arc::new(Flat)));
        pool.access(key(1)); // miss: +100
        pool.access(key(1)); // hit: free
        pool.write(key(2)); // +7
        assert_eq!(pool.sim_ns(), 107);
        pool.set_io_model(None);
        pool.access(key(3));
        assert_eq!(pool.sim_ns(), 107);
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let pool = BufferPool::new(4);
        pool.access(key(5));
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
        assert!(pool.access(key(5)));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(BufferPool::with_shards(64, 1).shard_count(), 1);
        assert_eq!(BufferPool::with_shards(64, 3).shard_count(), 4);
        assert_eq!(BufferPool::with_shards(64, 8).shard_count(), 8);
        assert_eq!(BufferPool::new(64).shard_count(), 1);
    }

    #[test]
    fn sharded_pool_respects_total_capacity() {
        let pool = BufferPool::with_shards(16, 4);
        for p in 0..1000 {
            pool.access(key(p));
        }
        assert!(pool.resident() <= 16);
        let s = pool.stats();
        assert_eq!(s.logical_reads, 1000);
        assert_eq!(s.physical_reads + s.hits(), s.logical_reads);
    }

    #[test]
    fn sharded_pool_still_caches_hot_pages() {
        let pool = BufferPool::with_shards(32, 4);
        for round in 0..10 {
            for p in 0..8 {
                let hit = pool.access(key(p));
                if round > 0 {
                    assert!(hit, "page {p} should stay resident in round {round}");
                }
            }
        }
        assert_eq!(pool.stats().physical_reads, 8);
    }

    #[test]
    fn sharded_invalidate_reaches_every_shard() {
        // Capacity far above the working set: per-shard capacity is
        // capacity/shards, and the hash can skew keys toward one shard,
        // so a tight pool would evict and blur the resident count.
        let pool = BufferPool::with_shards(512, 8);
        for p in 0..32 {
            pool.access(PageKey { segment: SegmentId(7), page: p });
            pool.access(PageKey { segment: SegmentId(8), page: p });
        }
        pool.invalidate_segment(SegmentId(7));
        assert_eq!(pool.resident(), 32);
        for p in 0..32 {
            assert!(!pool.access(PageKey { segment: SegmentId(7), page: p }));
        }
    }

    #[test]
    fn merge_stats_folds_external_deltas() {
        let pool = BufferPool::new(4);
        pool.access(key(1));
        pool.merge_stats(&IoStats {
            logical_reads: 10,
            physical_reads: 4,
            evictions: 1,
            page_writes: 2,
        });
        let s = pool.stats();
        assert_eq!(s.logical_reads, 11);
        assert_eq!(s.physical_reads, 5);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.page_writes, 2);
    }

    #[test]
    fn concurrent_access_is_safe_and_balanced() {
        let pool = BufferPool::with_shards(64, 8);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        pool.access(PageKey {
                            segment: SegmentId(t % 4),
                            page: i % 100,
                        });
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.logical_reads, 8000);
        assert_eq!(s.physical_reads + s.hits(), 8000);
        assert!(pool.resident() <= 64);
    }
}
