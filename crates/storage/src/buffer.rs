//! Accounting buffer pool (LRU).

use crate::segment::SegmentId;
use crate::IoStats;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Globally unique page address: a segment and a page index within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageKey {
    /// The owning segment.
    pub segment: SegmentId,
    /// Page index within the segment.
    pub page: u32,
}

/// An LRU page cache that classifies every access as hit or miss.
///
/// Page *contents* always live in their segment (this is a simulation
/// substrate — see [`IoStats`]); the pool tracks only residency, so a scan
/// over a table larger than the pool produces the same miss pattern a real
/// buffer manager would, at zero copy cost. The LRU list is an intrusive
/// doubly linked list over a slab, giving O(1) touch/evict.
///
/// Interior mutability (`parking_lot::Mutex`) lets read paths take `&self`.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

struct Inner {
    capacity: usize,
    map: HashMap<PageKey, usize>, // key -> slab index
    slab: Vec<Node>,
    head: usize, // most recently used; usize::MAX when empty
    tail: usize, // least recently used
    free: Vec<usize>,
    stats: IoStats,
}

struct Node {
    key: PageKey,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// Creates a pool that can hold `capacity` pages. A capacity of 0
    /// disables caching (every access is a miss).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity,
                map: HashMap::new(),
                slab: Vec::new(),
                head: NIL,
                tail: NIL,
                free: Vec::new(),
                stats: IoStats::default(),
            }),
        }
    }

    /// Records a read access to `key`. Returns `true` on a hit.
    pub fn access(&self, key: PageKey) -> bool {
        let mut g = self.inner.lock();
        g.stats.logical_reads += 1;
        if g.capacity == 0 {
            g.stats.physical_reads += 1;
            return false;
        }
        if let Some(&idx) = g.map.get(&key) {
            g.unlink(idx);
            g.push_front(idx);
            true
        } else {
            g.stats.physical_reads += 1;
            g.admit(key);
            false
        }
    }

    /// Records a write to `key` (also makes the page resident).
    pub fn write(&self, key: PageKey) {
        let mut g = self.inner.lock();
        g.stats.page_writes += 1;
        if g.capacity == 0 {
            return;
        }
        if let Some(&idx) = g.map.get(&key) {
            g.unlink(idx);
            g.push_front(idx);
        } else {
            g.admit(key);
        }
    }

    /// Drops all pages of `segment` from the pool (segment dropped/split).
    pub fn invalidate_segment(&self, segment: SegmentId) {
        let mut g = self.inner.lock();
        let victims: Vec<usize> = g
            .map
            .iter()
            .filter(|(k, _)| k.segment == segment)
            .map(|(_, &i)| i)
            .collect();
        for idx in victims {
            g.remove(idx);
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Resets counters to zero (residency is kept).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats::default();
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }
}

impl Inner {
    fn admit(&mut self, key: PageKey) {
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            self.remove(tail);
            self.stats.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node { key, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slab.push(Node { key, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn remove(&mut self, idx: usize) {
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32) -> PageKey {
        PageKey { segment: SegmentId(0), page: p }
    }

    #[test]
    fn misses_then_hits() {
        let pool = BufferPool::new(4);
        assert!(!pool.access(key(1)));
        assert!(!pool.access(key(2)));
        assert!(pool.access(key(1)));
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(2);
        pool.access(key(1));
        pool.access(key(2));
        pool.access(key(1)); // 2 is now LRU
        pool.access(key(3)); // evicts 2
        assert!(pool.access(key(1)), "1 should still be resident");
        assert!(!pool.access(key(2)), "2 should have been evicted");
        assert_eq!(pool.stats().evictions, 2); // 3 evicted 2, then 2 evicted 3
    }

    #[test]
    fn zero_capacity_always_misses() {
        let pool = BufferPool::new(0);
        assert!(!pool.access(key(1)));
        assert!(!pool.access(key(1)));
        pool.write(key(1));
        assert_eq!(pool.resident(), 0);
        let s = pool.stats();
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.page_writes, 1);
    }

    #[test]
    fn write_makes_resident() {
        let pool = BufferPool::new(4);
        pool.write(key(9));
        assert!(pool.access(key(9)));
    }

    #[test]
    fn invalidate_segment_drops_only_that_segment() {
        let pool = BufferPool::new(8);
        pool.access(PageKey { segment: SegmentId(1), page: 0 });
        pool.access(PageKey { segment: SegmentId(1), page: 1 });
        pool.access(PageKey { segment: SegmentId(2), page: 0 });
        pool.invalidate_segment(SegmentId(1));
        assert_eq!(pool.resident(), 1);
        assert!(pool.access(PageKey { segment: SegmentId(2), page: 0 }));
        assert!(!pool.access(PageKey { segment: SegmentId(1), page: 0 }));
    }

    #[test]
    fn eviction_pressure_keeps_capacity() {
        let pool = BufferPool::new(3);
        for p in 0..100 {
            pool.access(key(p));
        }
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.stats().evictions, 97);
        // The three most recent pages are resident.
        assert!(pool.access(key(99)));
        assert!(pool.access(key(98)));
        assert!(pool.access(key(97)));
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let pool = BufferPool::new(4);
        pool.access(key(5));
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
        assert!(pool.access(key(5)));
    }
}
