//! Accounting buffer pool: sharded LRU, safe for concurrent readers.

use crate::iostats::AtomicIoStats;
use crate::segment::SegmentId;
use crate::IoStats;
use std::collections::HashMap;
use std::sync::Mutex;

/// Globally unique page address: a segment and a page index within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageKey {
    /// The owning segment.
    pub segment: SegmentId,
    /// Page index within the segment.
    pub page: u32,
}

/// An LRU page cache that classifies every access as hit or miss.
///
/// Page *contents* always live in their segment (this is a simulation
/// substrate — see [`IoStats`]); the pool tracks only residency, so a scan
/// over a table larger than the pool produces the same miss pattern a real
/// buffer manager would, at zero copy cost. Each shard's LRU list is an
/// intrusive doubly linked list over a slab, giving O(1) touch/evict.
///
/// **Concurrency.** The pool is sharded: a page key hashes to one of
/// `shard_count()` independently locked LRU shards, so concurrent readers
/// (parallel segment scans) contend only when they touch the same shard.
/// The [`IoStats`] counters are lock-free atomics updated outside the shard
/// locks. [`BufferPool::new`] builds a single-shard pool whose hit/miss/
/// eviction sequence is exactly the classic global LRU (what the
/// reference-LRU property tests check); [`BufferPool::with_shards`] trades
/// that global recency order for parallelism by giving each shard
/// `capacity / shards` frames.
pub struct BufferPool {
    shards: Box<[Mutex<Shard>]>,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: usize,
    stats: AtomicIoStats,
}

struct Shard {
    capacity: usize,
    map: HashMap<PageKey, usize>, // key -> slab index
    slab: Vec<Node>,
    head: usize, // most recently used; usize::MAX when empty
    tail: usize, // least recently used
    free: Vec<usize>,
}

struct Node {
    key: PageKey,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// Creates a single-shard pool that can hold `capacity` pages — exact
    /// global LRU semantics. A capacity of 0 disables caching (every
    /// access is a miss).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// Creates a pool of `capacity` total pages spread over `shards`
    /// independently locked LRU shards (rounded up to a power of two).
    /// More shards reduce lock contention under parallel scans; eviction
    /// decisions become per-shard rather than globally recency-ordered.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let base = capacity / n;
        let rem = capacity % n;
        let shards: Vec<Mutex<Shard>> = (0..n)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: base + usize::from(i < rem),
                    map: HashMap::new(),
                    slab: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    free: Vec::new(),
                })
            })
            .collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: n - 1,
            stats: AtomicIoStats::default(),
        }
    }

    /// Number of LRU shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: PageKey) -> &Mutex<Shard> {
        // Cheap multiplicative hash over (segment, page); the high bits
        // carry the mixing, so fold them down before masking.
        let h = (u64::from(key.segment.0))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(key.page)).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let idx = ((h ^ (h >> 32)) as usize) & self.mask;
        &self.shards[idx]
    }

    /// Records a read access to `key`. Returns `true` on a hit.
    pub fn access(&self, key: PageKey) -> bool {
        let (hit, evicted) = {
            let mut g = self.shard(key).lock().expect("shard poisoned");
            if g.capacity == 0 {
                (false, 0)
            } else if let Some(&idx) = g.map.get(&key) {
                g.unlink(idx);
                g.push_front(idx);
                (true, 0)
            } else {
                let evicted = g.admit(key);
                (false, evicted)
            }
        };
        self.stats.record_access(hit, evicted);
        hit
    }

    /// Records a write to `key` (also makes the page resident).
    pub fn write(&self, key: PageKey) {
        let evicted = {
            let mut g = self.shard(key).lock().expect("shard poisoned");
            if g.capacity == 0 {
                0
            } else if let Some(&idx) = g.map.get(&key) {
                g.unlink(idx);
                g.push_front(idx);
                0
            } else {
                g.admit(key)
            }
        };
        self.stats.record_write(evicted);
    }

    /// Drops all pages of `segment` from the pool (segment dropped/split).
    pub fn invalidate_segment(&self, segment: SegmentId) {
        for shard in self.shards.iter() {
            let mut g = shard.lock().expect("shard poisoned");
            let victims: Vec<usize> = g
                .map
                .iter()
                .filter(|(k, _)| k.segment == segment)
                .map(|(_, &i)| i)
                .collect();
            for idx in victims {
                g.remove(idx);
            }
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Resets counters to zero (residency is kept).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Merges an externally accumulated delta into the counters (used by
    /// callers that account I/O in per-thread deltas and fold them in on
    /// completion).
    pub fn merge_stats(&self, delta: &IoStats) {
        self.stats.add(delta);
    }

    /// Number of currently resident pages across all shards.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").map.len())
            .sum()
    }
}

impl Shard {
    /// Admits `key`, evicting the shard-LRU page if full. Returns the
    /// number of evictions (0 or 1).
    fn admit(&mut self, key: PageKey) -> u64 {
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            self.remove(tail);
            evicted = 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node { key, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slab.push(Node { key, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn remove(&mut self, idx: usize) {
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32) -> PageKey {
        PageKey { segment: SegmentId(0), page: p }
    }

    #[test]
    fn misses_then_hits() {
        let pool = BufferPool::new(4);
        assert!(!pool.access(key(1)));
        assert!(!pool.access(key(2)));
        assert!(pool.access(key(1)));
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(2);
        pool.access(key(1));
        pool.access(key(2));
        pool.access(key(1)); // 2 is now LRU
        pool.access(key(3)); // evicts 2
        assert!(pool.access(key(1)), "1 should still be resident");
        assert!(!pool.access(key(2)), "2 should have been evicted");
        assert_eq!(pool.stats().evictions, 2); // 3 evicted 2, then 2 evicted 3
    }

    #[test]
    fn zero_capacity_always_misses() {
        let pool = BufferPool::new(0);
        assert!(!pool.access(key(1)));
        assert!(!pool.access(key(1)));
        pool.write(key(1));
        assert_eq!(pool.resident(), 0);
        let s = pool.stats();
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.page_writes, 1);
    }

    #[test]
    fn write_makes_resident() {
        let pool = BufferPool::new(4);
        pool.write(key(9));
        assert!(pool.access(key(9)));
    }

    #[test]
    fn invalidate_segment_drops_only_that_segment() {
        let pool = BufferPool::new(8);
        pool.access(PageKey { segment: SegmentId(1), page: 0 });
        pool.access(PageKey { segment: SegmentId(1), page: 1 });
        pool.access(PageKey { segment: SegmentId(2), page: 0 });
        pool.invalidate_segment(SegmentId(1));
        assert_eq!(pool.resident(), 1);
        assert!(pool.access(PageKey { segment: SegmentId(2), page: 0 }));
        assert!(!pool.access(PageKey { segment: SegmentId(1), page: 0 }));
    }

    #[test]
    fn eviction_pressure_keeps_capacity() {
        let pool = BufferPool::new(3);
        for p in 0..100 {
            pool.access(key(p));
        }
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.stats().evictions, 97);
        // The three most recent pages are resident.
        assert!(pool.access(key(99)));
        assert!(pool.access(key(98)));
        assert!(pool.access(key(97)));
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let pool = BufferPool::new(4);
        pool.access(key(5));
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
        assert!(pool.access(key(5)));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(BufferPool::with_shards(64, 1).shard_count(), 1);
        assert_eq!(BufferPool::with_shards(64, 3).shard_count(), 4);
        assert_eq!(BufferPool::with_shards(64, 8).shard_count(), 8);
        assert_eq!(BufferPool::new(64).shard_count(), 1);
    }

    #[test]
    fn sharded_pool_respects_total_capacity() {
        let pool = BufferPool::with_shards(16, 4);
        for p in 0..1000 {
            pool.access(key(p));
        }
        assert!(pool.resident() <= 16);
        let s = pool.stats();
        assert_eq!(s.logical_reads, 1000);
        assert_eq!(s.physical_reads + s.hits(), s.logical_reads);
    }

    #[test]
    fn sharded_pool_still_caches_hot_pages() {
        let pool = BufferPool::with_shards(32, 4);
        for round in 0..10 {
            for p in 0..8 {
                let hit = pool.access(key(p));
                if round > 0 {
                    assert!(hit, "page {p} should stay resident in round {round}");
                }
            }
        }
        assert_eq!(pool.stats().physical_reads, 8);
    }

    #[test]
    fn sharded_invalidate_reaches_every_shard() {
        // Capacity far above the working set: per-shard capacity is
        // capacity/shards, and the hash can skew keys toward one shard,
        // so a tight pool would evict and blur the resident count.
        let pool = BufferPool::with_shards(512, 8);
        for p in 0..32 {
            pool.access(PageKey { segment: SegmentId(7), page: p });
            pool.access(PageKey { segment: SegmentId(8), page: p });
        }
        pool.invalidate_segment(SegmentId(7));
        assert_eq!(pool.resident(), 32);
        for p in 0..32 {
            assert!(!pool.access(PageKey { segment: SegmentId(7), page: p }));
        }
    }

    #[test]
    fn merge_stats_folds_external_deltas() {
        let pool = BufferPool::new(4);
        pool.access(key(1));
        pool.merge_stats(&IoStats {
            logical_reads: 10,
            physical_reads: 4,
            evictions: 1,
            page_writes: 2,
        });
        let s = pool.stats();
        assert_eq!(s.logical_reads, 11);
        assert_eq!(s.physical_reads, 5);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.page_writes, 2);
    }

    #[test]
    fn concurrent_access_is_safe_and_balanced() {
        let pool = BufferPool::with_shards(64, 8);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        pool.access(PageKey {
                            segment: SegmentId(t % 4),
                            page: i % 100,
                        });
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.logical_reads, 8000);
        assert_eq!(s.physical_reads + s.hits(), 8000);
        assert!(pool.resident() <= 64);
    }
}
