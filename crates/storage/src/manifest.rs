//! The shard manifest: one tiny, checksummed file at the root of a sharded
//! store directory recording how many shards the store was created with.
//!
//! The shard count is *structural*: entities hash-route to
//! `shard = route(id) % shards`, so reopening a store with a different
//! count would silently misroute every lookup. The manifest makes the
//! on-disk layout self-describing — `ShardedEngine::open` trusts the
//! manifest over the caller's requested count and reports a mismatch
//! loudly instead of scattering rows.
//!
//! Format (integers LEB128 varints unless noted):
//!
//! ```text
//! magic   : 8 bytes  "CINDMAN1"
//! shards  : varint shard count (≥ 1)
//! checksum: 8 bytes little-endian FNV-1a 64 of everything before it
//! ```
//!
//! Written with the same crash-safe recipe as snapshots: write
//! `<path>.tmp`, sync, rename into place.

use std::path::Path;

use crate::varint;
use crate::vfs::Vfs;
use crate::PersistError;

const MAGIC: &[u8; 8] = b"CINDMAN1";

/// FNV-1a 64-bit, the manifest checksum (same polynomial as snapshots).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The decoded contents of a shard manifest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Manifest {
    /// Number of shards the store was created with (≥ 1).
    pub shards: usize,
}

impl Manifest {
    /// Serialises the manifest into its complete byte stream.
    fn to_bytes(self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        varint::encode(self.shards as u64, &mut buf);
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Decodes a manifest from its byte stream.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] on truncation, checksum mismatch, bad
    /// magic, or a shard count of zero.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(PersistError::Corrupt("manifest truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let tail = <[u8; 8]>::try_from(tail)
            .map_err(|_| PersistError::Corrupt("manifest checksum width"))?;
        if fnv1a(body) != u64::from_le_bytes(tail) {
            return Err(PersistError::Corrupt("manifest checksum mismatch"));
        }
        if &body[..MAGIC.len()] != MAGIC {
            return Err(PersistError::Corrupt("manifest bad magic"));
        }
        let rest = &body[MAGIC.len()..];
        let (shards, n) =
            varint::decode(rest).ok_or(PersistError::Corrupt("manifest varint"))?;
        if n != rest.len() {
            return Err(PersistError::Corrupt("manifest trailing bytes"));
        }
        if shards == 0 {
            return Err(PersistError::Corrupt("manifest zero shards"));
        }
        let shards = usize::try_from(shards)
            .map_err(|_| PersistError::Corrupt("manifest shard count overflow"))?;
        Ok(Manifest { shards })
    }

    /// Writes the manifest to `path` through `vfs` (tmp + sync + rename).
    ///
    /// # Errors
    /// I/O errors from the backend (real or injected).
    pub fn write_to(self, vfs: &dyn Vfs, path: &Path) -> Result<(), PersistError> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut f = vfs.create(&tmp)?;
        std::io::Write::write_all(&mut f, &bytes)?;
        f.sync()?;
        drop(f);
        vfs.rename(&tmp, path)?;
        Ok(())
    }

    /// Reads the manifest at `path` through `vfs`, or `None` if the file
    /// does not exist (a fresh or legacy store).
    ///
    /// # Errors
    /// I/O errors, or [`PersistError::Corrupt`] on a damaged manifest.
    pub fn read_from(vfs: &dyn Vfs, path: &Path) -> Result<Option<Self>, PersistError> {
        if !vfs.exists(path) {
            return Ok(None);
        }
        let bytes = vfs.read(path)?;
        Ok(Some(Self::from_bytes(&bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    #[test]
    fn roundtrip() {
        for shards in [1usize, 2, 8, 1000] {
            let m = Manifest { shards };
            let decoded = Manifest::from_bytes(&m.to_bytes()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = Manifest { shards: 4 }.to_bytes();

        let mut bad = bytes.clone();
        bad[9] ^= 0x01; // flip inside the body
        assert!(matches!(
            Manifest::from_bytes(&bad),
            Err(PersistError::Corrupt("manifest checksum mismatch"))
        ));

        assert!(matches!(
            Manifest::from_bytes(&bytes[..4]),
            Err(PersistError::Corrupt("manifest truncated"))
        ));

        // Zero shards is structurally invalid even when well-formed.
        let mut zero = Vec::new();
        zero.extend_from_slice(MAGIC);
        varint::encode(0, &mut zero);
        let sum = fnv1a(&zero);
        zero.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Manifest::from_bytes(&zero),
            Err(PersistError::Corrupt("manifest zero shards"))
        ));
    }

    #[test]
    fn file_roundtrip_and_missing_is_none() {
        let dir = std::env::temp_dir().join("cind_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST");
        let vfs = RealVfs;
        assert!(Manifest::read_from(&vfs, &path).unwrap().is_none());
        Manifest { shards: 8 }.write_to(&vfs, &path).unwrap();
        assert!(!std::path::Path::new(&dir.join("MANIFEST.tmp")).exists());
        let m = Manifest::read_from(&vfs, &path).unwrap().unwrap();
        assert_eq!(m.shards, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
