//! Segments: the physical storage of one partition.

use std::sync::Arc;

use crate::page::{Page, SlotId, MAX_RECORD};
use crate::StorageError;

/// Identifier of a segment (and thus of the partition stored in it).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentId(pub u32);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Physical address of a record within a segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecordId {
    /// Page index within the segment.
    pub page: u32,
    /// Slot within the page.
    pub slot: SlotId,
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}/{}", self.page, self.slot)
    }
}

/// A heap of slotted pages holding one partition of a universal table.
///
/// Inserts go to the *active* page (the most recently written one) and fall
/// back to a linear free-space scan before allocating a new page — an
/// append-mostly policy that matches Cinderella's workload, where partitions
/// grow by insertion and shrink only by whole-partition splits or sporadic
/// deletes.
///
/// Pages are held behind [`Arc`] so a `clone()` of the segment is O(pages)
/// pointer copies, not O(bytes): snapshot readers (see
/// `UniversalTable::snapshot`) share page contents with the live segment,
/// and the first mutation of a shared page copies just that 8 KiB page
/// (`Arc::make_mut`) — copy-on-write at page granularity.
#[derive(Clone, Debug)]
pub struct Segment {
    id: SegmentId,
    pages: Vec<Arc<Page>>,
    active: usize,
    records: usize,
}

impl Segment {
    /// Creates an empty segment.
    pub fn new(id: SegmentId) -> Self {
        Self { id, pages: Vec::new(), active: 0, records: 0 }
    }

    /// The segment id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// Re-brands a detached segment with a new id (attach path).
    pub(crate) fn set_id(&mut self, id: SegmentId) {
        self.id = id;
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live records.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Whether the segment holds no live record.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Borrow page `i`, if allocated.
    pub fn page(&self, i: u32) -> Option<&Page> {
        self.pages.get(i as usize).map(Arc::as_ref)
    }

    /// Inserts a serialized record, returning its address.
    ///
    /// # Errors
    /// [`StorageError::RecordTooLarge`] if the record cannot fit even an
    /// empty page.
    pub fn insert(&mut self, rec: &[u8]) -> Result<RecordId, StorageError> {
        if rec.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge { len: rec.len(), max: MAX_RECORD });
        }
        // Fast path: the active page. `fits` is checked on the shared page
        // before `Arc::make_mut` so a full page is never copied just to
        // discover there is no room.
        if let Some(page) = self.pages.get_mut(self.active) {
            if page.fits(rec.len()) {
                if let Some(slot) = Arc::make_mut(page).insert(rec) {
                    self.records += 1;
                    return Ok(RecordId { page: self.active as u32, slot });
                }
            }
        }
        // Slow path: first page with room (reclaims holes left by deletes).
        for (i, page) in self.pages.iter_mut().enumerate() {
            if i == self.active || !page.fits(rec.len()) {
                continue;
            }
            if let Some(slot) = Arc::make_mut(page).insert(rec) {
                self.active = i;
                self.records += 1;
                return Ok(RecordId { page: i as u32, slot });
            }
        }
        // Allocate. The size gate above guarantees an empty page fits the
        // record, so a `None` here can only mean that gate is broken —
        // surface it as the same typed error instead of panicking.
        let mut page = Page::new();
        let Some(slot) = page.insert(rec) else {
            return Err(StorageError::RecordTooLarge { len: rec.len(), max: MAX_RECORD });
        };
        self.pages.push(Arc::new(page));
        self.active = self.pages.len() - 1;
        self.records += 1;
        Ok(RecordId { page: self.active as u32, slot })
    }

    /// Returns the record bytes at `rid`.
    ///
    /// # Errors
    /// [`StorageError::NoSuchRecord`] for a dead or out-of-range address.
    pub fn get(&self, rid: RecordId) -> Result<&[u8], StorageError> {
        self.pages
            .get(rid.page as usize)
            .and_then(|p| p.get(rid.slot))
            .ok_or(StorageError::NoSuchRecord(self.id, rid))
    }

    /// Deletes the record at `rid`, returning its bytes.
    ///
    /// # Errors
    /// [`StorageError::NoSuchRecord`] for a dead or out-of-range address.
    pub fn delete(&mut self, rid: RecordId) -> Result<Vec<u8>, StorageError> {
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or(StorageError::NoSuchRecord(self.id, rid))?;
        let bytes = page
            .get(rid.slot)
            .ok_or(StorageError::NoSuchRecord(self.id, rid))?
            .to_vec();
        Arc::make_mut(page).delete(rid.slot);
        self.records -= 1;
        Ok(bytes)
    }

    /// Iterates `(address, record-bytes)` over all live records, page by
    /// page. Callers that model I/O must touch the buffer pool once per page
    /// (see `UniversalTable::scan`).
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(pi, page)| {
            page.iter()
                .map(move |(slot, rec)| (RecordId { page: pi as u32, slot }, rec))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut s = Segment::new(SegmentId(1));
        let a = s.insert(b"hello").unwrap();
        let b = s.insert(b"world!").unwrap();
        assert_eq!(s.get(a).unwrap(), b"hello");
        assert_eq!(s.get(b).unwrap(), b"world!");
        assert_eq!(s.record_count(), 2);
        assert_eq!(s.page_count(), 1);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut s = Segment::new(SegmentId(1));
        let rec = vec![1u8; 2000];
        for _ in 0..9 {
            s.insert(&rec).unwrap();
        }
        // 4 records of 2004 bytes per 8188-byte page → 3 pages for 9 records.
        assert_eq!(s.page_count(), 3);
        assert_eq!(s.record_count(), 9);
    }

    #[test]
    fn delete_returns_bytes_and_frees() {
        let mut s = Segment::new(SegmentId(1));
        let a = s.insert(b"abc").unwrap();
        assert_eq!(s.delete(a).unwrap(), b"abc".to_vec());
        assert!(s.is_empty());
        assert!(matches!(s.delete(a), Err(StorageError::NoSuchRecord(..))));
        assert!(matches!(s.get(a), Err(StorageError::NoSuchRecord(..))));
    }

    #[test]
    fn holes_are_reused_before_allocating() {
        let mut s = Segment::new(SegmentId(1));
        let rec = vec![1u8; 2000];
        let mut rids = Vec::new();
        for _ in 0..8 {
            rids.push(s.insert(&rec).unwrap());
        }
        assert_eq!(s.page_count(), 2);
        // Free all of page 0, then insert: should land in page 0, not page 2.
        for rid in rids.iter().filter(|r| r.page == 0) {
            s.delete(*rid).unwrap();
        }
        let rid = s.insert(&rec).unwrap();
        assert_eq!(rid.page, 0);
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut s = Segment::new(SegmentId(1));
        let a = s.insert(b"original").unwrap();
        let snap = s.clone();
        s.delete(a).unwrap();
        let b = s.insert(b"replacement").unwrap();
        // The clone still sees the pre-mutation page; the live segment moved on.
        assert_eq!(snap.get(a).unwrap(), b"original");
        assert_eq!(snap.record_count(), 1);
        assert_eq!(s.get(b).unwrap(), b"replacement");
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut s = Segment::new(SegmentId(1));
        let e = s.insert(&vec![0u8; MAX_RECORD + 1]).unwrap_err();
        assert!(matches!(e, StorageError::RecordTooLarge { .. }));
    }

    #[test]
    fn iter_covers_all_live_records() {
        let mut s = Segment::new(SegmentId(1));
        let rec = vec![1u8; 3000];
        let mut rids = Vec::new();
        for _ in 0..5 {
            rids.push(s.insert(&rec).unwrap());
        }
        s.delete(rids[2]).unwrap();
        let seen: Vec<RecordId> = s.iter().map(|(rid, _)| rid).collect();
        assert_eq!(seen.len(), 4);
        assert!(!seen.contains(&rids[2]));
    }
}
