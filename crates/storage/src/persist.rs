//! Snapshot persistence for universal tables.
//!
//! The engine is memory-resident (DESIGN.md §3: the buffer pool *accounts*
//! rather than pages to disk), but a real deployment needs the table to
//! survive restarts. This module serialises a whole [`UniversalTable`] —
//! attribute catalog, segments, records — into one self-describing,
//! checksummed snapshot stream and restores it bit-for-bit. Partitioning
//! policy state is *not* persisted: partition synopses are derivable, so
//! `cinderella-core` rebuilds its catalog from the restored table
//! (`Cinderella::rebuild`), the same way the PostgreSQL prototype's views
//! were derivable from its partition tables.
//!
//! Format (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic   : 8 bytes  "CINDSNP1"
//! catalog : count, then per attribute: name-len, name-bytes
//! segments: count, then per segment:
//!             segment-id, record-count,
//!             per record: len, record bytes (encoded entity)
//! checksum: 8 bytes little-endian FNV-1a 64 of everything before it
//! ```

use std::io::{Read, Write};

use crate::record::decode_entity_id;
use crate::segment::SegmentId;
use crate::varint;
use crate::{StorageError, UniversalTable};

const MAGIC: &[u8; 8] = b"CINDSNP1";

/// FNV-1a 64-bit, the snapshot checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors of the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// The stream is not a snapshot / is truncated / fails its checksum.
    Corrupt(&'static str),
    /// A record inside a valid snapshot failed to decode.
    Storage(StorageError),
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            PersistError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl UniversalTable {
    /// Serialises the table into `out` as one snapshot.
    ///
    /// ```
    /// use cind_model::{Entity, EntityId, Value};
    /// use cind_storage::UniversalTable;
    ///
    /// let mut table = UniversalTable::new(8);
    /// let a = table.catalog_mut().intern("a");
    /// let seg = table.create_segment();
    /// table.insert(seg, &Entity::new(EntityId(1), [(a, Value::Int(9))]).unwrap())?;
    ///
    /// let mut snapshot = Vec::new();
    /// table.snapshot(&mut snapshot)?;
    /// let restored = UniversalTable::restore(&mut &snapshot[..], 8)?;
    /// assert_eq!(restored.get(EntityId(1))?, table.get(EntityId(1))?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// I/O errors from the writer.
    pub fn snapshot(&self, out: &mut impl Write) -> Result<(), PersistError> {
        out.write_all(&self.snapshot_bytes()?)?;
        Ok(())
    }

    /// Serialises the table into the complete snapshot byte stream
    /// (body + trailing checksum).
    ///
    /// # Errors
    /// [`PersistError::Storage`] if a segment cannot be read.
    fn snapshot_bytes(&self) -> Result<Vec<u8>, PersistError> {
        // Build in memory first: the checksum covers the whole body, and
        // snapshots of this engine's scale (≤ a few hundred MB) fit.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        varint::encode(self.catalog().len() as u64, &mut buf);
        for (_, name) in self.catalog().iter() {
            varint::encode(name.len() as u64, &mut buf);
            buf.extend_from_slice(name.as_bytes());
        }
        let segments: Vec<SegmentId> = self.segment_ids().collect();
        varint::encode(segments.len() as u64, &mut buf);
        for seg in segments {
            let segment = self.segment(seg)?;
            varint::encode(u64::from(seg.0), &mut buf);
            varint::encode(segment.record_count() as u64, &mut buf);
            for (_, rec) in segment.iter() {
                varint::encode(rec.len() as u64, &mut buf);
                buf.extend_from_slice(rec);
            }
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        Ok(buf)
    }

    /// Writes a snapshot to `path` through `vfs` with the standard
    /// crash-safe recipe — write to `<path>.tmp`, sync, rename into place —
    /// and returns the snapshot's *epoch*: the FNV-1a of the entire file,
    /// which the engine stamps into the head of the log written after it
    /// (see [`crate::wal::read_epoch`]) so recovery can tell whether a log
    /// belongs to this snapshot generation.
    ///
    /// # Errors
    /// I/O errors from the backend (real or injected).
    pub fn snapshot_to(
        &self,
        vfs: &dyn crate::vfs::Vfs,
        path: &std::path::Path,
    ) -> Result<u64, PersistError> {
        let bytes = self.snapshot_bytes()?;
        let epoch = fnv1a(&bytes);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut f = vfs.create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync()?;
        drop(f);
        vfs.rename(&tmp, path)?;
        Ok(epoch)
    }

    /// Restores a table from a snapshot file read through `vfs`, returning
    /// the table and the snapshot's epoch (FNV-1a of the file bytes — the
    /// same value [`Self::snapshot_to`] returned when it was written).
    ///
    /// # Errors
    /// I/O errors from the backend; [`PersistError::Corrupt`] on a
    /// malformed or checksum-failing stream.
    pub fn restore_from(
        vfs: &dyn crate::vfs::Vfs,
        path: &std::path::Path,
        pool_pages: usize,
    ) -> Result<(Self, u64), PersistError> {
        let bytes = vfs.read(path)?;
        let epoch = fnv1a(&bytes);
        let table = Self::restore(&mut &bytes[..], pool_pages)?;
        Ok((table, epoch))
    }

    /// Restores a table from a snapshot stream. The buffer pool is fresh
    /// (residency is runtime state), sized to `pool_pages`.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] on a malformed or checksum-failing stream.
    pub fn restore(input: &mut impl Read, pool_pages: usize) -> Result<Self, PersistError> {
        let mut buf = Vec::new();
        input.read_to_end(&mut buf)?;
        if buf.len() < MAGIC.len() + 8 {
            return Err(PersistError::Corrupt("truncated"));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let tail =
            <[u8; 8]>::try_from(tail).map_err(|_| PersistError::Corrupt("checksum width"))?;
        let expect = u64::from_le_bytes(tail);
        if fnv1a(body) != expect {
            return Err(PersistError::Corrupt("checksum mismatch"));
        }
        if &body[..MAGIC.len()] != MAGIC {
            return Err(PersistError::Corrupt("bad magic"));
        }
        let mut pos = MAGIC.len();
        let next = |body: &[u8], pos: &mut usize| -> Result<u64, PersistError> {
            let (v, n) =
                varint::decode(&body[*pos..]).ok_or(PersistError::Corrupt("varint"))?;
            *pos += n;
            Ok(v)
        };
        fn take<'b>(
            body: &'b [u8],
            pos: &mut usize,
            len: usize,
        ) -> Result<&'b [u8], PersistError> {
            let s = body
                .get(*pos..*pos + len)
                .ok_or(PersistError::Corrupt("truncated body"))?;
            *pos += len;
            Ok(s)
        }

        let mut table = UniversalTable::new(pool_pages);
        let attrs = next(body, &mut pos)?;
        for _ in 0..attrs {
            let len = next(body, &mut pos)? as usize;
            let name = std::str::from_utf8(take(body, &mut pos, len)?)
                .map_err(|_| PersistError::Corrupt("attribute name utf8"))?;
            table.catalog_mut().intern(name);
        }
        let segments = next(body, &mut pos)?;
        for _ in 0..segments {
            let seg_id = u32::try_from(next(body, &mut pos)?)
                .map_err(|_| PersistError::Corrupt("segment id overflow"))?;
            let seg = table.restore_segment(SegmentId(seg_id))?;
            let records = next(body, &mut pos)?;
            for _ in 0..records {
                let len = next(body, &mut pos)? as usize;
                let rec = take(body, &mut pos, len)?;
                // Validate eagerly so a corrupt record fails the restore,
                // not a later scan.
                let id = decode_entity_id(rec)?;
                crate::record::decode_entity(rec)?;
                table.restore_record(seg, id, rec)?;
            }
        }
        if pos != body.len() {
            return Err(PersistError::Corrupt("trailing bytes"));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{Entity, EntityId, Value};

    fn sample_table() -> UniversalTable {
        let mut t = UniversalTable::new(32);
        let a = t.catalog_mut().intern("name");
        let b = t.catalog_mut().intern("weight");
        let s1 = t.create_segment();
        let s2 = t.create_segment();
        for i in 0..40u64 {
            let seg = if i % 2 == 0 { s1 } else { s2 };
            let e = Entity::new(
                EntityId(i),
                [
                    (a, Value::Text(format!("thing-{i}"))),
                    (b, Value::Int(i as i64 * 3)),
                ],
            )
            .unwrap();
            t.insert(seg, &e).unwrap();
        }
        // A hole: deletes must not resurrect.
        t.delete(EntityId(6)).unwrap();
        t
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let t = sample_table();
        let mut buf = Vec::new();
        t.snapshot(&mut buf).unwrap();
        let mut cursor = &buf[..];
        let r = UniversalTable::restore(&mut cursor, 32).unwrap();

        assert_eq!(r.entity_count(), t.entity_count());
        assert_eq!(r.universe(), t.universe());
        assert_eq!(
            r.segment_ids().collect::<Vec<_>>(),
            t.segment_ids().collect::<Vec<_>>()
        );
        for i in 0..40u64 {
            let id = EntityId(i);
            match t.get(id) {
                Ok(orig) => {
                    assert_eq!(r.get(id).unwrap(), orig);
                    assert_eq!(r.location(id), t.location(id));
                }
                Err(_) => assert!(r.get(id).is_err(), "deleted entity resurrected"),
            }
        }
        // The restored table keeps working: fresh segment ids don't clash.
        let mut r = r;
        let s = r.create_segment();
        assert!(!t.segment_ids().any(|x| x == s));
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = UniversalTable::new(8);
        let mut buf = Vec::new();
        t.snapshot(&mut buf).unwrap();
        let r = UniversalTable::restore(&mut &buf[..], 8).unwrap();
        assert_eq!(r.entity_count(), 0);
        assert_eq!(r.segment_count(), 0);
        assert_eq!(r.universe(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let t = sample_table();
        let mut buf = Vec::new();
        t.snapshot(&mut buf).unwrap();

        // Flip a byte in the middle: checksum must catch it.
        let mut bad = buf.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(
            UniversalTable::restore(&mut &bad[..], 8),
            Err(PersistError::Corrupt("checksum mismatch"))
        ));

        // Truncation.
        assert!(matches!(
            UniversalTable::restore(&mut &buf[..10], 8),
            Err(PersistError::Corrupt(_))
        ));

        // Wrong magic (re-checksummed so only the magic is wrong).
        let mut bad = buf.clone();
        bad[0] = b'X';
        let body_len = bad.len() - 8;
        let sum = fnv1a(&bad[..body_len]);
        bad[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            UniversalTable::restore(&mut &bad[..], 8),
            Err(PersistError::Corrupt("bad magic"))
        ));
    }

    #[test]
    fn snapshot_to_restore_from_agree_on_epoch() {
        use crate::vfs::{RealVfs, Vfs};
        let t = sample_table();
        let dir = std::env::temp_dir().join("cind_persist_vfs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.cind");
        let vfs = RealVfs;
        let wrote = t.snapshot_to(&vfs, &path).unwrap();
        // The tmp file was renamed away.
        assert!(!vfs.exists(&dir.join("store.cind.tmp")));
        let (r, read) = UniversalTable::restore_from(&vfs, &path, 32).unwrap();
        assert_eq!(wrote, read);
        assert_eq!(r.entity_count(), t.entity_count());
        // Same content ⇒ same epoch; different content ⇒ different epoch.
        let e2 = t.snapshot_to(&vfs, &path).unwrap();
        assert_eq!(e2, wrote);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("cind_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.cind");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            t.snapshot(&mut f).unwrap();
        }
        let mut f = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        let r = UniversalTable::restore(&mut f, 32).unwrap();
        assert_eq!(r.entity_count(), t.entity_count());
        std::fs::remove_file(&path).unwrap();
    }
}
