//! Virtual filesystem seam for snapshot and WAL I/O.
//!
//! Every durable byte the engine writes — snapshots, the write-ahead log,
//! store directories — flows through a [`Vfs`] implementation. Production
//! code uses [`RealVfs`] (thin `std::fs` passthrough); the deterministic
//! simulation harness (`cind-sim`) substitutes an in-memory backend that
//! injects torn writes, short reads, `ENOSPC`, failed fsyncs, and
//! crash-points at any mutation, all driven by a seeded PRNG. The seam is
//! deliberately narrow — create/open/read/rename plus per-file
//! read/write/sync — because that is the complete set of filesystem
//! operations the store performs; keeping it minimal keeps the fault model
//! exhaustive.

use std::io::{Read, Write};
use std::path::Path;

/// One open file behind a [`Vfs`]: byte-stream reads and writes plus an
/// explicit durability barrier. `sync` is separate from `flush` because the
/// snapshot path relies on write → sync → rename ordering, and a simulated
/// fsync failure must be distinguishable from a failed write.
pub trait VfsFile: Read + Write + Send + Sync {
    /// Forces written data down to durable storage (`File::sync_all` for
    /// the real backend).
    ///
    /// # Errors
    /// I/O failure of the underlying sync (injected, for fault backends).
    fn sync(&mut self) -> std::io::Result<()>;
}

/// A filesystem backend. Implementations must be safe to share across
/// threads (the engine holds one behind an `Arc`).
pub trait Vfs: Send + Sync {
    /// Creates (or truncates) a file for writing.
    ///
    /// # Errors
    /// I/O failure (real or injected).
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file for reading.
    ///
    /// # Errors
    /// I/O failure (real or injected), including not-found.
    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically renames `from` to `to` (the snapshot commit point).
    ///
    /// # Errors
    /// I/O failure (real or injected).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Creates a directory and all its parents.
    ///
    /// # Errors
    /// I/O failure (real or injected).
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;

    /// Reads a whole file into memory.
    ///
    /// # Errors
    /// I/O failure (real or injected), including short reads.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut f = self.open_read(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

/// The production backend: a thin passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

struct RealFile(std::fs::File);

impl Read for RealFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for RealFile {
    fn sync(&mut self) -> std::io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::open(path)?)))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// Adapts a [`VfsFile`] to the plain `Write + Send + Sync` sink that
/// [`crate::UniversalTable::attach_wal`] takes (trait objects don't upcast
/// across the extra bounds).
pub struct FileSink(pub Box<dyn VfsFile>);

impl Write for FileSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_vfs_roundtrips_a_file() {
        let dir = std::env::temp_dir().join("cind_vfs_test");
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let tmp = dir.join("x.tmp");
        let dst = dir.join("x");
        let mut f = vfs.create(&tmp).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&tmp, &dst).unwrap();
        assert!(vfs.exists(&dst));
        assert!(!vfs.exists(&tmp));
        assert_eq!(vfs.read(&dst).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_read_missing_file_errors() {
        let vfs = RealVfs;
        assert!(vfs.open_read(Path::new("/nonexistent/cind")).is_err());
    }
}
