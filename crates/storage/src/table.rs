//! The universal table: segments + attribute catalog + entity locator.

use std::collections::BTreeMap;

use cind_model::{AttributeCatalog, Entity, EntityId};

use crate::buffer::PageKey;
use crate::record::{decode_entity, encode_entity};
use crate::segment::{RecordId, Segment, SegmentId};
use crate::{BufferPool, IoStats, StorageError};

/// A horizontally partitioned sparse universal table.
///
/// One [`Segment`] per partition, an [`AttributeCatalog`] interning the
/// table's (wide, growing) attribute set, a locator index mapping each
/// entity to its physical address, and a [`BufferPool`] that accounts every
/// page access. The partitioning *policy* lives above this layer
/// (`cinderella-core` and `cind-baselines`); the table just provides
/// mechanism: create/drop segments and insert/delete/move/scan entities.
///
/// ```
/// use cind_model::{Entity, EntityId, Value};
/// use cind_storage::UniversalTable;
///
/// let mut table = UniversalTable::new(64);
/// let name = table.catalog_mut().intern("name");
/// let seg = table.create_segment();
/// let e = Entity::new(EntityId(1), [(name, Value::from("WD4000"))]).unwrap();
/// table.insert(seg, &e)?;
/// assert_eq!(table.get(EntityId(1))?, e);
/// assert_eq!(table.location(EntityId(1)), Some(seg));
/// let mut seen = 0;
/// table.scan(seg, |_| seen += 1)?;
/// assert_eq!(seen, 1);
/// # Ok::<(), cind_storage::StorageError>(())
/// ```
pub struct UniversalTable {
    catalog: AttributeCatalog,
    segments: BTreeMap<SegmentId, Segment>,
    locator: std::collections::HashMap<EntityId, (SegmentId, RecordId)>,
    /// Shared with any outstanding [`TableSnapshot`] so snapshot scans keep
    /// feeding the same I/O counters as live scans.
    pool: std::sync::Arc<BufferPool>,
    next_segment: u32,
    wal: Option<crate::wal::WalSink>,
}

impl UniversalTable {
    /// Creates an empty table whose buffer pool holds `pool_pages` pages.
    pub fn new(pool_pages: usize) -> Self {
        Self::with_pool(BufferPool::new(pool_pages))
    }

    /// Creates an empty table over a caller-built buffer pool — the way to
    /// get a sharded pool (`BufferPool::with_shards`) for parallel scans.
    pub fn with_pool(pool: BufferPool) -> Self {
        Self {
            catalog: AttributeCatalog::new(),
            segments: BTreeMap::new(),
            locator: std::collections::HashMap::new(),
            pool: std::sync::Arc::new(pool),
            next_segment: 0,
            wal: None,
        }
    }

    /// Attaches a write-ahead-log sink: from now on every mutation appends
    /// one checksummed entry (see [`crate::wal`]). Replaces any previous
    /// sink. Typical recovery: restore the last snapshot, then
    /// [`crate::wal::replay`] the log written since.
    pub fn attach_wal(&mut self, out: Box<dyn std::io::Write + Send + Sync>) {
        self.wal = Some(crate::wal::WalSink::new(out, 0));
    }

    /// Flushes the attached WAL sink, if any.
    ///
    /// # Errors
    /// I/O errors from the sink.
    pub fn flush_wal(&mut self) -> std::io::Result<()> {
        match &mut self.wal {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    /// Opens a WAL transaction group: every logged mutation until the
    /// matching [`Self::wal_txn_commit`] is buffered and written as one
    /// atomic batch. Nests (inner begin/commit pairs are absorbed into the
    /// outermost group); a no-op without an attached sink.
    pub fn wal_txn_begin(&mut self) {
        if let Some(wal) = &mut self.wal {
            wal.txn_begin();
        }
    }

    /// Closes a WAL transaction group (see [`Self::wal_txn_begin`]). The
    /// outermost commit performs the batch write; a failure there (or any
    /// earlier sticky failure) is surfaced so the caller knows the group
    /// did not reach the log.
    ///
    /// # Errors
    /// [`StorageError::WalAppend`] if the batch write failed or the sink
    /// was already broken.
    pub fn wal_txn_commit(&mut self) -> Result<(), StorageError> {
        if let Some(wal) = &mut self.wal {
            wal.txn_commit();
        }
        self.wal_ok()
    }

    /// Writes the epoch entry binding the attached log to a snapshot
    /// generation (see [`crate::wal::read_epoch`]). Call once, immediately
    /// after [`Self::attach_wal`].
    pub fn wal_mark_epoch(&mut self, epoch: u64) {
        if let Some(wal) = &mut self.wal {
            wal.log_epoch(epoch);
        }
    }

    /// Poisons the attached WAL sink as if an append had failed with
    /// `kind`. For callers whose own durability step broke (e.g. a
    /// checkpoint that renamed a new snapshot into place but failed to
    /// open its fresh log): entries appended to the *old* log would be
    /// skipped by recovery as stale, so the sink must go loud instead of
    /// silently accepting them.
    pub fn fail_wal(&mut self, kind: std::io::ErrorKind) {
        if let Some(wal) = &mut self.wal {
            wal.fail(kind);
        }
    }

    /// Installs (or clears) a simulated I/O cost model on the buffer pool
    /// (see [`crate::buffer::IoModel`]). Only possible while no
    /// [`TableSnapshot`] shares the pool (i.e. at setup time, before any
    /// reader exists); with snapshots outstanding the call is a no-op, so
    /// readers never race a model swap.
    pub fn set_io_model(&mut self, model: Option<std::sync::Arc<dyn crate::buffer::IoModel>>) {
        if let Some(pool) = std::sync::Arc::get_mut(&mut self.pool) {
            pool.set_io_model(model);
        }
    }

    /// The attribute catalog.
    pub fn catalog(&self) -> &AttributeCatalog {
        &self.catalog
    }

    /// Mutable attribute catalog (for interning new attributes).
    pub fn catalog_mut(&mut self) -> &mut AttributeCatalog {
        &mut self.catalog
    }

    /// Synopsis universe size (= number of cataloged attributes).
    pub fn universe(&self) -> usize {
        self.catalog.len()
    }

    /// The buffer pool (for stats snapshots).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Cumulative I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Surfaces a sticky WAL append failure (see
    /// [`StorageError::WalAppend`]) — checked by every fallible mutation
    /// that logs, so a failure during an infallible one (e.g.
    /// [`create_segment`](Self::create_segment)) is reported at the next
    /// opportunity rather than swallowed.
    fn wal_ok(&self) -> Result<(), StorageError> {
        match self.wal.as_ref().and_then(|w| w.failure()) {
            Some(kind) => Err(StorageError::WalAppend(kind)),
            None => Ok(()),
        }
    }

    /// Allocates a fresh, empty segment.
    pub fn create_segment(&mut self) -> SegmentId {
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.segments.insert(id, Segment::new(id));
        if let Some(wal) = &mut self.wal {
            wal.log_create_segment(&self.catalog, id);
        }
        id
    }

    /// Drops an **empty** segment.
    ///
    /// # Errors
    /// [`StorageError::NoSuchSegment`] if unknown; panics if non-empty (a
    /// policy bug — policies must move entities out first).
    pub fn drop_segment(&mut self, id: SegmentId) -> Result<(), StorageError> {
        let seg = self.segments.get(&id).ok_or(StorageError::NoSuchSegment(id))?;
        assert!(seg.is_empty(), "dropping non-empty segment {id}");
        self.segments.remove(&id);
        self.pool.invalidate_segment(id);
        if let Some(wal) = &mut self.wal {
            wal.log_drop_segment(&self.catalog, id);
        }
        self.wal_ok()
    }

    /// Ids of all live segments, ascending.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.segments.keys().copied()
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Borrows a segment.
    pub fn segment(&self, id: SegmentId) -> Result<&Segment, StorageError> {
        self.segments.get(&id).ok_or(StorageError::NoSuchSegment(id))
    }

    /// Total number of stored entities.
    pub fn entity_count(&self) -> usize {
        self.locator.len()
    }

    /// The segment currently holding `entity`.
    pub fn location(&self, entity: EntityId) -> Option<SegmentId> {
        self.locator.get(&entity).map(|(s, _)| *s)
    }

    /// Detaches a segment wholesale: its pages leave the table untouched
    /// (records stay encoded) and every member disappears from the locator.
    /// The inverse of [`UniversalTable::attach_segment`]; together they
    /// move whole partitions between tables at page granularity — the bulk
    /// loader's stitch path.
    ///
    /// # Errors
    /// [`StorageError::NoSuchSegment`] if unknown.
    pub fn detach_segment(&mut self, id: SegmentId) -> Result<Segment, StorageError> {
        let seg = self
            .segments
            .remove(&id)
            .ok_or(StorageError::NoSuchSegment(id))?;
        for (_, rec) in seg.iter() {
            let eid = crate::record::decode_entity_id(rec)?;
            self.locator.remove(&eid);
        }
        self.pool.invalidate_segment(id);
        Ok(seg)
    }

    /// Attaches a detached segment under a fresh id, indexing its records.
    ///
    /// # Errors
    /// [`StorageError::DuplicateEntity`] if any member id is already stored
    /// (checked before anything is mutated), [`StorageError::CorruptRecord`]
    /// if a record fails to decode.
    pub fn attach_segment(&mut self, mut seg: Segment) -> Result<SegmentId, StorageError> {
        // Validate first: ids must decode and be fresh.
        for (_, rec) in seg.iter() {
            let eid = crate::record::decode_entity_id(rec)?;
            if self.locator.contains_key(&eid) {
                return Err(StorageError::DuplicateEntity(eid));
            }
        }
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        seg.set_id(id);
        for (rid, rec) in seg.iter() {
            let eid = crate::record::decode_entity_id(rec)?;
            self.locator.insert(eid, (id, rid));
        }
        self.segments.insert(id, seg);
        Ok(id)
    }

    /// Re-creates a segment with a specific id during snapshot restore.
    /// Keeps `next_segment` ahead of every restored id so fresh segments
    /// never clash.
    pub(crate) fn restore_segment(
        &mut self,
        id: SegmentId,
    ) -> Result<SegmentId, StorageError> {
        assert!(
            !self.segments.contains_key(&id),
            "snapshot contains segment {id} twice"
        );
        self.segments.insert(id, Segment::new(id));
        self.next_segment = self.next_segment.max(id.0 + 1);
        Ok(id)
    }

    /// Stores an already-encoded record during snapshot restore, indexing
    /// it under `id` without re-encoding.
    pub(crate) fn restore_record(
        &mut self,
        seg: SegmentId,
        id: EntityId,
        rec: &[u8],
    ) -> Result<(), StorageError> {
        if self.locator.contains_key(&id) {
            return Err(StorageError::DuplicateEntity(id));
        }
        let segment = self
            .segments
            .get_mut(&seg)
            .ok_or(StorageError::NoSuchSegment(seg))?;
        let rid = segment.insert(rec)?;
        self.locator.insert(id, (seg, rid));
        Ok(())
    }

    /// Inserts `entity` into `seg`.
    ///
    /// # Errors
    /// [`StorageError::DuplicateEntity`] if the id is already stored,
    /// [`StorageError::NoSuchSegment`] / [`StorageError::RecordTooLarge`]
    /// from the layers below.
    pub fn insert(&mut self, seg: SegmentId, entity: &Entity) -> Result<(), StorageError> {
        if self.locator.contains_key(&entity.id()) {
            return Err(StorageError::DuplicateEntity(entity.id()));
        }
        let segment = self
            .segments
            .get_mut(&seg)
            .ok_or(StorageError::NoSuchSegment(seg))?;
        let record = encode_entity(entity);
        let rid = segment.insert(&record)?;
        self.pool.write(PageKey { segment: seg, page: rid.page });
        self.locator.insert(entity.id(), (seg, rid));
        if let Some(wal) = &mut self.wal {
            wal.log_insert(&self.catalog, seg, &record);
        }
        self.wal_ok()
    }

    /// A `Send + Sync` read handle over the table's immutable state: the
    /// catalog, the segments, the locator, and the (internally locked)
    /// buffer pool. Parallel query execution shares one `ReadView` across
    /// worker threads while the table's `&mut self` write API stays
    /// single-writer by construction.
    pub fn read_view(&self) -> ReadView<'_> {
        ReadView {
            catalog: &self.catalog,
            segments: &self.segments,
            locator: &self.locator,
            pool: &self.pool,
        }
    }

    /// Captures an *owned*, immutable snapshot of the table's current
    /// state. (Named `freeze` to stay clear of the persistence-layer
    /// [`snapshot`](Self::snapshot), which serialises to a byte stream.)
    ///
    /// Cheap by construction: segments clone as O(pages) `Arc` bumps (pages
    /// are copy-on-write, see [`Segment`]), the catalog and locator clone
    /// eagerly, and the buffer pool is shared so snapshot scans account I/O
    /// in the same counters as live scans. The snapshot is `Send + Sync`
    /// and observes none of the table's subsequent mutations — the
    /// foundation for epoch-based snapshot reads that never block behind a
    /// writer.
    pub fn freeze(&self) -> TableSnapshot {
        TableSnapshot {
            catalog: self.catalog.clone(),
            segments: self.segments.clone(),
            locator: self.locator.clone(),
            pool: std::sync::Arc::clone(&self.pool),
        }
    }

    /// Reads one entity by id (a point lookup through the locator; touches
    /// one page).
    pub fn get(&self, entity: EntityId) -> Result<Entity, StorageError> {
        self.read_view().get(entity)
    }

    /// Deletes one entity, returning it.
    pub fn delete(&mut self, entity: EntityId) -> Result<Entity, StorageError> {
        let (seg, rid) = self
            .locator
            .remove(&entity)
            .ok_or(StorageError::NoSuchEntity(entity))?;
        let segment = self
            .segments
            .get_mut(&seg)
            .ok_or(StorageError::NoSuchSegment(seg))?;
        let bytes = segment.delete(rid)?;
        self.pool.write(PageKey { segment: seg, page: rid.page });
        if let Some(wal) = &mut self.wal {
            wal.log_delete(&self.catalog, entity);
        }
        self.wal_ok()?;
        decode_entity(&bytes)
    }

    /// Moves one entity to another segment (delete + insert, one locator
    /// update). Returns the entity's size class unchanged; a move between
    /// the same segment is a no-op.
    pub fn move_entity(&mut self, entity: EntityId, to: SegmentId) -> Result<(), StorageError> {
        let &(from, _) = self
            .locator
            .get(&entity)
            .ok_or(StorageError::NoSuchEntity(entity))?;
        if from == to {
            return Ok(());
        }
        if !self.segments.contains_key(&to) {
            return Err(StorageError::NoSuchSegment(to));
        }
        let e = self.delete(entity)?;
        self.insert(to, &e)
    }

    /// Scans all entities of `seg`, invoking `f` for each. Touches the
    /// buffer pool once per page, so I/O deltas around a scan reflect the
    /// pages read.
    pub fn scan(
        &self,
        seg: SegmentId,
        f: impl FnMut(&Entity),
    ) -> Result<(), StorageError> {
        self.read_view().scan(seg, f)
    }

    /// Collects all entities of `seg` into a vector (testing convenience).
    pub fn scan_collect(&self, seg: SegmentId) -> Result<Vec<Entity>, StorageError> {
        self.read_view().scan_collect(seg)
    }
}

/// An owned, immutable snapshot of a [`UniversalTable`]'s state at one
/// instant (see [`UniversalTable::freeze`]).
///
/// Holds its own copy of the catalog, segment map (pages shared
/// copy-on-write with the live table), and locator, plus a shared handle to
/// the accounting buffer pool. [`TableSnapshot::view`] yields the same
/// [`ReadView`] the live table produces, so every read path — point
/// lookups, tracked scans, parallel query execution — runs unchanged
/// against a snapshot.
pub struct TableSnapshot {
    catalog: AttributeCatalog,
    segments: BTreeMap<SegmentId, Segment>,
    locator: std::collections::HashMap<EntityId, (SegmentId, RecordId)>,
    pool: std::sync::Arc<BufferPool>,
}

impl TableSnapshot {
    /// A [`ReadView`] over the snapshot, interchangeable with
    /// [`UniversalTable::read_view`].
    pub fn view(&self) -> ReadView<'_> {
        ReadView {
            catalog: &self.catalog,
            segments: &self.segments,
            locator: &self.locator,
            pool: &self.pool,
        }
    }

    /// The attribute catalog as of the snapshot instant.
    pub fn catalog(&self) -> &AttributeCatalog {
        &self.catalog
    }

    /// Total number of entities as of the snapshot instant.
    pub fn entity_count(&self) -> usize {
        self.locator.len()
    }
}

/// A `Send + Sync` read-only handle over a [`UniversalTable`].
///
/// Obtained from [`UniversalTable::read_view`]; cheap to copy, and safe to
/// share across scan worker threads: every field it borrows is either
/// immutable for the borrow's duration (catalog, segments, locator — the
/// borrow checker excludes writers) or internally synchronised (the
/// [`BufferPool`]'s sharded locks and atomic counters).
#[derive(Clone, Copy)]
pub struct ReadView<'a> {
    catalog: &'a AttributeCatalog,
    segments: &'a BTreeMap<SegmentId, Segment>,
    locator: &'a std::collections::HashMap<EntityId, (SegmentId, RecordId)>,
    pool: &'a BufferPool,
}

impl ReadView<'_> {
    /// The attribute catalog.
    pub fn catalog(&self) -> &AttributeCatalog {
        self.catalog
    }

    /// Synopsis universe size (= number of cataloged attributes).
    pub fn universe(&self) -> usize {
        self.catalog.len()
    }

    /// The buffer pool (for stats snapshots).
    pub fn pool(&self) -> &BufferPool {
        self.pool
    }

    /// Cumulative I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Ids of all live segments, ascending.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.segments.keys().copied()
    }

    /// Borrows a segment.
    pub fn segment(&self, id: SegmentId) -> Result<&Segment, StorageError> {
        self.segments.get(&id).ok_or(StorageError::NoSuchSegment(id))
    }

    /// Total number of stored entities.
    pub fn entity_count(&self) -> usize {
        self.locator.len()
    }

    /// The segment currently holding `entity`.
    pub fn location(&self, entity: EntityId) -> Option<SegmentId> {
        self.locator.get(&entity).map(|(s, _)| *s)
    }

    /// Reads one entity by id (a point lookup through the locator; touches
    /// one page).
    pub fn get(&self, entity: EntityId) -> Result<Entity, StorageError> {
        let &(seg, rid) = self
            .locator
            .get(&entity)
            .ok_or(StorageError::NoSuchEntity(entity))?;
        let segment = self.segment(seg)?;
        self.pool.access(PageKey { segment: seg, page: rid.page });
        decode_entity(segment.get(rid)?)
    }

    /// Scans all entities of `seg`, invoking `f` for each. Touches the
    /// buffer pool once per page, so I/O deltas around a scan reflect the
    /// pages read.
    pub fn scan(
        &self,
        seg: SegmentId,
        f: impl FnMut(&Entity),
    ) -> Result<(), StorageError> {
        let mut io = IoStats::default();
        self.scan_tracked(seg, f, &mut io)
    }

    /// Like [`ReadView::scan`], but additionally accumulates *this scan's*
    /// page accesses into `io` — `logical_reads` per page touched,
    /// `physical_reads` per buffer-pool miss, `evictions` per page the
    /// admissions displaced. The pool's global counters are updated too;
    /// the local delta is what lets concurrent sessions report per-query
    /// I/O without double-counting each other's traffic.
    pub fn scan_tracked(
        &self,
        seg: SegmentId,
        mut f: impl FnMut(&Entity),
        io: &mut IoStats,
    ) -> Result<(), StorageError> {
        let segment = self.segment(seg)?;
        for page_idx in 0..segment.page_count() as u32 {
            let (hit, evicted) =
                self.pool.access_tracked(PageKey { segment: seg, page: page_idx });
            io.logical_reads += 1;
            io.physical_reads += u64::from(!hit);
            io.evictions += evicted;
            let Some(page) = segment.page(page_idx) else {
                // page_count() bounds the loop; a miss means the segment
                // mutated underneath us, which the scan treats as data loss.
                return Err(StorageError::NoSuchRecord(
                    seg,
                    crate::segment::RecordId {
                        page: page_idx,
                        slot: crate::page::SlotId(0),
                    },
                ));
            };
            for (_, bytes) in page.iter() {
                f(&decode_entity(bytes)?);
            }
        }
        Ok(())
    }

    /// Collects all entities of `seg` into a vector (testing convenience).
    pub fn scan_collect(&self, seg: SegmentId) -> Result<Vec<Entity>, StorageError> {
        let mut out = Vec::new();
        self.scan(seg, |e| out.push(e.clone()))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, Value};

    fn entity(table: &mut UniversalTable, id: u64, attrs: &[(&str, i64)]) -> Entity {
        let attrs: Vec<(AttrId, Value)> = attrs
            .iter()
            .map(|(name, v)| (table.catalog_mut().intern(name), Value::Int(*v)))
            .collect();
        Entity::new(EntityId(id), attrs).unwrap()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = UniversalTable::new(64);
        let seg = t.create_segment();
        let e = entity(&mut t, 1, &[("name", 1), ("weight", 198)]);
        t.insert(seg, &e).unwrap();
        assert_eq!(t.entity_count(), 1);
        assert_eq!(t.location(EntityId(1)), Some(seg));
        assert_eq!(t.get(EntityId(1)).unwrap(), e);
        let removed = t.delete(EntityId(1)).unwrap();
        assert_eq!(removed, e);
        assert_eq!(t.entity_count(), 0);
        assert!(matches!(
            t.get(EntityId(1)),
            Err(StorageError::NoSuchEntity(_))
        ));
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut t = UniversalTable::new(64);
        let seg = t.create_segment();
        let e = entity(&mut t, 1, &[("a", 1)]);
        t.insert(seg, &e).unwrap();
        assert!(matches!(
            t.insert(seg, &e),
            Err(StorageError::DuplicateEntity(EntityId(1)))
        ));
    }

    #[test]
    fn move_entity_relocates() {
        let mut t = UniversalTable::new(64);
        let a = t.create_segment();
        let b = t.create_segment();
        let e = entity(&mut t, 7, &[("x", 1)]);
        t.insert(a, &e).unwrap();
        t.move_entity(EntityId(7), b).unwrap();
        assert_eq!(t.location(EntityId(7)), Some(b));
        assert_eq!(t.segment(a).unwrap().record_count(), 0);
        assert_eq!(t.segment(b).unwrap().record_count(), 1);
        assert_eq!(t.get(EntityId(7)).unwrap(), e);
        // Same-segment move is a no-op.
        t.move_entity(EntityId(7), b).unwrap();
        assert_eq!(t.location(EntityId(7)), Some(b));
    }

    #[test]
    fn scan_visits_every_entity_and_counts_pages() {
        let mut t = UniversalTable::new(64);
        let seg = t.create_segment();
        for i in 0..100 {
            let e = entity(&mut t, i, &[("a", i as i64), ("b", 1)]);
            t.insert(seg, &e).unwrap();
        }
        let before = t.io_stats();
        let got = t.scan_collect(seg).unwrap();
        assert_eq!(got.len(), 100);
        let delta = t.io_stats().since(&before);
        assert_eq!(
            delta.logical_reads as usize,
            t.segment(seg).unwrap().page_count()
        );
    }

    #[test]
    fn drop_segment_requires_empty() {
        let mut t = UniversalTable::new(64);
        let seg = t.create_segment();
        t.drop_segment(seg).unwrap();
        assert!(matches!(
            t.drop_segment(seg),
            Err(StorageError::NoSuchSegment(_))
        ));
    }

    #[test]
    #[should_panic(expected = "non-empty segment")]
    fn drop_nonempty_segment_panics() {
        let mut t = UniversalTable::new(64);
        let seg = t.create_segment();
        let e = entity(&mut t, 1, &[("a", 1)]);
        t.insert(seg, &e).unwrap();
        let _ = t.drop_segment(seg);
    }

    #[test]
    fn detach_attach_moves_segments_between_tables() {
        let mut src = UniversalTable::new(64);
        let seg = src.create_segment();
        let mut entities = Vec::new();
        for i in 0..20 {
            let e = entity(&mut src, i, &[("a", i as i64)]);
            src.insert(seg, &e).unwrap();
            entities.push(e);
        }
        src.delete(EntityId(3)).unwrap();
        let detached = src.detach_segment(seg).unwrap();
        assert_eq!(src.entity_count(), 0);
        assert!(matches!(src.segment(seg), Err(StorageError::NoSuchSegment(_))));

        let mut dst = UniversalTable::new(64);
        dst.catalog_mut().intern("a");
        dst.create_segment(); // occupy id 0 so the attach re-brands
        let new_id = dst.attach_segment(detached).unwrap();
        assert_ne!(new_id, seg);
        assert_eq!(dst.entity_count(), 19);
        for e in &entities {
            if e.id() == EntityId(3) {
                assert!(dst.get(e.id()).is_err());
            } else {
                assert_eq!(&dst.get(e.id()).unwrap(), e);
                assert_eq!(dst.location(e.id()), Some(new_id));
            }
        }
    }

    #[test]
    fn attach_rejects_duplicate_entities() {
        let mut src = UniversalTable::new(64);
        let seg = src.create_segment();
        let e = entity(&mut src, 1, &[("a", 1)]);
        src.insert(seg, &e).unwrap();
        let detached = src.detach_segment(seg).unwrap();

        let mut dst = UniversalTable::new(64);
        let dseg = dst.create_segment();
        let clash = entity(&mut dst, 1, &[("a", 9)]);
        dst.insert(dseg, &clash).unwrap();
        assert!(matches!(
            dst.attach_segment(detached),
            Err(StorageError::DuplicateEntity(EntityId(1)))
        ));
        // Nothing was mutated.
        assert_eq!(dst.get(EntityId(1)).unwrap(), clash);
        assert_eq!(dst.segment_count(), 1);
    }

    #[test]
    fn read_view_is_send_sync_and_agrees_with_table() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let mut t = UniversalTable::with_pool(BufferPool::with_shards(64, 4));
        let seg = t.create_segment();
        let e = entity(&mut t, 1, &[("a", 1), ("b", 2)]);
        t.insert(seg, &e).unwrap();
        let view = t.read_view();
        assert_send_sync(&view);
        assert_eq!(view.entity_count(), 1);
        assert_eq!(view.universe(), t.universe());
        assert_eq!(view.location(EntityId(1)), Some(seg));
        assert_eq!(view.get(EntityId(1)).unwrap(), e);
        assert_eq!(view.scan_collect(seg).unwrap(), vec![e]);
        assert_eq!(
            view.segment_ids().collect::<Vec<_>>(),
            t.segment_ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn read_view_scans_run_concurrently() {
        let mut t = UniversalTable::with_pool(BufferPool::with_shards(32, 4));
        let segs: Vec<SegmentId> = (0..4).map(|_| t.create_segment()).collect();
        for i in 0..200u64 {
            let e = entity(&mut t, i, &[("a", i as i64)]);
            t.insert(segs[(i % 4) as usize], &e).unwrap();
        }
        let view = t.read_view();
        let counts: Vec<usize> = std::thread::scope(|s| {
            segs.iter()
                .map(|&seg| {
                    s.spawn(move || {
                        let mut n = 0;
                        view.scan(seg, |_| n += 1).unwrap();
                        n
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 200);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let mut t = UniversalTable::new(64);
        let seg = t.create_segment();
        let e1 = entity(&mut t, 1, &[("a", 1)]);
        t.insert(seg, &e1).unwrap();
        let snap = t.freeze();
        assert_send_sync(&snap);
        // Mutate the live table every way a writer can.
        let e2 = entity(&mut t, 2, &[("a", 2), ("b", 3)]);
        t.insert(seg, &e2).unwrap();
        t.delete(EntityId(1)).unwrap();
        let extra = t.create_segment();
        // The snapshot still sees exactly the pre-mutation state.
        let view = snap.view();
        assert_eq!(view.entity_count(), 1);
        assert_eq!(view.get(EntityId(1)).unwrap(), e1);
        assert!(matches!(view.get(EntityId(2)), Err(StorageError::NoSuchEntity(_))));
        assert!(view.segment(extra).is_err());
        assert_eq!(view.scan_collect(seg).unwrap(), vec![e1]);
        // The live table sees the post-mutation state.
        assert_eq!(t.entity_count(), 1);
        assert_eq!(t.get(EntityId(2)).unwrap(), e2);
    }

    #[test]
    fn segment_ids_are_fresh_and_sorted() {
        let mut t = UniversalTable::new(64);
        let a = t.create_segment();
        let b = t.create_segment();
        t.drop_segment(a).unwrap();
        let c = t.create_segment();
        assert_ne!(c, a, "ids are never recycled");
        let ids: Vec<SegmentId> = t.segment_ids().collect();
        assert_eq!(ids, vec![b, c]);
    }
}
