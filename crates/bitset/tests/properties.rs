//! Property tests: every bitset representation must agree with a reference
//! implementation built on `BTreeSet<u32>`.

use cind_bitset::{BitSetOps, FixedBitSet, GrowableBitSet, HybridBitSet, SparseBitSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: u32 = 256;

fn bits() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..UNIVERSE, 0..64)
}

/// Reference counts computed with BTreeSet.
fn reference(a: &[u32], b: &[u32]) -> (u32, u32, u32, u32, u32) {
    let sa: BTreeSet<u32> = a.iter().copied().collect();
    let sb: BTreeSet<u32> = b.iter().copied().collect();
    let and = sa.intersection(&sb).count() as u32;
    let or = sa.union(&sb).count() as u32;
    let xor = sa.symmetric_difference(&sb).count() as u32;
    let a_not_b = sa.difference(&sb).count() as u32;
    let b_not_a = sb.difference(&sa).count() as u32;
    (and, or, xor, a_not_b, b_not_a)
}

macro_rules! agree_with_reference {
    ($name:ident, $make:expr) => {
        proptest! {
            #[test]
            fn $name(a in bits(), b in bits()) {
                let (and, or, xor, a_not_b, b_not_a) = reference(&a, &b);
                let sa = $make(&a);
                let sb = $make(&b);
                prop_assert_eq!(sa.and_count(&sb), and);
                prop_assert_eq!(sa.or_count(&sb), or);
                prop_assert_eq!(sa.xor_count(&sb), xor);
                prop_assert_eq!(sa.andnot_count(&sb), a_not_b);
                prop_assert_eq!(sb.andnot_count(&sa), b_not_a);
                prop_assert_eq!(sa.is_disjoint(&sb), and == 0);
                prop_assert_eq!(sa.is_subset(&sb), a_not_b == 0);
                let fused = sa.fused_counts(&sb);
                prop_assert_eq!(fused.and, and);
                prop_assert_eq!(fused.or, or);
                prop_assert_eq!(fused.left, sa.count());
                prop_assert_eq!(fused.right, sb.count());
                // Count and iteration agree with the reference set.
                let ra: BTreeSet<u32> = a.iter().copied().collect();
                prop_assert_eq!(sa.count() as usize, ra.len());
                let iterated: Vec<u32> = sa.iter_ones().collect();
                let expect: Vec<u32> = ra.iter().copied().collect();
                prop_assert_eq!(iterated, expect);
            }
        }
    };
}

agree_with_reference!(fixed_agrees, |v: &[u32]| FixedBitSet::from_iter(
    UNIVERSE as usize,
    v.iter().copied()
));
agree_with_reference!(sparse_agrees, |v: &[u32]| SparseBitSet::from_iter(
    v.iter().copied()
));
agree_with_reference!(growable_agrees, |v: &[u32]| GrowableBitSet::from_iter(
    v.iter().copied()
));
agree_with_reference!(hybrid_agrees, |v: &[u32]| HybridBitSet::from_iter(
    UNIVERSE as usize,
    v.iter().copied()
));

proptest! {
    /// insert/remove sequences leave every representation equal to the
    /// reference set.
    #[test]
    fn mutation_sequences_agree(ops in prop::collection::vec((any::<bool>(), 0..UNIVERSE), 0..128)) {
        let mut reference = BTreeSet::new();
        let mut fixed = FixedBitSet::new(UNIVERSE as usize);
        let mut sparse = SparseBitSet::new();
        let mut growable = GrowableBitSet::new();
        let mut hybrid = HybridBitSet::new(UNIVERSE as usize);
        for (is_insert, bit) in ops {
            if is_insert {
                let expect = reference.insert(bit);
                prop_assert_eq!(fixed.insert(bit), expect);
                prop_assert_eq!(sparse.insert(bit), expect);
                prop_assert_eq!(growable.insert(bit), expect);
                prop_assert_eq!(hybrid.insert(bit), expect);
            } else {
                let expect = reference.remove(&bit);
                prop_assert_eq!(fixed.remove(bit), expect);
                prop_assert_eq!(sparse.remove(bit), expect);
                prop_assert_eq!(growable.remove(bit), expect);
                prop_assert_eq!(hybrid.remove(bit), expect);
            }
        }
        let expect: Vec<u32> = reference.iter().copied().collect();
        prop_assert_eq!(fixed.iter_ones().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(sparse.iter_ones().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(growable.iter_ones().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(hybrid.iter_ones().collect::<Vec<_>>(), expect);
    }

    /// union_with equals the reference union.
    #[test]
    fn union_with_agrees(a in bits(), b in bits()) {
        let ra: BTreeSet<u32> = a.iter().copied().collect();
        let rb: BTreeSet<u32> = b.iter().copied().collect();
        let expect: Vec<u32> = ra.union(&rb).copied().collect();

        let mut fa = FixedBitSet::from_iter(UNIVERSE as usize, a.iter().copied());
        fa.union_with(&FixedBitSet::from_iter(UNIVERSE as usize, b.iter().copied()));
        prop_assert_eq!(fa.iter_ones().collect::<Vec<_>>(), expect.clone());

        let mut sa = SparseBitSet::from_iter(a.iter().copied());
        sa.union_with(&SparseBitSet::from_iter(b.iter().copied()));
        prop_assert_eq!(sa.iter_ones().collect::<Vec<_>>(), expect.clone());

        let mut ha = HybridBitSet::from_iter(UNIVERSE as usize, a.iter().copied());
        ha.union_with(&HybridBitSet::from_iter(UNIVERSE as usize, b.iter().copied()));
        prop_assert_eq!(ha.iter_ones().collect::<Vec<_>>(), expect);
    }

    /// The raw word-slice kernels agree with the reference, including with
    /// mismatched slice lengths (implicit zero-extension).
    #[test]
    fn word_kernels_agree(a in bits(), b in bits(), cap_a in 1u32..=UNIVERSE, cap_b in 1u32..=UNIVERSE) {
        let a: Vec<u32> = a.into_iter().filter(|&x| x < cap_a).collect();
        let b: Vec<u32> = b.into_iter().filter(|&x| x < cap_b).collect();
        let (and, or, _, _, _) = reference(&a, &b);
        let fa = FixedBitSet::from_iter(cap_a as usize, a.iter().copied());
        let fb = FixedBitSet::from_iter(cap_b as usize, b.iter().copied());
        let fused = cind_bitset::words::fused_counts(fa.blocks(), fb.blocks());
        prop_assert_eq!(fused.and, and);
        prop_assert_eq!(fused.or, or);
        prop_assert_eq!(fused.left, fa.count());
        prop_assert_eq!(fused.right, fb.count());
        prop_assert_eq!(
            cind_bitset::words::is_disjoint(fa.blocks(), fb.blocks()),
            and == 0
        );
        prop_assert_eq!(cind_bitset::words::and_count(fa.blocks(), fb.blocks()), and);
        prop_assert_eq!(
            cind_bitset::words::iter_ones(fa.blocks()).collect::<Vec<_>>(),
            fa.iter_ones().collect::<Vec<_>>()
        );
        // Bitsets of unequal capacity take the same early-exit path.
        prop_assert_eq!(fa.is_disjoint(&fb), and == 0);
        let cross = fa.fused_counts(&fb);
        prop_assert_eq!(cross.and, and);
        prop_assert_eq!(cross.or, or);
    }
}
