//! Sorted-vector bitset for very sparse sets.

use crate::ops::BitSetOps;

/// A bitset stored as a sorted `Vec<u32>` of set bit indices.
///
/// For entity synopses in long-tailed data the population is tiny (DBpedia
/// persons: median ≈ 5 of 100 attributes), so a sorted vector is smaller than
/// a dense block array and intersection counts via merge are as fast as the
/// popcount loop while touching less memory.
///
/// There is no fixed universe: any `u32` index is valid.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SparseBitSet {
    bits: Vec<u32>,
}

impl SparseBitSet {
    /// Creates an empty sparse bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sparse bitset from arbitrary (unsorted, possibly duplicate)
    /// indices.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(bits: impl IntoIterator<Item = u32>) -> Self {
        let mut bits: Vec<u32> = bits.into_iter().collect();
        bits.sort_unstable();
        bits.dedup();
        Self { bits }
    }

    /// The sorted slice of set bit indices.
    pub fn as_slice(&self) -> &[u32] {
        &self.bits
    }

    /// The largest set bit, if any.
    pub fn max_bit(&self) -> Option<u32> {
        self.bits.last().copied()
    }

    /// Merge-count of the intersection of two sorted slices.
    fn merge_and_count(a: &[u32], b: &[u32]) -> u32 {
        // Galloping would win for very asymmetric sizes, but synopsis sets
        // are small (tens of elements); a plain merge is fastest in practice.
        let (mut i, mut j, mut n) = (0, 0, 0u32);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

impl BitSetOps for SparseBitSet {
    fn insert(&mut self, bit: u32) -> bool {
        match self.bits.binary_search(&bit) {
            Ok(_) => false,
            Err(pos) => {
                self.bits.insert(pos, bit);
                true
            }
        }
    }

    fn remove(&mut self, bit: u32) -> bool {
        match self.bits.binary_search(&bit) {
            Ok(pos) => {
                self.bits.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    fn contains(&self, bit: u32) -> bool {
        self.bits.binary_search(&bit).is_ok()
    }

    fn count(&self) -> u32 {
        self.bits.len() as u32
    }

    fn and_count(&self, other: &Self) -> u32 {
        Self::merge_and_count(&self.bits, &other.bits)
    }

    fn union_with(&mut self, other: &Self) {
        if other.bits.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.bits.len() + other.bits.len());
        let (a, b) = (&self.bits, &other.bits);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.bits = merged;
    }

    fn clear(&mut self) {
        self.bits.clear();
    }

    fn iter_ones(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        Box::new(self.bits.iter().copied())
    }
}

impl std::fmt::Debug for SparseBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.bits.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_sorted_and_deduped() {
        let mut s = SparseBitSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(9));
        assert!(!s.insert(5));
        assert_eq!(s.as_slice(), &[1, 5, 9]);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn from_iter_dedupes() {
        let s = SparseBitSet::from_iter([9, 1, 5, 1, 9]);
        assert_eq!(s.as_slice(), &[1, 5, 9]);
    }

    #[test]
    fn remove_and_contains() {
        let mut s = SparseBitSet::from_iter([1, 5, 9]);
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
        assert_eq!(s.as_slice(), &[1, 9]);
    }

    #[test]
    fn counts_match_definitions() {
        let a = SparseBitSet::from_iter([1, 2, 64, 130]);
        let b = SparseBitSet::from_iter([2, 3, 130, 199]);
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 6);
        assert_eq!(a.xor_count(&b), 4);
        assert_eq!(a.andnot_count(&b), 2);
        assert!(a.is_subset(&SparseBitSet::from_iter([1, 2, 3, 64, 130])));
    }

    #[test]
    fn union_with_merges() {
        let mut a = SparseBitSet::from_iter([1, 5]);
        let b = SparseBitSet::from_iter([2, 5, 9]);
        a.union_with(&b);
        assert_eq!(a.as_slice(), &[1, 2, 5, 9]);
        // Union with empty is a no-op.
        a.union_with(&SparseBitSet::new());
        assert_eq!(a.as_slice(), &[1, 2, 5, 9]);
    }

    #[test]
    fn empty_behaviour() {
        let e = SparseBitSet::new();
        let a = SparseBitSet::from_iter([1]);
        assert!(e.is_empty());
        assert_eq!(e.and_count(&a), 0);
        assert!(e.is_disjoint(&a));
        assert!(e.is_subset(&a));
        assert_eq!(e.max_bit(), None);
        assert_eq!(a.max_bit(), Some(1));
    }
}
