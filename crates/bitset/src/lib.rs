//! Bitset data structures for partition and entity synopses.
//!
//! Cinderella's partition rating (paper §IV) reduces entirely to set algebra
//! over attribute sets: `|e ∧ p|`, `|¬e ∧ p|`, `|e ∧ ¬p|`, `|e ∨ p|`, and the
//! split-starter difference `|e₁ ⊕ e₂|`. This crate provides the bitset
//! machinery those operators run on, built from scratch on `u64` blocks with
//! *fused* count operations (`and_count`, `or_count`, `xor_count`,
//! `andnot_count`) so that a rating never materialises a temporary bitset.
//!
//! Three representations are provided, all implementing [`BitSetOps`]:
//!
//! * [`FixedBitSet`] — dense `u64`-block bitset with a fixed universe size.
//!   This is the workhorse for partition synopses, where the universe (the
//!   attribute dictionary of the universal table) is known.
//! * [`SparseBitSet`] — a sorted vector of bit indices. Cheaper than a dense
//!   bitset when only a handful of bits are set, which is the common case for
//!   *entity* synopses in long-tailed data (DBpedia: most entities have
//!   2–15 of 100 attributes).
//! * [`HybridBitSet`] — starts sparse and promotes itself to dense once the
//!   population passes a density threshold. This implements the paper's
//!   future-work item of "specialized data structures" for managing a large
//!   number of synopses; the `ablations` bench quantifies the effect.
//!
//! [`GrowableBitSet`] wraps [`FixedBitSet`] with automatic universe growth
//! for callers that discover attributes on the fly.
//!
//! # Example
//!
//! ```
//! use cind_bitset::{BitSetOps, FixedBitSet};
//!
//! let mut e = FixedBitSet::new(100);
//! e.insert(3);
//! e.insert(40);
//! let mut p = FixedBitSet::new(100);
//! p.insert(3);
//! p.insert(7);
//! assert_eq!(e.and_count(&p), 1); // |e ∧ p|
//! assert_eq!(e.xor_count(&p), 2); // |e ⊕ p|
//! assert_eq!(e.or_count(&p), 3);  // |e ∨ p|
//! assert_eq!(p.andnot_count(&e), 1); // |¬e ∧ p|
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixed;
mod growable;
mod hybrid;
mod ops;
mod sparse;
pub mod words;

pub use fixed::FixedBitSet;
pub use growable::GrowableBitSet;
pub use hybrid::{HybridBitSet, PROMOTE_AT};
pub use ops::{BitSetOps, FusedCounts};
pub use sparse::SparseBitSet;

/// Number of bits per storage block.
pub(crate) const BITS: usize = u64::BITS as usize;

/// Number of `u64` blocks needed to hold `nbits` bits.
pub(crate) fn blocks_for(nbits: usize) -> usize {
    nbits.div_ceil(BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_for_boundaries() {
        assert_eq!(blocks_for(0), 0);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(64), 1);
        assert_eq!(blocks_for(65), 2);
        assert_eq!(blocks_for(128), 2);
        assert_eq!(blocks_for(129), 3);
    }
}
