//! Word-slice kernels shared by the bitset types and the synopsis arena.
//!
//! The rating and pruning hot paths operate on raw `&[u64]` rows (packed
//! arena slots, query synopses) rather than on owned bitsets, so the fused
//! loops live here as free functions over slices. Both operands are
//! implicitly zero-extended: trailing words missing from the shorter slice
//! count as empty.

use crate::ops::FusedCounts;

/// Fused one-pass kernel: `|a ∧ b|`, `|a ∨ b|`, `|a|`, and `|b|` from a
/// single walk over the zipped words. This replaces the three separate
/// popcount passes a rating otherwise needs (intersection, plus one
/// cardinality per operand).
#[must_use]
pub fn fused_counts(a: &[u64], b: &[u64]) -> FusedCounts {
    let common = a.len().min(b.len());
    let mut c = FusedCounts::default();
    for (&wa, &wb) in a[..common].iter().zip(&b[..common]) {
        c.and += (wa & wb).count_ones();
        c.or += (wa | wb).count_ones();
        c.left += wa.count_ones();
        c.right += wb.count_ones();
    }
    for &wa in &a[common..] {
        let n = wa.count_ones();
        c.left += n;
        c.or += n;
    }
    for &wb in &b[common..] {
        let n = wb.count_ones();
        c.right += n;
        c.or += n;
    }
    c
}

/// Early-exit disjointness test: stops at the first word with a shared bit
/// instead of popcounting the whole intersection. This is the planner's
/// `|p ∧ q| = 0` pruning test.
#[must_use]
pub fn is_disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&wa, &wb)| wa & wb == 0)
}

/// `|a ∧ b|` without the union/cardinality bookkeeping.
#[must_use]
pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(&wa, &wb)| (wa & wb).count_ones()).sum()
}

/// `dst ∨= src`. `dst` must be at least as long as `src`.
///
/// # Panics
/// Panics if `dst` is shorter than `src`.
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    assert!(dst.len() >= src.len(), "or_into destination too short");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Iterator over the set bit indices of a word slice, ascending.
pub fn iter_ones(words: &[u64]) -> impl Iterator<Item = u32> + '_ {
    words.iter().enumerate().flat_map(|(i, &w)| {
        let mut w = w;
        std::iter::from_fn(move || {
            if w == 0 {
                return None;
            }
            let tz = w.trailing_zeros();
            w &= w - 1;
            Some((i * crate::BITS) as u32 + tz)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_counts_match_naive() {
        let a = [0b1011u64, 0, u64::MAX];
        let b = [0b0110u64, 1];
        let c = fused_counts(&a, &b);
        assert_eq!(c.and, 1); // bit 1
        assert_eq!(c.left, 3 + 64);
        assert_eq!(c.right, 3);
        assert_eq!(c.or, c.left + c.right - c.and);
        // Symmetric.
        let r = fused_counts(&b, &a);
        assert_eq!((r.and, r.or, r.left, r.right), (c.and, c.or, c.right, c.left));
    }

    #[test]
    fn empty_slices() {
        let c = fused_counts(&[], &[5]);
        assert_eq!((c.and, c.or, c.left, c.right), (0, 2, 0, 2));
        assert!(is_disjoint(&[], &[u64::MAX]));
        assert_eq!(and_count(&[], &[]), 0);
    }

    #[test]
    fn disjoint_and_overlap() {
        assert!(is_disjoint(&[0b01, 0b10], &[0b10, 0b01]));
        assert!(!is_disjoint(&[0b01, 0b10], &[0b11, 0]));
        // Tail beyond the shorter operand never overlaps.
        assert!(is_disjoint(&[0b01], &[0b10, u64::MAX]));
    }

    #[test]
    fn or_into_accumulates() {
        let mut dst = [0b01u64, 0];
        or_into(&mut dst, &[0b10]);
        assert_eq!(dst, [0b11, 0]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn or_into_rejects_short_destination() {
        or_into(&mut [0u64], &[1, 2]);
    }

    #[test]
    fn iter_ones_ascending_across_words() {
        let ones: Vec<u32> = iter_ones(&[1 << 63, 0, 0b101]).collect();
        assert_eq!(ones, vec![63, 128, 130]);
    }
}
