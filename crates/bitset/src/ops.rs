//! The common operation set shared by all synopsis bitset representations.

/// The four cardinalities one entity/partition rating needs, produced by a
/// single fused pass over two bit sets: `|a ∧ b|`, `|a ∨ b|`, `|a|`, `|b|`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FusedCounts {
    /// `|a ∧ b|` — intersection cardinality.
    pub and: u32,
    /// `|a ∨ b|` — union cardinality.
    pub or: u32,
    /// `|a|` — cardinality of the left operand.
    pub left: u32,
    /// `|b|` — cardinality of the right operand.
    pub right: u32,
}

/// Set-algebra operations required by Cinderella's rating and split-starter
/// maintenance.
///
/// All `*_count` methods are *fused*: they compute the cardinality of the
/// combined set without materialising it. Implementations must treat the two
/// operands as subsets of a common (possibly implicit) universe; bits beyond
/// either operand's capacity are considered unset.
pub trait BitSetOps {
    /// Inserts `bit`. Returns `true` if the bit was newly set.
    fn insert(&mut self, bit: u32) -> bool;

    /// Removes `bit`. Returns `true` if the bit was previously set.
    fn remove(&mut self, bit: u32) -> bool;

    /// Whether `bit` is set.
    fn contains(&self, bit: u32) -> bool;

    /// Number of set bits (`|s|`).
    fn count(&self) -> u32;

    /// Whether no bit is set.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// `|self ∧ other|` — size of the intersection.
    fn and_count(&self, other: &Self) -> u32;

    /// All four rating cardinalities (`|self ∧ other|`, `|self ∨ other|`,
    /// `|self|`, `|other|`) in one call. The default composes the separate
    /// counts; dense representations override it with a single word loop.
    fn fused_counts(&self, other: &Self) -> FusedCounts {
        let and = self.and_count(other);
        let left = self.count();
        let right = other.count();
        FusedCounts { and, or: left + right - and, left, right }
    }

    /// `|self ∨ other|` — size of the union.
    fn or_count(&self, other: &Self) -> u32 {
        self.count() + other.count() - self.and_count(other)
    }

    /// `|self ⊕ other|` — size of the symmetric difference. This is the
    /// paper's `DIFF(e₁, e₂)` used for split-starter maintenance.
    fn xor_count(&self, other: &Self) -> u32 {
        self.count() + other.count() - 2 * self.and_count(other)
    }

    /// `|self ∧ ¬other|` — bits set here but not in `other`.
    ///
    /// With `self = p` and `other = e` this is the paper's `|¬e ∧ p|`
    /// (attributes the partition has but the entity lacks); with the
    /// operands swapped it is `|e ∧ ¬p|`.
    fn andnot_count(&self, other: &Self) -> u32 {
        self.count() - self.and_count(other)
    }

    /// Whether the intersection is empty (`|self ∧ other| = 0`) — the
    /// partition-pruning test.
    fn is_disjoint(&self, other: &Self) -> bool {
        self.and_count(other) == 0
    }

    /// Whether every bit of `self` is also set in `other`.
    fn is_subset(&self, other: &Self) -> bool {
        self.and_count(other) == self.count()
    }

    /// Sets every bit of `other` in `self` (`self ∨= other`). Used to fold an
    /// entity synopsis into a partition synopsis.
    fn union_with(&mut self, other: &Self);

    /// Removes every bit set in `self` (resets to the empty set).
    fn clear(&mut self);

    /// The set bits in ascending order.
    fn iter_ones(&self) -> Box<dyn Iterator<Item = u32> + '_>;
}
