//! Adaptive bitset that promotes from sparse to dense by population.

use crate::fixed::FixedBitSet;
use crate::ops::BitSetOps;
use crate::sparse::SparseBitSet;

/// Population at which a [`HybridBitSet`] promotes its sparse representation
/// to a dense one. 16 sorted `u32`s occupy one cache line; beyond that the
/// dense popcount loop wins for the synopsis universes Cinderella sees.
pub const PROMOTE_AT: usize = 16;

/// A bitset that starts as a [`SparseBitSet`] and promotes itself to a
/// [`FixedBitSet`] once it holds more than [`PROMOTE_AT`] bits.
///
/// Partition synopses in a freshly split partition hold few attributes and
/// grow as heterogeneous entities are admitted; the hybrid keeps small
/// synopses compact (so scanning a large partition catalog stays
/// cache-friendly — the paper's stated scaling concern) while large synopses
/// get dense popcount ratings. Promotion is one-way: deletion below the
/// threshold does not demote, avoiding oscillation.
///
/// ```
/// use cind_bitset::{BitSetOps, HybridBitSet, PROMOTE_AT};
///
/// let mut s = HybridBitSet::new(1000);
/// for bit in 0..PROMOTE_AT as u32 {
///     s.insert(bit);
/// }
/// assert!(!s.is_dense(), "small sets stay sparse");
/// s.insert(999);
/// assert!(s.is_dense(), "crossing the threshold promotes");
/// assert_eq!(s.count(), PROMOTE_AT as u32 + 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HybridBitSet {
    /// Few bits: sorted-vector representation.
    Sparse(SparseBitSet),
    /// Many bits: dense block representation.
    Dense(FixedBitSet),
}

impl Default for HybridBitSet {
    fn default() -> Self {
        Self::Sparse(SparseBitSet::new())
    }
}

impl HybridBitSet {
    /// Creates an empty hybrid bitset over the universe `0..capacity`.
    ///
    /// The capacity is only used when (and if) the set promotes to dense.
    pub fn new(capacity: usize) -> Self {
        let _ = capacity; // capacity is re-derived at promotion from max bit
        Self::default()
    }

    /// Creates a hybrid bitset from bit indices, choosing the representation
    /// by the resulting population.
    pub fn from_iter(capacity: usize, bits: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::new(capacity);
        for b in bits {
            s.insert(b);
        }
        s
    }

    /// Whether the current representation is dense.
    pub fn is_dense(&self) -> bool {
        matches!(self, Self::Dense(_))
    }

    fn promote(&mut self) {
        if let Self::Sparse(s) = self {
            let cap = s.max_bit().map_or(64, |m| m as usize + 1);
            let mut dense = FixedBitSet::new(cap.max(64));
            for b in s.iter_ones() {
                dense.insert(b);
            }
            *self = Self::Dense(dense);
        }
    }
}

impl BitSetOps for HybridBitSet {
    fn insert(&mut self, bit: u32) -> bool {
        match self {
            Self::Sparse(s) => {
                let added = s.insert(bit);
                if s.count() as usize > PROMOTE_AT {
                    self.promote();
                }
                added
            }
            Self::Dense(d) => {
                if bit as usize >= d.capacity() {
                    d.grow((bit as usize + 1).next_power_of_two());
                }
                d.insert(bit)
            }
        }
    }

    fn remove(&mut self, bit: u32) -> bool {
        match self {
            Self::Sparse(s) => s.remove(bit),
            Self::Dense(d) => d.remove(bit),
        }
    }

    fn contains(&self, bit: u32) -> bool {
        match self {
            Self::Sparse(s) => s.contains(bit),
            Self::Dense(d) => d.contains(bit),
        }
    }

    fn count(&self) -> u32 {
        match self {
            Self::Sparse(s) => s.count(),
            Self::Dense(d) => d.count(),
        }
    }

    fn and_count(&self, other: &Self) -> u32 {
        match (self, other) {
            (Self::Sparse(a), Self::Sparse(b)) => a.and_count(b),
            (Self::Dense(a), Self::Dense(b)) => a.and_count(b),
            (Self::Sparse(a), Self::Dense(b)) | (Self::Dense(b), Self::Sparse(a)) => {
                a.iter_ones().filter(|&bit| b.contains(bit)).count() as u32
            }
        }
    }

    fn union_with(&mut self, other: &Self) {
        match other {
            Self::Sparse(o) => {
                for b in o.iter_ones() {
                    self.insert(b);
                }
            }
            Self::Dense(o) => {
                self.promote();
                if let Self::Dense(d) = self {
                    d.union_with(o);
                }
            }
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Sparse(s) => s.clear(),
            Self::Dense(d) => d.clear(),
        }
    }

    fn iter_ones(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            Self::Sparse(s) => s.iter_ones(),
            Self::Dense(d) => d.iter_ones(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_sparse_promotes_dense() {
        let mut s = HybridBitSet::new(1000);
        for i in 0..PROMOTE_AT as u32 {
            s.insert(i * 7);
        }
        assert!(!s.is_dense());
        s.insert(999);
        assert!(s.is_dense());
        assert_eq!(s.count(), PROMOTE_AT as u32 + 1);
        for i in 0..PROMOTE_AT as u32 {
            assert!(s.contains(i * 7));
        }
        assert!(s.contains(999));
    }

    #[test]
    fn promotion_is_one_way() {
        let mut s = HybridBitSet::from_iter(100, 0..(PROMOTE_AT as u32 + 1));
        assert!(s.is_dense());
        for i in 0..PROMOTE_AT as u32 + 1 {
            s.remove(i);
        }
        assert!(s.is_dense());
        assert!(s.is_empty());
    }

    #[test]
    fn mixed_representation_counts() {
        let sparse = HybridBitSet::from_iter(100, [1, 5, 9]);
        let dense = HybridBitSet::from_iter(100, 0..20);
        assert!(!sparse.is_dense());
        assert!(dense.is_dense());
        assert_eq!(sparse.and_count(&dense), 3);
        assert_eq!(dense.and_count(&sparse), 3);
        assert_eq!(sparse.or_count(&dense), 20);
        assert_eq!(sparse.xor_count(&dense), 17);
    }

    #[test]
    fn union_with_dense_promotes() {
        let mut a = HybridBitSet::from_iter(100, [1]);
        let b = HybridBitSet::from_iter(100, 0..20);
        a.union_with(&b);
        assert!(a.is_dense());
        assert_eq!(a.count(), 20);
    }

    #[test]
    fn dense_insert_past_capacity_grows() {
        let mut s = HybridBitSet::from_iter(10, 0..20);
        assert!(s.is_dense());
        s.insert(5_000);
        assert!(s.contains(5_000));
    }
}
