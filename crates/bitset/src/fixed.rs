//! Dense bitset with a fixed universe size.

use crate::ops::{BitSetOps, FusedCounts};
use crate::{blocks_for, words, BITS};

/// A dense bitset over a fixed universe `0..capacity`, stored as `u64`
/// blocks.
///
/// This is the default representation for partition synopses: the universe is
/// the attribute dictionary of the universal table (typically a few hundred
/// attributes), so a synopsis is a handful of machine words and every rating
/// count is a short fused popcount loop.
///
/// Out-of-range bits: `insert` panics (it indicates a catalog bug),
/// `contains`/`remove` simply report the bit as unset.
#[derive(Clone, Default)]
pub struct FixedBitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

/// Equality is *set* equality: two bitsets with the same set bits compare
/// equal regardless of capacity (the universe is implicit and may have grown
/// on one side).
impl PartialEq for FixedBitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.blocks.len() <= other.blocks.len() {
            (&self.blocks, &other.blocks)
        } else {
            (&other.blocks, &self.blocks)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|b| *b == 0)
    }
}

impl Eq for FixedBitSet {}

impl std::hash::Hash for FixedBitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Trim trailing zero blocks so equal sets hash equally.
        let trimmed = match self.blocks.iter().rposition(|b| *b != 0) {
            Some(i) => &self.blocks[..=i],
            None => &[],
        };
        trimmed.hash(state);
    }
}

impl FixedBitSet {
    /// Creates an empty bitset over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            blocks: vec![0; blocks_for(capacity)],
            capacity,
        }
    }

    /// Creates a bitset from an iterator of bit indices.
    ///
    /// # Panics
    /// Panics if any index is `>= capacity`.
    pub fn from_iter(capacity: usize, bits: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::new(capacity);
        for b in bits {
            s.insert(b);
        }
        s
    }

    /// The universe size this bitset was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Raw block view, least-significant block first.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Mutable raw block view, least-significant block first — the
    /// word-at-a-time write path for bulk candidate accumulation (ORing a
    /// 64-slot group mask beats 64 `insert` calls). Callers must keep bits
    /// at or above [`FixedBitSet::capacity`] clear; `count`, `iter_ones`,
    /// and the fused kernels trust every stored word.
    pub fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    /// Grows the universe to at least `capacity`, preserving set bits.
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.blocks.resize(blocks_for(capacity), 0);
            self.capacity = capacity;
        }
    }

    fn split(bit: u32) -> (usize, u64) {
        let bit = bit as usize;
        (bit / BITS, 1u64 << (bit % BITS))
    }

    /// Fused count over the zipped blocks of two bitsets, treating missing
    /// trailing blocks as zero.
    fn zip_count(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> u32 {
        let (short, long) = if self.blocks.len() <= other.blocks.len() {
            (&self.blocks, &other.blocks)
        } else {
            (&other.blocks, &self.blocks)
        };
        let mut n = 0u32;
        for (a, b) in short.iter().zip(long.iter()) {
            n += f(*a, *b).count_ones();
        }
        // Whether the tail contributes depends on f(0, x); and/or/xor are
        // symmetric so orientation does not matter for them. Callers needing
        // asymmetric ops (andnot) use the default trait formulation instead.
        for b in &long[short.len()..] {
            n += f(0, *b).count_ones();
        }
        n
    }
}

impl BitSetOps for FixedBitSet {
    fn insert(&mut self, bit: u32) -> bool {
        assert!(
            (bit as usize) < self.capacity,
            "bit {bit} out of range for capacity {}",
            self.capacity
        );
        let (blk, mask) = Self::split(bit);
        let was = self.blocks[blk] & mask != 0;
        self.blocks[blk] |= mask;
        !was
    }

    fn remove(&mut self, bit: u32) -> bool {
        let (blk, mask) = Self::split(bit);
        match self.blocks.get_mut(blk) {
            Some(b) => {
                let was = *b & mask != 0;
                *b &= !mask;
                was
            }
            None => false,
        }
    }

    fn contains(&self, bit: u32) -> bool {
        let (blk, mask) = Self::split(bit);
        self.blocks.get(blk).is_some_and(|b| b & mask != 0)
    }

    fn count(&self) -> u32 {
        self.blocks.iter().map(|b| b.count_ones()).sum()
    }

    fn and_count(&self, other: &Self) -> u32 {
        self.zip_count(other, |a, b| a & b)
    }

    fn fused_counts(&self, other: &Self) -> FusedCounts {
        words::fused_counts(&self.blocks, &other.blocks)
    }

    fn is_disjoint(&self, other: &Self) -> bool {
        // Early exit on the first shared word, instead of popcounting the
        // whole intersection — the planner's per-partition pruning test.
        words::is_disjoint(&self.blocks, &other.blocks)
    }

    fn or_count(&self, other: &Self) -> u32 {
        self.zip_count(other, |a, b| a | b)
    }

    fn xor_count(&self, other: &Self) -> u32 {
        self.zip_count(other, |a, b| a ^ b)
    }

    fn union_with(&mut self, other: &Self) {
        if other.capacity > self.capacity {
            self.grow(other.capacity);
        }
        for (dst, src) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *dst |= src;
        }
    }

    fn clear(&mut self) {
        self.blocks.fill(0);
    }

    fn iter_ones(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        Box::new(Ones {
            blocks: &self.blocks,
            current: self.blocks.first().copied().unwrap_or(0),
            block_idx: 0,
        })
    }
}

impl std::fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

/// Iterator over set bits of a block slice, ascending.
struct Ones<'a> {
    blocks: &'a [u64],
    current: u64,
    block_idx: usize,
}

impl Iterator for Ones<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let tz = self.current.trailing_zeros();
        self.current &= self.current - 1; // clear lowest set bit
        Some((self.block_idx * BITS) as u32 + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = FixedBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        FixedBitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = FixedBitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn fused_counts_match_definitions() {
        let a = FixedBitSet::from_iter(200, [1, 2, 64, 130]);
        let b = FixedBitSet::from_iter(200, [2, 3, 130, 199]);
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 6);
        assert_eq!(a.xor_count(&b), 4);
        assert_eq!(a.andnot_count(&b), 2);
        assert_eq!(b.andnot_count(&a), 2);
        assert!(!a.is_disjoint(&b));
        let c = FixedBitSet::from_iter(200, [5, 77]);
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn counts_with_different_capacities() {
        let a = FixedBitSet::from_iter(64, [1, 63]);
        let b = FixedBitSet::from_iter(300, [1, 290]);
        assert_eq!(a.and_count(&b), 1);
        assert_eq!(a.or_count(&b), 3);
        assert_eq!(a.xor_count(&b), 2);
        assert_eq!(b.and_count(&a), 1);
        assert_eq!(b.or_count(&a), 3);
    }

    #[test]
    fn union_with_grows() {
        let mut a = FixedBitSet::from_iter(64, [1]);
        let b = FixedBitSet::from_iter(300, [290]);
        a.union_with(&b);
        assert!(a.contains(1));
        assert!(a.contains(290));
        assert_eq!(a.capacity(), 300);
    }

    #[test]
    fn subset_and_clear() {
        let mut a = FixedBitSet::from_iter(100, [1, 2]);
        let b = FixedBitSet::from_iter(100, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.clear();
        assert!(a.is_empty());
        assert!(a.is_subset(&b));
    }

    #[test]
    fn blocks_mut_word_writes_are_visible() {
        let mut s = FixedBitSet::new(130);
        s.blocks_mut()[1] |= 1u64 << 3;
        assert!(s.contains(67));
        assert_eq!(s.count(), 1);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![67]);
    }

    #[test]
    fn iter_ones_ascending() {
        let s = FixedBitSet::from_iter(200, [199, 0, 64, 63, 65]);
        let v: Vec<u32> = s.iter_ones().collect();
        assert_eq!(v, vec![0, 63, 64, 65, 199]);
    }

    #[test]
    fn iter_ones_empty() {
        let s = FixedBitSet::new(128);
        assert_eq!(s.iter_ones().count(), 0);
        let z = FixedBitSet::new(0);
        assert_eq!(z.iter_ones().count(), 0);
    }

    #[test]
    fn equality_ignores_capacity() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = FixedBitSet::from_iter(10, [1, 3]);
        let b = FixedBitSet::from_iter(500, [1, 3]);
        assert_eq!(a, b);
        let hash = |s: &FixedBitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        let c = FixedBitSet::from_iter(500, [1, 3, 400]);
        assert_ne!(a, c);
        assert_ne!(c, a);
        assert_eq!(FixedBitSet::new(0), FixedBitSet::new(300));
    }

    #[test]
    fn debug_renders_as_set() {
        let s = FixedBitSet::from_iter(10, [1, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
