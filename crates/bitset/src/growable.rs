//! Dense bitset that grows its universe on demand.

use crate::fixed::FixedBitSet;
use crate::ops::BitSetOps;

/// A [`FixedBitSet`] that transparently grows when a bit beyond the current
/// capacity is inserted.
///
/// Used where the attribute universe is discovered incrementally — e.g. while
/// streaming entities into a fresh universal table before the attribute
/// catalog has stabilised.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct GrowableBitSet {
    inner: FixedBitSet,
}

impl GrowableBitSet {
    /// Creates an empty growable bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitset pre-sized for the universe `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: FixedBitSet::new(capacity),
        }
    }

    /// Creates a bitset from an iterator of bit indices.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(bits: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::new();
        for b in bits {
            s.insert(b);
        }
        s
    }

    /// Current universe size.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Borrows the underlying fixed bitset.
    pub fn as_fixed(&self) -> &FixedBitSet {
        &self.inner
    }

    /// Consumes self, yielding the underlying fixed bitset grown to exactly
    /// `capacity` (useful to normalise capacities across a table).
    pub fn into_fixed(mut self, capacity: usize) -> FixedBitSet {
        self.inner.grow(capacity);
        self.inner
    }
}

impl BitSetOps for GrowableBitSet {
    fn insert(&mut self, bit: u32) -> bool {
        if bit as usize >= self.inner.capacity() {
            // Grow geometrically to amortise repeated growth during streaming.
            let want = (bit as usize + 1).max(self.inner.capacity() * 2).max(64);
            self.inner.grow(want);
        }
        self.inner.insert(bit)
    }

    fn remove(&mut self, bit: u32) -> bool {
        self.inner.remove(bit)
    }

    fn contains(&self, bit: u32) -> bool {
        self.inner.contains(bit)
    }

    fn count(&self) -> u32 {
        self.inner.count()
    }

    fn and_count(&self, other: &Self) -> u32 {
        self.inner.and_count(&other.inner)
    }

    fn or_count(&self, other: &Self) -> u32 {
        self.inner.or_count(&other.inner)
    }

    fn xor_count(&self, other: &Self) -> u32 {
        self.inner.xor_count(&other.inner)
    }

    fn union_with(&mut self, other: &Self) {
        self.inner.union_with(&other.inner);
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn iter_ones(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        self.inner.iter_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_insert() {
        let mut s = GrowableBitSet::new();
        assert_eq!(s.capacity(), 0);
        assert!(s.insert(1000));
        assert!(s.capacity() > 1000);
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn growth_is_geometric() {
        let mut s = GrowableBitSet::new();
        s.insert(0);
        let c1 = s.capacity();
        assert!(c1 >= 64);
        s.insert(c1 as u32); // one past capacity
        assert!(s.capacity() >= 2 * c1);
    }

    #[test]
    fn counts_across_capacities() {
        let a = GrowableBitSet::from_iter([1, 500]);
        let b = GrowableBitSet::from_iter([1, 2]);
        assert_eq!(a.and_count(&b), 1);
        assert_eq!(a.or_count(&b), 3);
        assert_eq!(a.xor_count(&b), 2);
    }

    #[test]
    fn into_fixed_normalises_capacity() {
        let s = GrowableBitSet::from_iter([3]);
        let f = s.into_fixed(128);
        assert_eq!(f.capacity(), 128);
        assert!(f.contains(3));
    }
}
