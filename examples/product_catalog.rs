//! A living product catalog: inserts, updates, and deletes under
//! Cinderella, with the partitioning quality tracked over time.
//!
//! ```sh
//! cargo run --release --example product_catalog
//! ```
//!
//! The paper's motivating scenario (§I): an electronics catalog where new
//! kinds of products keep appearing and existing products change shape
//! (a camera gains Wi-Fi, a drive loses its spec sheet). Cinderella keeps
//! the partitioning fit *online*, while the catalog is modified — no
//! re-partitioning job, no DBA.

use cinderella::core::{efficiency, Capacity, Cinderella, Config};
use cinderella::datagen::ProductGenerator;
use cinderella::model::{EntityId, Synopsis, Value};
use cinderella::storage::UniversalTable;

fn main() {
    let mut table = UniversalTable::new(256);
    let mut cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(200),
        ..Config::default()
    });

    // Phase 1: the initial catalog — 2 000 products over 7 categories.
    let (products, origin) = ProductGenerator::new(42).generate(table.catalog_mut(), 2_000);
    let categories = ProductGenerator::category_names();
    for e in products {
        cindy.insert(&mut table, e).expect("insert");
    }
    println!(
        "phase 1: loaded 2000 products over {} categories → {} partitions, {} splits",
        categories.len(),
        cindy.catalog().len(),
        cindy.stats().splits
    );

    // A per-category workload: "all compact cameras", "all drives", …
    // modelled as the attribute sets that distinguish the categories.
    let workload: Vec<Synopsis> = [
        vec!["aperture"],
        vec!["rotation", "formFactor"],
        vec!["tuner"],
        vec!["dualSim", "nfc"],
    ]
    .iter()
    .map(|names| {
        Synopsis::from_attrs(
            table.universe(),
            names.iter().map(|n| table.catalog().lookup(n).expect("known attr")),
        )
    })
    .collect();
    let eff = efficiency(&table, &cindy, &workload);
    println!("phase 1: EFFICIENCY(P) for the category workload = {eff:.3}");

    // Phase 2: product churn. A third of the smartphones gain an attribute
    // the catalog has never seen (products evolve), and every fifth
    // hard-drive generation is discontinued.
    let phone_cat = categories.iter().position(|c| *c == "smartphone").unwrap();
    let drive_cat = categories.iter().position(|c| *c == "hard-drive").unwrap();
    let mut updates = 0;
    let mut deletes = 0;
    for (i, &cat) in origin.iter().enumerate() {
        let id = EntityId(i as u64);
        if cat == phone_cat && i % 3 == 0 {
            let mut e = table.get(id).expect("phone exists");
            let attr = table.catalog_mut().intern("satelliteMessaging");
            e.set(attr, Value::Bool(true));
            cindy.update(&mut table, e).expect("update");
            updates += 1;
        } else if cat == drive_cat && i % 5 == 0 {
            cindy.delete(&mut table, id).expect("delete");
            deletes += 1;
        }
    }
    println!(
        "\nphase 2: {updates} updates (new attribute satelliteMessaging), {deletes} deletes"
    );
    println!(
        "phase 2: {} partitions, {} update-moves, {} partitions dropped",
        cindy.catalog().len(),
        cindy.stats().update_moves,
        cindy.stats().partitions_dropped
    );

    // Phase 3: a whole new product line arrives — drones, sharing some
    // attributes (name, weight) but bringing their own.
    for i in 0..150u64 {
        let id = EntityId(10_000 + i);
        let attrs = vec![
            (table.catalog_mut().intern("name"), Value::Text(format!("drone-{i}"))),
            (table.catalog_mut().intern("weight"), Value::Int(900)),
            (table.catalog_mut().intern("flightTime"), Value::Int(30)),
            (table.catalog_mut().intern("range"), Value::Int(8_000)),
            (table.catalog_mut().intern("camera"), Value::Bool(true)),
        ];
        let e = cinderella::model::Entity::new(id, attrs).expect("unique attrs");
        cindy.insert(&mut table, e).expect("insert");
    }
    let flight_time = table.catalog().lookup("flightTime").expect("new attr");
    let drone_parts: Vec<_> = cindy
        .catalog()
        .iter()
        .filter(|m| m.attr_synopsis.contains(flight_time))
        .collect();
    println!(
        "\nphase 3: 150 drones arrived → {} drone partition(s), catalog now {} partitions",
        drone_parts.len(),
        cindy.catalog().len()
    );
    for m in &drone_parts {
        println!(
            "  {}: {} entities, sparseness {:.2}",
            m.segment,
            m.entities,
            m.sparseness()
        );
    }

    let eff = efficiency(&table, &cindy, &workload);
    println!("\nfinal EFFICIENCY(P) for the category workload = {eff:.3}");
    let s = cindy.stats();
    println!(
        "lifetime stats: {} inserts, {} updates, {} deletes, {} splits, {} partitions created",
        s.inserts, s.updates, s.deletes, s.splits, s.partitions_created
    );
}
