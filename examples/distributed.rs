//! Distributing the partitions: §II's motivation made concrete.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```
//!
//! The paper motivates online partitioning with distributed settings —
//! "partitions are distributed among the nodes" — and NUMA systems where
//! "partitions resemble the local memory of each CPU core". This example
//! partitions 30 000 irregular entities with Cinderella, then places the
//! partitions on a simulated 8-node cluster two ways: load-balanced (LPT)
//! and affinity-first (co-locating structurally similar partitions), and
//! compares load imbalance against per-query node fan-out.

use cinderella::core::{
    place_affinity, place_balanced, Capacity, Cinderella, Config,
};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cinderella::model::Synopsis;
use cinderella::storage::UniversalTable;

const ENTITIES: usize = 30_000;
const NODES: usize = 8;

fn main() {
    // Partition the data online.
    let mut table = UniversalTable::new(256);
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    })
    .generate(table.catalog_mut());
    let universe = table.universe();
    let specs = {
        let all = WorkloadBuilder::default().build(universe, &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 3)
    };
    let mut cindy = Cinderella::new(Config {
        weight: 0.2,
        capacity: Capacity::MaxEntities(1_000),
        ..Config::default()
    });
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    println!(
        "partitioned {ENTITIES} entities into {} partitions; placing on {NODES} nodes\n",
        cindy.catalog().len()
    );

    // The selective slice of the workload is where placement matters: a
    // broad query talks to every node regardless.
    let selective: Vec<Synopsis> = specs
        .iter()
        .filter(|s| s.selectivity < 0.1)
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();

    let balanced = place_balanced(cindy.catalog(), NODES);
    let affinity = place_affinity(cindy.catalog(), NODES, 0.10);

    println!(
        "{:<10} {:>10} {:>22} {:>14}",
        "strategy", "imbalance", "fan-out (selective)", "largest node"
    );
    for (name, p) in [("balanced", &balanced), ("affinity", &affinity)] {
        println!(
            "{:<10} {:>10.3} {:>22.2} {:>11} cells",
            name,
            p.imbalance(),
            p.fanout(cindy.catalog(), &selective),
            p.node_sizes.iter().max().expect("nodes"),
        );
    }

    // Show one node's "shape" under each strategy: affinity nodes
    // specialise, balanced nodes look like random grab bags.
    let specialisation = |p: &cinderella::core::Placement| -> f64 {
        // Mean attributes per node synopsis: lower = more specialised.
        let total: u32 = p.node_synopses.iter().map(Synopsis::cardinality).sum();
        f64::from(total) / p.node_synopses.len() as f64
    };
    println!(
        "\nmean attributes per node: balanced {:.1}, affinity {:.1} (universal table: {universe})",
        specialisation(&balanced),
        specialisation(&affinity),
    );
    assert!(
        affinity.fanout(cindy.catalog(), &selective)
            <= balanced.fanout(cindy.catalog(), &selective)
    );
    println!("affinity placement contacts no more nodes than balanced ✓");
}
