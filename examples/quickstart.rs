//! Quickstart: partition a handful of products online and query them.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's Figure 2 scenario end to end: insert irregular
//! entities, watch Cinderella assign them to partitions (creating and
//! splitting as needed), then run a selective query that prunes the
//! irrelevant partitions.

use cinderella::core::{Capacity, Cinderella, Config, InsertOutcome};
use cinderella::model::{Entity, EntityId, Value};
use cinderella::query::{execute_collect, plan, Query};
use cinderella::storage::UniversalTable;

fn main() {
    // A universal table with a 64-page buffer pool, and a Cinderella
    // instance with the paper's recommended weight and a tiny partition
    // capacity so the example shows a split.
    let mut table = UniversalTable::new(64);
    let mut cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(3),
        ..Config::default()
    });

    // The Fig. 1 product catalog: cameras, a TV, a hard drive — attribute
    // sets overlap but differ per kind.
    let products: Vec<(&str, Vec<(&str, Value)>)> = vec![
        ("Canon PowerShot S120", vec![
            ("resolution", Value::Float(12.1)),
            ("aperture", Value::Float(2.0)),
            ("screen", Value::Float(3.0)),
            ("weight", Value::Int(198)),
        ]),
        ("Sony SLT-A99", vec![
            ("resolution", Value::Float(24.0)),
            ("screen", Value::Float(3.0)),
            ("weight", Value::Int(733)),
        ]),
        ("Samsung Galaxy S4", vec![
            ("resolution", Value::Float(13.0)),
            ("screen", Value::Float(4.3)),
            ("storage", Value::Text("32GB".into())),
            ("weight", Value::Int(133)),
        ]),
        ("LG 60LA7408", vec![
            ("resolution", Value::Text("Full HD".into())),
            ("screen", Value::Float(40.0)),
            ("tuner", Value::Text("DVB-T/C/S".into())),
            ("weight", Value::Int(9800)),
        ]),
        ("WD4000FYYZ", vec![
            ("storage", Value::Text("4TB".into())),
            ("rotation", Value::Int(7200)),
            ("formFactor", Value::Text("3.5\"".into())),
        ]),
        ("Garmin Dakota 20", vec![
            ("screen", Value::Float(2.6)),
            ("weight", Value::Int(150)),
        ]),
    ];

    println!("inserting {} products (B = 3, w = 0.3):\n", products.len());
    for (i, (name, attrs)) in products.into_iter().enumerate() {
        let mut pairs = vec![(table.catalog_mut().intern("name"), Value::from(name))];
        for (attr, value) in attrs {
            pairs.push((table.catalog_mut().intern(attr), value));
        }
        let entity = Entity::new(EntityId(i as u64), pairs).expect("unique attributes");
        let outcome = cindy.insert(&mut table, entity).expect("insert succeeds");
        let describe = match outcome {
            InsertOutcome::Inserted(seg) => format!("joined partition {seg}"),
            InsertOutcome::NewPartition(seg) => format!("opened partition {seg}"),
            InsertOutcome::Split { from, into } => {
                format!("overflowed {from}, split into {} and {}", into.0, into.1)
            }
        };
        println!("  {name:<22} → {describe}");
    }

    println!("\npartition catalog:");
    for meta in cindy.catalog().iter() {
        let attrs: Vec<String> = meta
            .attr_synopsis
            .iter()
            .filter_map(|a| table.catalog().name(a).map(str::to_owned))
            .collect();
        println!(
            "  {}: {} entities, sparseness {:.2}, attributes {{{}}}",
            meta.segment,
            meta.entities,
            meta.sparseness(),
            attrs.join(", ")
        );
    }

    // A selective query: hard drives only. The paper's query form returns
    // entities instantiating at least one requested attribute, so asking
    // for `rotation, formFactor` prunes every partition without them
    // before any data is read.
    let query = Query::from_names(table.catalog(), ["rotation", "formFactor"])
        .expect("attributes exist");
    let view: Vec<_> = cindy
        .catalog()
        .pruning_view()
        .map(|(seg, syn, _)| (seg, syn.clone()))
        .collect();
    let p = plan(&query, view.iter().map(|(s, syn)| (*s, syn)));
    let (result, rows) = execute_collect(&table, &query, &p).expect("plan is live");

    println!(
        "\nSELECT rotation, formFactor WHERE … IS NOT NULL → {} row(s), \
         scanned {} of {} partitions ({} pruned):",
        result.rows,
        result.segments_read,
        result.segments_read + result.segments_pruned,
        result.segments_pruned,
    );
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| v.as_ref().map_or("NULL".to_owned(), Value::to_string))
            .collect();
        println!("  {}", cells.join(" | "));
    }
}
