//! Regular data: Cinderella rediscovers the TPC-H schema (§V-C).
//!
//! ```sh
//! cargo run --release --example tpch_regular
//! ```
//!
//! Loads TPC-H-shaped rows — perfectly regular, eight disjoint column
//! sets — through Cinderella and shows that the discovered partitions
//! coincide exactly with the TPC-H relations: partitioning irregular data
//! online costs nothing when the data turns out to be regular.

use cinderella::core::{Capacity, Cinderella, Config};
use cinderella::datagen::{TpchConfig, TpchGenerator};
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;

fn main() {
    let gen = TpchGenerator::new(TpchConfig { scale: 0.003, seed: 7 });
    let mut table = UniversalTable::new(256);
    let (entities, origin) = gen.generate(table.catalog_mut());
    println!(
        "generated {} TPC-H rows over {} relations (scale {})",
        entities.len(),
        gen.schema().len(),
        0.003
    );

    let mut cindy = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(2_000),
        ..Config::default()
    });
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    println!(
        "cinderella built {} partitions ({} splits)\n",
        cindy.catalog().len(),
        cindy.stats().splits
    );

    // Schema recovery: map every partition to the relation whose column
    // set matches its synopsis exactly.
    println!("partition → relation mapping:");
    let mut pure = true;
    let mut per_relation = vec![0usize; gen.schema().len()];
    for meta in cindy.catalog().iter() {
        let matched = gen
            .schema()
            .iter()
            .position(|rel| rel.synopsis(table.catalog()) == meta.attr_synopsis);
        match matched {
            Some(rel) => {
                per_relation[rel] += 1;
                println!(
                    "  {} ({} rows) = {}",
                    meta.segment,
                    meta.entities,
                    gen.schema()[rel].name
                );
            }
            None => {
                pure = false;
                println!("  {} MIXES RELATIONS", meta.segment);
            }
        }
    }
    assert!(pure, "every partition must hold exactly one relation's rows");
    println!("\nschema recovered exactly: every partition is one relation ✓");
    let expected = gen.row_counts();
    for (rel, (count, schema)) in per_relation.iter().zip(gen.schema()).enumerate() {
        println!(
            "  {:<10} {} partition(s) for {} rows",
            schema.name, count, expected[rel]
        );
    }

    // A TPC-H-style query (Q6 column set) prunes everything but lineitem.
    let q6 = Query::from_names(
        table.catalog(),
        ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
    )
    .expect("lineitem columns exist");
    let view: Vec<_> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();
    let p = plan(&q6, view.iter().map(|(s, syn)| (*s, syn)));
    let r = execute(&table, &q6, &p).expect("live plan");
    let lineitem_rows = origin.iter().filter(|&&rel| rel == 7).count() as u64;
    assert_eq!(r.rows, lineitem_rows);
    println!(
        "\nQ6 column set: scanned {} partition(s), pruned {}, returned all {} lineitem rows in {:.2?}",
        r.segments_read, r.segments_pruned, r.rows, r.duration
    );
}
