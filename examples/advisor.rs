//! Parameter advisor: pick `w` and `B` from a sample before loading.
//!
//! ```sh
//! cargo run --release --example advisor
//! ```
//!
//! The paper shows that the best weight depends on the data's irregularity
//! and the best partition size limit on the workload's selectivity; it
//! leaves the choice to the operator. This example uses the advisor
//! extension: score a (w, B) grid on a 5 000-entity sample, pick the
//! winner, then load the full data set with it and verify the prediction
//! held up.

use cinderella::core::{
    efficiency, recommend, AdvisorConfig, Capacity, Cinderella, Config,
};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cinderella::model::Synopsis;
use cinderella::storage::UniversalTable;

const SAMPLE: usize = 5_000;
const FULL: usize = 50_000;

fn main() {
    // The full data set and its workload.
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: FULL,
        ..DbpediaConfig::default()
    });
    let mut table = UniversalTable::new(256);
    let entities = gen.generate(table.catalog_mut());
    let universe = table.universe();
    let specs = {
        let all = WorkloadBuilder::default().build(universe, &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 3)
    };
    let workload: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();

    // Advise on the first SAMPLE entities (a prefix is what an operator
    // actually has before the load).
    let t0 = std::time::Instant::now();
    let rec = recommend(
        &entities[..SAMPLE],
        universe,
        &workload,
        &AdvisorConfig::default(),
    )
    .expect("non-empty sample and default grid");
    println!(
        "advisor scored {} candidates on a {SAMPLE}-entity sample in {:.1?}:\n",
        rec.candidates.len(),
        t0.elapsed()
    );
    println!(
        "{:>6} {:>8} {:>11} {:>11} {:>9} {:>8}",
        "w", "B", "partitions", "efficiency", "touched", "score"
    );
    for c in rec.candidates.iter().take(8) {
        println!(
            "{:>6} {:>8} {:>11} {:>11.4} {:>9.1} {:>8.4}",
            c.weight, c.capacity, c.partitions, c.efficiency, c.partitions_touched, c.score
        );
    }
    println!("\nrecommendation: w = {}, B = {}", rec.weight, rec.capacity);

    // Load the full data set with the recommendation and with a deliberately
    // bad configuration, and compare.
    let run = |label: &str, w: f64, b: u64| {
        let mut table = UniversalTable::new(256);
        let entities = gen.generate(table.catalog_mut());
        let mut cindy = Cinderella::new(Config {
            weight: w,
            capacity: Capacity::MaxEntities(b),
            ..Config::default()
        });
        for e in entities {
            cindy.insert(&mut table, e).expect("insert");
        }
        let eff = efficiency(&table, &cindy, &workload);
        println!(
            "{label:<14} w={w:<4} B={b:<6} → {:>5} partitions, efficiency {eff:.4}",
            cindy.catalog().len()
        );
        eff
    };
    println!("\nfull load ({FULL} entities):");
    let recommended = run("recommended", rec.weight, rec.capacity);
    let worst = rec.candidates.last().expect("non-empty");
    let baseline = run("worst scored", worst.weight, worst.capacity);
    assert!(
        recommended >= baseline,
        "the recommendation must not lose to the worst candidate"
    );
    println!("\nthe sample-based recommendation held up on the full data ✓");
}
