//! Irregular data at scale: the DBpedia-person scenario, Cinderella vs the
//! plain universal table.
//!
//! ```sh
//! cargo run --release --example dbpedia_online
//! ```
//!
//! Loads 50 000 synthetic DBpedia-like person entities (calibrated to the
//! paper's Fig. 4 distributions) twice — once unpartitioned, once through
//! Cinderella — and compares selective queries: pages read, wall time, and
//! Definition 1 efficiency.

use cinderella::baselines::{Partitioner, Unpartitioned};
use cinderella::core::{efficiency_of, Capacity, Cinderella, Config};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cinderella::model::Synopsis;
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;

const ENTITIES: usize = 50_000;

fn main() {
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    });

    // Universal-table baseline.
    let mut uni_table = UniversalTable::new(256);
    let uni_entities = gen.generate(uni_table.catalog_mut());
    let mut universal = Unpartitioned::new();
    universal
        .load(&mut uni_table, uni_entities.clone())
        .expect("load");

    // Cinderella, paper-recommended settings for this data (w = 0.2).
    let mut cindy_table = UniversalTable::new(256);
    let cindy_entities = gen.generate(cindy_table.catalog_mut());
    let mut cindy = Cinderella::new(Config {
        weight: 0.2,
        capacity: Capacity::MaxEntities(5_000),
        ..Config::default()
    });
    let t0 = std::time::Instant::now();
    for e in cindy_entities {
        cindy.insert(&mut cindy_table, e).expect("insert");
    }
    println!(
        "loaded {ENTITIES} entities through Cinderella in {:.1?} \
         ({} partitions, {} splits, {:.1} ratings/insert)",
        t0.elapsed(),
        cindy.catalog().len(),
        cindy.stats().splits,
        cindy.stats().ratings_computed as f64 / cindy.stats().inserts as f64,
    );

    // Three queries of decreasing selectivity, like the paper's Fig. 5
    // discussion: a rare attribute, a mid-tail attribute, a universal one.
    let universe = uni_table.universe();
    let specs = WorkloadBuilder::default().build(universe, &uni_entities);
    let mut picks = Vec::new();
    for target in [0.01, 0.1, 0.9] {
        let best = specs
            .iter()
            .min_by(|a, b| {
                (a.selectivity - target)
                    .abs()
                    .total_cmp(&(b.selectivity - target).abs())
            })
            .expect("non-empty workload");
        picks.push(best.clone());
    }

    println!("\nquery comparison (universal vs Cinderella):");
    println!(
        "{:<22} {:>11} {:>7} | {:>9} {:>9} | {:>9} {:>9}",
        "query", "selectivity", "rows", "uni pages", "uni time", "cin pages", "cin time"
    );
    for spec in &picks {
        let run = |table: &UniversalTable, view: Vec<(_, Synopsis, u64)>| {
            let q = Query::from_attrs(universe, spec.attrs.iter().copied());
            let p = plan(&q, view.iter().map(|(s, syn, _)| (*s, syn)));
            execute(table, &q, &p).expect("live plan")
        };
        let u = run(&uni_table, universal.pruning_view());
        let c = run(&cindy_table, Partitioner::pruning_view(&cindy));
        assert_eq!(u.rows, c.rows, "answers must agree");
        println!(
            "{:<22} {:>11.4} {:>7} | {:>9} {:>9.2?} | {:>9} {:>9.2?}",
            spec.label, spec.selectivity, u.rows, u.io.logical_reads, u.duration,
            c.io.logical_reads, c.duration,
        );
    }

    // Definition 1 efficiency over the full representative workload.
    let reps = WorkloadBuilder::representatives(
        &specs,
        &WorkloadBuilder::default_edges(),
        3,
    );
    let queries: Vec<Synopsis> = reps
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let entity_syns: Vec<(Synopsis, u64)> = uni_entities
        .iter()
        .map(|e| (e.synopsis(universe), e.arity() as u64))
        .collect();
    let eff = |view: Vec<(_, Synopsis, u64)>| {
        let parts: Vec<(Synopsis, u64)> =
            view.into_iter().map(|(_, syn, size)| (syn, size)).collect();
        efficiency_of(entity_syns.iter().cloned(), &parts, &queries)
    };
    println!(
        "\nEFFICIENCY(P) over {} representative queries: universal {:.3}, cinderella {:.3}",
        reps.len(),
        eff(universal.pruning_view()),
        eff(Partitioner::pruning_view(&cindy)),
    );
}
