//! Cinderella — adaptive online partitioning of irregularly structured data.
//!
//! Facade crate re-exporting the workspace's public API. See the individual
//! crates for details:
//!
//! * [`bitset`] — synopsis bitsets.
//! * [`model`] — attributes, entities, synopses, `SIZE()` models.
//! * [`storage`] — the sparse universal-table storage engine.
//! * [`core`] — the Cinderella online partitioning algorithm.
//! * [`query`] — partition-pruned query planning and execution.
//! * [`datagen`] — DBpedia-like / TPC-H-like / product-catalog generators.
//! * [`baselines`] — unpartitioned, hash, range, and offline comparators.
//! * [`metrics`] — histograms, partition statistics, reporting.
//! * [`server`] — the concurrent wire-protocol serving layer.

#![forbid(unsafe_code)]

pub use cind_baselines as baselines;
pub use cind_bitset as bitset;
pub use cind_datagen as datagen;
pub use cind_metrics as metrics;
pub use cind_model as model;
pub use cind_query as query;
pub use cind_server as server;
pub use cind_storage as storage;
pub use cinderella_core as core;
