//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the (small, fully deterministic) subset of the `rand` 0.8 API
//! the workspace actually uses: [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen`], [`Rng::gen_bool`], [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so the concrete value streams differ from
//! upstream `rand`, but every consumer in this repository only relies on
//! determinism for a fixed seed, which holds.

#![forbid(unsafe_code)]

/// A source of random `u64`s plus the derived sampling methods.
pub trait Rng {
    /// The core generator: the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its full "standard" distribution
    /// (`f64` in `[0, 1)`, integers over their whole domain, fair bools).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their standard distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval, mirroring
/// `rand::distributions::uniform::SampleUniform`. The blanket
/// [`SampleRange`] impls below are generic over this trait — matching the
/// real crate's shape so integer-literal inference (`base + rng.gen_range(0..8)`
/// with `base: u32`) resolves the same way it does upstream.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random rearrangement of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
