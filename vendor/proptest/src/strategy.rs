//! Strategies: deterministic value generators parameterised by an RNG.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values of type `Self::Value`. The shim equivalent of
/// proptest's `Strategy` (generation only — no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// String strategy from a `[class]{m,n}` pattern (the only regex shape the
/// workspace uses). The class supports literal characters and `a-z` ranges.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    assert_eq!(
        chars.next(),
        Some('['),
        "unsupported string pattern {pattern:?}: expected [class]{{m,n}}"
    );
    let mut alphabet = Vec::new();
    let mut class = Vec::new();
    for c in chars.by_ref() {
        if c == ']' {
            break;
        }
        class.push(c);
    }
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "bad range in pattern {pattern:?}");
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
    let rest: String = chars.collect();
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}"));
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(min <= max, "bad repetition in pattern {pattern:?}");
    (alphabet, min, max)
}

// ---- any::<T>() ----------------------------------------------------------

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// That strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (full domain for integers and bools).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy backed by the RNG's standard distribution.
pub struct StandardStrategy<T>(pub(crate) PhantomData<T>);

impl<T: rand::Standard> Strategy for StandardStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen::<T>()
    }
}

macro_rules! arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                StandardStrategy(PhantomData)
            }
        }
    )*};
}
arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- prop_oneof ----------------------------------------------------------

/// Object-safe strategy facade used by [`Union`] for heterogeneous arms.
pub trait DynStrategy<V> {
    /// Draws one value.
    fn dyn_generate(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes a strategy for use in a [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
    Box::new(s)
}

/// Weighted choice over strategies with a common value type
/// (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total: u32,
}

impl<V> Union<V> {
    /// A union of `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.dyn_generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

// ---- collections ---------------------------------------------------------

/// A size specification for collection strategies: an exact count, `m..n`,
/// or `m..=n`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn sample(self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, StdRng, Strategy};
    use std::collections::{BTreeMap, BTreeSet};

    /// `Vec<T>` with a size drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>`: draws up to the sampled count of elements (duplicates
    /// collapse, as in upstream proptest the final size may undershoot, but
    /// never below 1 when the minimum is ≥ 1).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// The [`btree_set`] strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap<K, V>` with up to the sampled count of entries.
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// The [`btree_map`] strategy.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// `Option<T>`: `Some` three times out of four, like upstream's default
    /// bias toward interesting values.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }

    /// The [`of`] strategy.
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.element.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, StandardStrategy};
    use std::marker::PhantomData;

    /// An index into a collection whose length is only known at use site:
    /// `any::<Index>()` generates one, [`Index::index`] projects it onto
    /// `0..len`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this sample onto `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl rand::Standard for Index {
        fn sample_standard<R: rand::Rng>(rng: &mut R) -> Self {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = StandardStrategy<Index>;
        fn arbitrary() -> Self::Strategy {
            StandardStrategy(PhantomData)
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = case_rng("shim::ranges", 0);
        for _ in 0..200 {
            let v = (0u32..7).generate(&mut rng);
            assert!(v < 7);
            let (a, b, c) = (0u32..4, 1usize..10, 0u16..=3).generate(&mut rng);
            assert!(a < 4 && (1..10).contains(&b) && c <= 3);
        }
    }

    #[test]
    fn string_pattern_matches_class_and_length() {
        let mut rng = case_rng("shim::string", 0);
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "[a-zA-Z0-9 äöü€]{0,40}".generate(&mut rng);
            assert!(t.chars().count() <= 40);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " äöü€".contains(c)));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u: Union<u32> = crate::prop_oneof![
            3 => (0u32..1).prop_map(|_| 0u32),
            1 => (0u32..1).prop_map(|_| 1u32),
        ];
        let mut rng = case_rng("shim::union", 0);
        let ones = (0..4000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!((700..1300).contains(&ones), "weight 1/4 arm hit {ones}/4000");
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = case_rng("shim::coll", 0);
        for _ in 0..50 {
            let v = collection::vec(0u32..100, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = collection::vec(0u32..100, 6usize).generate(&mut rng);
            assert_eq!(exact.len(), 6);
            let s = collection::btree_set(0u32..1000, 1..6).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 6);
            let m = collection::btree_map(0u32..50, 0i64..5, 0..10).generate(&mut rng);
            assert!(m.len() < 10);
        }
    }

    #[test]
    fn index_projects_into_range() {
        let mut rng = case_rng("shim::index", 0);
        for _ in 0..100 {
            let ix = any::<sample::Index>().generate(&mut rng);
            assert!(ix.index(17) < 17);
        }
    }
}
