//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! re-implements the subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range/tuple/collection/string strategies, `prop_map`, [`prop_oneof!`],
//! `any::<T>()`, `prop::sample::Index`, and the `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and case number; the
//!   same binary re-runs it deterministically, which is what matters for a
//!   reproduction repository.
//! * **Value streams differ** from upstream proptest (the RNG is the
//!   workspace's vendored xoshiro256**), but are deterministic per
//!   test-name + case index.
//! * String strategies support exactly the `[class]{m,n}` pattern shape
//!   used in this repository, not full regex syntax.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategy combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`, `btree_set`, `btree_map`).
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, btree_set, vec};
    }
    /// `Option<T>` strategies.
    pub mod option {
        pub use crate::strategy::option::of;
    }
    /// Sampling helpers (`Index`).
    pub mod sample {
        pub use crate::strategy::sample::Index;
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    // Macros are exported at the crate root; re-export for prelude users.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying outer
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, __config.cases, __e
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies of a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left), stringify!($right), __l
                ),
            ));
        }
    }};
}

/// Skips the current case (counts as passing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
