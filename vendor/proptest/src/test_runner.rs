//! Config, error type, and the per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs. Construct with
/// [`ProptestConfig::with_cases`] or [`Default`].
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed (or rejected) test case. Produced by the `prop_assert*` macros
/// and propagated with `?` through helper functions.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the deterministic RNG for one case of one property: a hash of
/// the fully qualified test name and the case index. Stable across runs and
/// across test-thread interleavings.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, then mix in the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
