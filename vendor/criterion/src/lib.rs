//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! subset of criterion's API the workspace's benches use — `Criterion`,
//! benchmark groups, `iter`/`iter_batched`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple measurement loop: a short warm-up, then `sample_size` timed
//! samples whose minimum / mean / maximum are printed per benchmark.
//!
//! No statistical analysis, HTML reports, or baselines; good enough to
//! compare configurations (e.g. sequential vs parallel execution) by eye
//! or by script.
//!
//! For scripts, set `CRITERION_JSON=path` to additionally append one JSON
//! line per benchmark (`{"name", "samples", "min_ns", "mean_ns", "max_ns"`,
//! plus `"throughput_per_s"` when the group declares a [`Throughput`]`}`) —
//! the format the repo's `BENCH_*.json` records are built from.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one routine call
/// per sample regardless; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Work-rate annotation for a benchmark group (printed with the timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// Just the parameter part.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (one routine invocation each).
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] with the input passed by `&mut`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        black_box(routine(&mut warm));
        for _ in 0..self.samples {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.times.push(t0.elapsed());
        }
    }
}

fn report(name: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let per_sec = throughput.map(|t| match t {
        Throughput::Elements(n) | Throughput::Bytes(n) => n as f64 / mean.as_secs_f64(),
    });
    let rate = match (throughput, per_sec) {
        (Some(Throughput::Elements(_)), Some(r)) => format!("  {r:>12.0} elem/s"),
        (Some(Throughput::Bytes(_)), Some(r)) => format!("  {r:>12.0} B/s"),
        _ => String::new(),
    };
    println!(
        "{name:<50} [{:>10.3?} {:>10.3?} {:>10.3?}]{rate}",
        min, mean, max
    );
    maybe_json(name, times, min, mean, max, per_sec);
}

/// When `CRITERION_JSON` names a file, appends the benchmark's summary as
/// one JSON line — the ndjson feed harness scripts aggregate.
fn maybe_json(
    name: &str,
    times: &[Duration],
    min: Duration,
    mean: Duration,
    max: Duration,
    per_sec: Option<f64>,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    // Benchmark names are workspace-chosen (`group/function/param`) and
    // never contain quotes or backslashes, so plain formatting is valid
    // JSON here.
    let mut line = format!(
        "{{\"name\":\"{name}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}",
        times.len(),
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
    );
    if let Some(rate) = per_sec {
        line.push_str(&format!(",\"throughput_per_s\":{rate:.1}"));
    }
    line.push('}');
    use std::io::Write;
    let file = std::fs::OpenOptions::new().create(true).append(true).open(&path);
    match file {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("criterion shim: cannot append to {path}: {e}"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration work rate printed with the timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Shortens the measurement; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        if self.criterion.matches(&full) {
            let times = self.criterion.run_one(self.sample_size, f);
            report(&full, &times, self.throughput);
        }
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            let times = self.criterion.run_one(self.sample_size, |b| f(b, input));
            report(&full, &times, self.throughput);
        }
        self
    }

    /// Ends the group (printing happens per benchmark; nothing buffered).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first
        // non-flag argument; honour it so single benches can be run.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self { default_samples: 20, filter }
    }
}

impl Criterion {
    fn run_one(
        &mut self,
        samples: usize,
        mut f: impl FnMut(&mut Bencher),
    ) -> Vec<Duration> {
        let mut b = Bencher { samples, times: Vec::new() };
        f(&mut b);
        b.times
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.into_id();
        if self.matches(&name) {
            let samples = self.default_samples;
            let times = self.run_one(samples, f);
            report(&name, &times, None);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            throughput: None,
        }
    }
}

/// Declares a function running the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
